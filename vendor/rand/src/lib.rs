//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access and no
//! crates-io cache, so the workspace `[patch.crates-io]` section substitutes
//! this shim. It implements exactly the subset of the rand 0.8 API the
//! workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm rand 0.8 uses for
//!   `SmallRng` on 64-bit targets), seeded through the SplitMix64 expansion
//!   of [`SeedableRng::seed_from_u64`], matching upstream bit-for-bit;
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over integer and
//!   float ranges (unbiased via Lemire rejection sampling).
//!
//! The statistical contracts (uniformity, independence of streams) match
//! upstream; exact bit-streams of the derived methods are not guaranteed to
//! match upstream, which is fine because every consumer in this workspace
//! asserts statistics against analytic laws, not golden RNG outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// A small, fast RNG: xoshiro256++.
    ///
    /// This is the same generator rand 0.8 selects for `SmallRng` on 64-bit
    /// platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_state(s: [u64; 4]) -> SmallRng {
            SmallRng { s }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> SmallRng {
            // SplitMix64 expansion, as in rand_core's default seed_from_u64.
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng::from_state(s)
        }
    }
}

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A seedable RNG (the subset of the upstream trait this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed via SplitMix64 state expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-level random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0, 1]");
        // 53 random bits against the probability; p == 1.0 must always hit.
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.next_u64()) < p
    }

    /// Returns a uniformly random value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(&mut dyn_rng(self))
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn dyn_rng<R: RngCore + ?Sized>(rng: &mut R) -> impl RngCore + '_ {
    struct Wrap<'a, R: ?Sized>(&'a mut R);
    impl<R: RngCore + ?Sized> RngCore for Wrap<'_, R> {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
    Wrap(rng)
}

/// Maps a random `u64` to a uniform `f64` in `[0, 1)` using 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling of `[0, span)` by Lemire's unbiased rejection method.
fn sample_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types sampleable uniformly over their whole domain (`rng.gen()`).
pub trait Standard {
    /// Samples one value.
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut impl RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut impl RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// Types with uniform range sampling support (`rng.gen_range(..)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_exclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_exclusive(rng: &mut impl RngCore, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                lo.wrapping_add(sample_below(rng, span) as $ty)
            }
            fn sample_inclusive(rng: &mut impl RngCore, lo: $ty, hi: $ty) -> $ty {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_exclusive(rng: &mut impl RngCore, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive(rng: &mut impl RngCore, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn xoshiro_matches_reference_vector() {
        // Reference: seed_from_u64(0) expands through SplitMix64 to the
        // state used by upstream rand 0.8; first output of xoshiro256++.
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.gen::<u64>();
        let mut s = [0u64; 4];
        let mut state = 0u64;
        for w in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        let expect = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(first, expect);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn uniform_int_is_unbiased_across_span() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[r.gen_range(0usize..6)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
    }
}
