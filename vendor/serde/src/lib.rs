//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no network access, so the workspace
//! `[patch.crates-io]` section substitutes this shim. Instead of upstream's
//! visitor-based data model it uses a concrete JSON [`Value`] tree:
//! [`Serialize`] renders a value into a [`Value`], [`Deserialize`] rebuilds
//! one from it. The `derive` feature re-exports `#[derive(Serialize,
//! Deserialize)]` proc-macros from the sibling `serde_derive` shim, which
//! generate the same external JSON shapes as upstream serde:
//!
//! * named-field structs  → objects;
//! * newtype structs      → the transparent inner value;
//! * unit enum variants   → `"Variant"` strings;
//! * newtype enum variants → `{"Variant": inner}` objects;
//! * `#[serde(try_from = "T", into = "T")]` container attributes.
//!
//! Only what this workspace uses is implemented — by design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: integer representations are kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }
}

/// A JSON value tree — the data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A static `null`, usable where a `&Value` is needed.
    pub const NULL: Value = Value::Null;

    /// Looks up a key in an object; absent keys read as `null`.
    #[must_use]
    pub fn field<'v>(fields: &'v [(String, Value)], key: &str) -> &'v Value {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map_or(&Value::NULL, |(_, v)| v)
    }
}

/// Error produced when deserialization fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Error {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Error::custom(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the JSON [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] on a shape or domain mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| Error::expected(stringify!($ty), value)),
                    _ => Err(Error::expected(stringify!($ty), value)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| Error::expected(stringify!($ty), value)),
                    _ => Err(Error::expected(stringify!($ty), value)),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value)
            .and_then(|v| isize::try_from(v).map_err(|_| Error::expected("isize", value)))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::expected("f64", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", value)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", value)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", value)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected tuple of length {expected}, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected("array", value)),
                }
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), 3u32.to_value());
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let fields = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(Value::field(&fields, "b"), &Value::Null);
        assert_eq!(Value::field(&fields, "a"), &Value::Bool(true));
    }

    #[test]
    fn nested_arrays_roundtrip() {
        let m = [[true, false], [false, true]];
        let v = m.to_value();
        let back = <[[bool; 2]; 2]>::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn integer_domain_is_checked() {
        let v = Value::Number(Number::U(300));
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }
}
