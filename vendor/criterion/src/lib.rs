//! Offline shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! Supports the definition surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — and reports a simple mean wall-clock time
//! per benchmark instead of criterion's statistical analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// How many timed iterations the shim runs per benchmark.
const ITERATIONS: u32 = 10;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to bench closures; its [`iter`](Bencher::iter) method times the
/// workload.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive so the optimiser
    /// cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            let _keep = routine();
        }
        let total = start.elapsed();
        self.nanos_per_iter = total.as_nanos() as f64 / f64::from(ITERATIONS);
    }
}

fn run_bench(group: &str, label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        nanos_per_iter: f64::NAN,
    };
    f(&mut bencher);
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.nanos_per_iter.is_nan() {
        println!("bench {name:<50} (no iter() call)");
    } else {
        println!(
            "bench {name:<50} {:>14.1} ns/iter",
            bencher.nanos_per_iter
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &id.into().label, f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&self.name, &id.label, |b| f(b, input));
        self
    }

    /// End the group (a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_bench("", &name.into().label, f);
        self
    }
}

/// Bundles bench functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 4), &4u32, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            });
        });
        group.finish();
        // warm-up + ITERATIONS timed runs
        assert_eq!(calls, 1 + ITERATIONS);
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_expands() {
        example_group();
    }
}
