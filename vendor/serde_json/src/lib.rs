//! Offline shim for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the serde
//! shim's [`Value`] data model, emitting and accepting standard JSON. The
//! number grammar, string escapes (including `\uXXXX` with surrogate
//! pairs), and structural syntax follow RFC 8259.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::{Number, Value};

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

/// Alias matching upstream's module-level result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails for tree-shaped values; the `Result` mirrors upstream's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON text (two-space indent).
///
/// # Errors
///
/// Never fails for tree-shaped values; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape/domain mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use fmt::Write as _;
    match *n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) if v.is_finite() => {
            // Rust's shortest round-trip formatting; force a decimal point
            // so the value re-parses as a float.
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; upstream errors, we degrade to null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F(v)))
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<bool>(" false ").unwrap(), false);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\n\"quoted\"\tüñîçødé \\ done";
        let json = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn collections_roundtrip() {
        let xs = vec![1u64, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), xs);
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains("\n  1,"));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("12 garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("--3").is_err());
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let json = to_string(&3.0f64).unwrap();
        assert_eq!(json, "3.0");
        assert_eq!(from_str::<f64>(&json).unwrap(), 3.0);
    }
}
