//! Offline shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer/float
//! range strategies, tuple strategies, [`Just`], [`prop_oneof!`],
//! `any::<bool>()`, `collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are reported but **not shrunk**. Sampling is fully deterministic —
//! each case draws from a counter-seeded splitmix64 stream — so a
//! failure reproduces on every run.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG backing every sampled case.
///
/// splitmix64 over a counter: statistically fine for test-input
/// generation and trivially reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th test case; the same case always sees the
    /// same stream.
    pub fn deterministic(case: u64) -> TestRng {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)` for `span >= 1`, unbiased via
    /// power-of-two masking + rejection. `span == 0` means the full
    /// `u128` domain.
    fn below_u128(&mut self, span: u128) -> u128 {
        let raw = |rng: &mut TestRng| (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if span == 0 {
            return raw(self);
        }
        if span == 1 {
            return 0;
        }
        let mask = u128::MAX >> (span - 1).leading_zeros();
        loop {
            let v = raw(self) & mask;
            if v < span {
                return v;
            }
        }
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error type returned (via the `prop_*` macros) from a test-case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case (and the test) fails.
    Fail(String),
    /// `prop_assume!` filtered the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection (assumption failure) from any message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runtime configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies; built by [`prop_oneof!`].
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.below_u128(self.options.len() as u128) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's full domain (see [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below_u128(span);
                ((self.start as i128).wrapping_add(off as i128)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = ((*self.end() as i128)
                    .wrapping_sub(*self.start() as i128) as u128)
                    .wrapping_add(1);
                let off = rng.below_u128(span);
                ((*self.start() as i128).wrapping_add(off as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128/i128 spans do not fit the i128 arithmetic above; handle directly.
impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start() <= self.end(), "empty range strategy");
        // span of 0 encodes the full-domain wraparound in below_u128.
        let span = (self.end() - self.start()).wrapping_add(1);
        self.start().wrapping_add(rng.below_u128(span))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    ///
    /// Built from plain `usize` ranges (or a single exact length), like
    /// upstream — which is what lets bare literals in `vec(elem, 2..7)`
    /// infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec`s with element strategy `E`.
    pub struct VecStrategy<E> {
        element: E,
        len: SizeRange,
    }

    /// `Vec` of values from `element`, length drawn from `len`.
    pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = Strategy::sample(&(self.len.lo..self.len.hi), rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __ran: u32 = 0;
                let mut __case: u64 = 0;
                // Cap total attempts so a too-strict prop_assume! cannot
                // spin forever: allow 10x rejections.
                while __ran < __config.cases && __case < u64::from(__config.cases) * 10 {
                    let mut __rng = $crate::TestRng::deterministic(__case);
                    __case += 1;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} failed: {}",
                                __case - 1,
                                msg
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports through proptest instead of panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` equivalent of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{} == {} (`{:?}` vs `{:?}`)",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` equivalent of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{} != {} (both `{:?}`)",
                        stringify!($left),
                        stringify!($right),
                        __l
                    )));
                }
            }
        }
    };
}

/// Skips the current case when its sampled inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic(7);
        for _ in 0..2000 {
            let v = crate::Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = crate::Strategy::sample(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&w));
            let f = crate::Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let big = crate::Strategy::sample(&(0u128..=u128::MAX), &mut rng);
            let _ = big; // full-domain draw must not panic
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = crate::TestRng::deterministic(11);
            crate::Strategy::sample(
                &crate::collection::vec(0u64..100, 1usize..20),
                &mut rng,
            )
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, flip in any::<bool>(), xs in crate::collection::vec(0u32..10, 0usize..5)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99, "x was {}", x);
            prop_assert_eq!(flip, flip);
            prop_assert!(xs.len() < 5);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)], d in (0u32..=10).prop_map(|i| f64::from(i) / 10.0)) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
