//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the JSON-value data model
//! of the sibling `serde` shim, producing the same external JSON shapes as
//! upstream serde for the item shapes this workspace uses: named-field
//! structs, tuple/newtype structs, enums with unit and tuple variants, and
//! the `#[serde(try_from = "T", into = "T")]` container attributes.
//!
//! Parsing is hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). Unsupported shapes (generics, struct variants) fail
//! loudly at compile time rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("generated impl parses")
}

struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(try_from = "T")]` payload, if any.
    try_from: Option<String>,
    /// `#[serde(into = "T")]` payload, if any.
    into: Option<String>,
}

enum Kind {
    NamedStruct(Vec<String>),
    /// Tuple struct with the given field count (1 = newtype).
    TupleStruct(usize),
    UnitStruct,
    /// Variants as `(name, arity)`; arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut try_from = None;
    let mut into = None;
    while is_punct(tts.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tts.get(i + 1) {
            parse_serde_attr(&g.stream(), &mut try_from, &mut into);
        }
        i += 2;
    }

    if is_ident(tts.get(i), "pub") {
        i += 1;
        if matches!(tts.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kw = expect_ident(tts.get(i));
    i += 1;
    let name = expect_ident(tts.get(i));
    i += 1;
    assert!(
        !is_punct(tts.get(i), '<'),
        "serde shim derive: generic type `{name}` is unsupported"
    );

    let kind = match kw.as_str() {
        "struct" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(&g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g.stream(), &name))
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };

    Item {
        name,
        kind,
        try_from,
        into,
    }
}

fn is_punct(tt: Option<&TokenTree>, ch: char) -> bool {
    matches!(tt, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn is_ident(tt: Option<&TokenTree>, name: &str) -> bool {
    matches!(tt, Some(TokenTree::Ident(id)) if id.to_string() == name)
}

fn expect_ident(tt: Option<&TokenTree>) -> String {
    match tt {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Extracts `try_from`/`into` from a `serde(...)` attribute body, if the
/// given attribute is a serde attribute at all.
fn parse_serde_attr(attr: &TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let tts: Vec<TokenTree> = attr.clone().into_iter().collect();
    if !is_ident(tts.first(), "serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = tts.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let key = expect_ident(args.get(j));
        assert!(
            is_punct(args.get(j + 1), '='),
            "serde shim derive: unsupported serde attribute `{key}` (expected `{key} = \"...\"`)"
        );
        let lit = match args.get(j + 2) {
            Some(TokenTree::Literal(l)) => l.to_string(),
            other => panic!("serde shim derive: expected string literal, found {other:?}"),
        };
        let value = lit.trim_matches('"').to_string();
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
        }
        j += 3;
        if is_punct(args.get(j), ',') {
            j += 1;
        }
    }
}

/// Skips `#[...]` attribute pairs starting at `*i`.
fn skip_attrs(tts: &[TokenTree], i: &mut usize) {
    while is_punct(tts.get(*i), '#') {
        *i += 2;
    }
}

/// Skips a `pub` / `pub(...)` visibility marker starting at `*i`.
fn skip_vis(tts: &[TokenTree], i: &mut usize) {
    if is_ident(tts.get(*i), "pub") {
        *i += 1;
        if matches!(tts.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skips type tokens until a comma at angle-bracket depth zero.
fn skip_type(tts: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tts.len() {
        match &tts[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tts: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tts.len() {
        skip_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        skip_vis(&tts, &mut i);
        fields.push(expect_ident(tts.get(i)));
        i += 1;
        assert!(is_punct(tts.get(i), ':'), "serde shim derive: expected `:`");
        i += 1;
        skip_type(&tts, &mut i);
    }
    fields
}

fn count_tuple_fields(body: &TokenStream) -> usize {
    let tts: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tts.len() {
        skip_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        skip_vis(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        count += 1;
        skip_type(&tts, &mut i);
    }
    count
}

fn parse_variants(body: &TokenStream, enum_name: &str) -> Vec<(String, usize)> {
    let tts: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tts.len() {
        skip_attrs(&tts, &mut i);
        if i >= tts.len() {
            break;
        }
        let vname = expect_ident(tts.get(i));
        i += 1;
        let arity = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_tuple_fields(&g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => panic!(
                "serde shim derive: struct variant `{enum_name}::{vname}` is unsupported"
            ),
            _ => 0,
        };
        variants.push((vname, arity));
        if is_punct(tts.get(i), ',') {
            i += 1;
        }
    }
    variants
}

fn bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|k| format!("__f{k}")).collect()
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let __proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &item.kind {
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            Kind::NamedStruct(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
            }
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|(v, arity)| match arity {
                        0 => format!(
                            "{name}::{v} => \
                             ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                        ),
                        1 => format!(
                            "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        n => {
                            let binds = bindings(*n).join(", ");
                            let items: Vec<String> = bindings(*n)
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{v}({binds}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.try_from {
        format!(
            "let __proxy: {proxy} = ::serde::Deserialize::from_value(value)?;\n\
             ::std::convert::TryFrom::try_from(__proxy)\
             .map_err(::serde::Error::custom)"
        )
    } else {
        match &item.kind {
            Kind::UnitStruct => format!(
                "match value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err(::serde::Error::expected(\"null\", other)),\n\
                 }}"
            ),
            Kind::TupleStruct(1) => {
                format!("::std::result::Result::map(::serde::Deserialize::from_value(value), {name})")
            }
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         other => ::std::result::Result::Err(\
                             ::serde::Error::expected(\"array of length {n}\", other)),\n\
                     }}",
                    items.join(", ")
                )
            }
            Kind::NamedStruct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::Value::field(__fields, \"{f}\"))\
                             .map_err(|e| ::serde::Error::custom(\
                             ::std::format!(\"field `{f}`: {{e}}\")))?"
                        )
                    })
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::Object(__fields) => \
                             ::std::result::Result::Ok({name} {{ {} }}),\n\
                         other => ::std::result::Result::Err(\
                             ::serde::Error::expected(\"object\", other)),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Kind::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, arity)| *arity == 0)
                    .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, arity)| *arity > 0)
                    .map(|(v, arity)| {
                        if *arity == 1 {
                            format!(
                                "\"{v}\" => ::std::result::Result::Ok(\
                                 {name}::{v}(::serde::Deserialize::from_value(__payload)?)),"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            format!(
                                "\"{v}\" => match __payload {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                         ::std::result::Result::Ok({name}::{v}({})),\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::Error::expected(\"array of length {arity}\", other)),\n\
                                 }},",
                                items.join(", ")
                            )
                        }
                    })
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::String(__s) => match __s.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }},\n\
                         ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                             let (__tag, __payload) = &__fields[0];\n\
                             match __tag.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }}\n\
                         }},\n\
                         other => ::std::result::Result::Err(\
                             ::serde::Error::expected(\"{name} variant\", other)),\n\
                     }}",
                    unit_arms.join("\n"),
                    data_arms.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
