//! Watch the race happen: cycle-by-cycle lanes of the canonical increment
//! on the operational simulator — the machine-level analogue of the paper's
//! Figure 2 interleaving picture.
//!
//! ```text
//! cargo run --release --example race_timeline [model] [seed]
//! ```

use execsim::timeline::run_traced;
use execsim::{increment_workload, SimParams};
use memmodel::MemoryModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let model: MemoryModel = args
        .next()
        .map(|s| s.parse().expect("sc, tso, pso, or wo"))
        .unwrap_or(MemoryModel::Tso);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(3);

    println!("two cores, canonical increment, model {model}, seed {seed}");
    println!("glyphs: R/W = shared load/store issue, w = shared store visible,");
    println!("        l/s = private load/store, a = add, F = fence, . = idle\n");

    let mut rng = SmallRng::seed_from_u64(seed);
    let programs = increment_workload(2, 6, &mut rng);
    let timeline = run_traced(programs, SimParams::for_model(model), &mut rng)
        .expect("small machines quiesce");
    print!("{}", timeline.render());

    println!();
    for core in 0..2 {
        let load = timeline.shared_load_cycle(core);
        let visible = timeline.shared_store_visible_cycle(core);
        if let (Some(l), Some(v)) = (load, visible) {
            println!(
                "core {core}: read x at cycle {l}, its write became visible at cycle {v} \
                 (operational window {} cycles)",
                v - l
            );
        }
    }
    println!(
        "\nWhen the two [read, visible] spans overlap, one increment reads a stale x\n\
         and the final value drops below 2 — the §2.2 atomicity violation, live."
    );
    println!("Try different seeds and models; under SC the spans are tight (the store\ncommits the same cycle), under TSO/PSO the buffer stretches them.");
}
