//! Quickstart: the paper's headline numbers in one screen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mmreliab::{MemoryModel, ModelComparison, ReliabilityModel};

fn main() {
    println!("The Impact of Memory Models on Software Reliability (PODC 2011)");
    println!("================================================================\n");

    // Table 1: which orderings each model relaxes.
    println!("{}", mmreliab::memmodel::render_table1());

    // Theorem 6.2: with two threads racing on the canonical atomicity
    // violation, how likely is a clean (bug-free) execution?
    println!("Two threads, canonical atomicity violation — survival Pr[A]:\n");
    for model in MemoryModel::NAMED {
        let rm = ReliabilityModel::new(model, 2);
        let (lo, hi) = rm.log2_survival_bounds().expect("named model");
        let (lo, hi) = (2f64.powf(lo), 2f64.powf(hi));
        let paper = if (hi - lo).abs() < 1e-9 {
            format!("= {lo:.6}")
        } else {
            format!("in ({lo:.6}, {hi:.6})")
        };
        println!("  {:<4} paper {paper}", model.short_name());
    }

    // Measure it end-to-end: settle two copies of a random program, shift,
    // and test window disjointness.
    println!("\nMeasured by end-to-end simulation (100k trials):\n");
    let cmp = ModelComparison::run(2, 100_000, 7);
    print!("{cmp}");

    // The punchline (Theorem 6.3): as threads multiply, the reliability
    // advantage of strict models evaporates.
    println!("\nSurvival collapses like e^(-n^2) for EVERY model (log2 Pr[A]):\n");
    for n in [2usize, 4, 8, 16] {
        let sc = ReliabilityModel::new(MemoryModel::Sc, n)
            .estimate_survival_rb(20_000, 11)
            .log2_survival;
        let wo = ReliabilityModel::new(MemoryModel::Wo, n)
            .estimate_survival_rb(20_000, 13)
            .log2_survival;
        println!(
            "  n={n:<3} SC {sc:>9.2}   WO {wo:>9.2}   (gap {:.1} of {:.0} total)",
            (sc - wo).abs(),
            sc.abs()
        );
    }
    println!("\nStrictness buys ever-less as n grows — the paper's takeaway.");
}
