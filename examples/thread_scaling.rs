//! Theorem 6.3 live: survival probability vs thread count per model.
//!
//! ```text
//! cargo run --release --example thread_scaling
//! ```

use memmodel::MemoryModel;
use mmreliab::mmr_core::scaling_curve;
use textplot::{Chart, Table};

fn main() {
    let ns = [2usize, 3, 4, 6, 8, 12, 16];
    let trials = 60_000;

    println!("Rao-Blackwellised survival estimates (shared-program model):\n");
    let points = scaling_curve(&MemoryModel::NAMED, &ns, trials, 2024);

    let mut table = Table::new(vec!["n", "model", "log2 Pr[A]", "-log2 Pr[A]/n^2"]);
    for p in &points {
        table.row(vec![
            p.n.to_string(),
            p.model.short_name().into(),
            format!("{:.2}", p.log2_survival),
            format!("{:.4}", p.normalized_exponent),
        ]);
    }
    print!("{}", table.render());

    let mut chart = Chart::new(64, 16);
    chart.title("\n-log2 Pr[A] / n^2 vs n   (all models converge: Theorem 6.3)");
    for model in MemoryModel::NAMED {
        chart.series(
            model.short_name(),
            points
                .iter()
                .filter(|p| p.model == model)
                .map(|p| (p.n as f64, p.normalized_exponent)),
        );
    }
    println!("{}", chart.render());

    // Emit an SVG alongside, demonstrating the figure pipeline.
    let series: Vec<(&str, Vec<(f64, f64)>)> = MemoryModel::NAMED
        .iter()
        .map(|&m| {
            (
                m.short_name(),
                points
                    .iter()
                    .filter(|p| p.model == m)
                    .map(|p| (p.n as f64, p.normalized_exponent))
                    .collect(),
            )
        })
        .collect();
    let svg = textplot::svg::line_chart("normalised exponent vs n", &series, 640, 400);
    let path = std::env::temp_dir().join("thread_scaling.svg");
    if std::fs::write(&path, svg).is_ok() {
        println!("SVG written to {}", path.display());
    }
}
