//! The §2.2 buggy counter, run on the operational multiprocessor.
//!
//! Two (or more) cores each execute `LD x; ADD 1; ST x` with private filler
//! accesses in front; lost increments measure bug manifestation directly.
//!
//! ```text
//! cargo run --release --example atomicity_violation [n_threads]
//! ```

use execsim::{increment_workload, increment_workload_fenced, Machine, SimParams};
use memmodel::fence::FenceKind;
use memmodel::MemoryModel;
use montecarlo::{Runner, Seed};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("thread count"))
        .unwrap_or(2);
    let trials = 50_000u64;
    let filler = 8;

    println!("canonical atomicity violation on {n} simulated cores\n");
    println!("each core runs:  <{filler} private filler ops>; LD x; ADD 1; ST x\n");

    println!("{:<6} {:>12} {:>14} {:>12}", "model", "bug rate", "mean final x", "mean cycles");
    for model in MemoryModel::NAMED {
        let params = SimParams::for_model(model);
        let stats = Runner::new(Seed(42)).fold(
            trials,
            || (0u64, 0i64, 0u64),
            move |rng| {
                let programs = increment_workload(n, filler, rng);
                let mut machine = Machine::new(programs, params, rng);
                let out = machine.run(rng).expect("quiesces");
                (out.bug_manifested(), out.shared_value(), out.cycles())
            },
            |acc, (bug, x, cycles)| {
                acc.0 += u64::from(bug);
                acc.1 += x;
                acc.2 += cycles;
            },
            |a, b| {
                a.0 += b.0;
                a.1 += b.1;
                a.2 += b.2;
            },
        );
        println!(
            "{:<6} {:>12.4} {:>14.3} {:>12.1}",
            model.short_name(),
            stats.0 as f64 / trials as f64,
            stats.1 as f64 / trials as f64,
            stats.2 as f64 / trials as f64,
        );
    }

    println!("\nwith a FULL fence before the critical load (the §7 mitigation):\n");
    println!("{:<6} {:>12}", "model", "bug rate");
    for model in [MemoryModel::Tso, MemoryModel::Wo] {
        let params = SimParams::for_model(model);
        let est = Runner::new(Seed(43)).bernoulli(trials, move |rng| {
            let programs = increment_workload_fenced(n, filler, FenceKind::Full, rng);
            let mut machine = Machine::new(programs, params, rng);
            machine.run(rng).expect("quiesces").bug_manifested()
        });
        println!("{:<6} {:>12.4}", model.short_name(), est.point());
    }
    println!("\nThe fence narrows the racy window back to its SC size; the");
    println!("residual bug rate is the unavoidable SC-level race of §2.2.");
}
