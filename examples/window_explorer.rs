//! Explore the generalised model of §3.1.2 footnote 3: sweep the swap
//! probability `s`, the store probability `p`, and custom reorder matrices,
//! and watch the critical-window distribution and two-thread survival move.
//!
//! ```text
//! cargo run --release --example window_explorer
//! ```

use memmodel::{MemoryModel, ReorderMatrix, SettleProbs};
use montecarlo::{Runner, Seed};
use progmodel::ProgramGenerator;
use settle::Settler;
use shiftproc::ShiftProcess;
use textplot::{sparkline, Table};

const TRIALS: u64 = 60_000;

fn survival_and_window(settler: Settler, p: f64, seed: u64) -> (f64, f64, Vec<f64>) {
    let gen = ProgramGenerator::new(48)
        .with_store_probability(p)
        .expect("valid p");
    let hist = Runner::new(Seed(seed)).histogram(TRIALS, move |rng| {
        let program = gen.generate(rng);
        settler.sample_gamma(&program, rng)
    });
    let est = Runner::new(Seed(seed ^ 1)).bernoulli(TRIALS, move |rng| {
        let program = gen.generate(rng);
        let windows: Vec<u64> = (0..2)
            .map(|_| settler.settle(&program, rng).window_len())
            .collect();
        ShiftProcess::canonical().simulate_disjoint(&windows, rng)
    });
    let pmf: Vec<f64> = (0..8).map(|g| hist.pmf(g)).collect();
    (est.point(), hist.mean(), pmf)
}

fn main() {
    println!("sweep 1: swap probability s under TSO (paper fixes s = 1/2)\n");
    let mut t = Table::new(vec!["s", "mean gamma", "Pr[A] n=2", "window pmf gamma=0.."]);
    for s in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let settler = Settler::new(
            MemoryModel::Tso.matrix(),
            SettleProbs::uniform(s).expect("valid s"),
        );
        let (surv, mean, pmf) = survival_and_window(settler, 0.5, 100 + (s * 10.0) as u64);
        t.row(vec![
            format!("{s:.1}"),
            format!("{mean:.4}"),
            format!("{surv:.4}"),
            sparkline(&pmf),
        ]);
    }
    print!("{}", t.render());

    println!("\nsweep 2: store probability p under TSO (more stores = wider windows)\n");
    let mut t = Table::new(vec!["p", "mean gamma", "Pr[A] n=2", "window pmf gamma=0.."]);
    for p in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let settler = Settler::for_model(MemoryModel::Tso);
        let (surv, mean, pmf) = survival_and_window(settler, p, 200 + (p * 10.0) as u64);
        t.row(vec![
            format!("{p:.1}"),
            format!("{mean:.4}"),
            format!("{surv:.4}"),
            sparkline(&pmf),
        ]);
    }
    print!("{}", t.render());

    println!("\nsweep 3: all sixteen reorder matrices (custom models), s = p = 1/2\n");
    let mut t = Table::new(vec!["matrix", "named", "mean gamma", "Pr[A] n=2"]);
    for bits in 0u8..16 {
        let matrix = ReorderMatrix::new(
            bits & 8 != 0, // ST/ST
            bits & 4 != 0, // ST/LD
            bits & 2 != 0, // LD/ST
            bits & 1 != 0, // LD/LD
        );
        let named = MemoryModel::NAMED
            .iter()
            .find(|m| m.matrix() == matrix)
            .map(|m| m.short_name())
            .unwrap_or("");
        let settler = Settler::new(matrix, SettleProbs::canonical());
        let (surv, mean, _) = survival_and_window(settler, 0.5, 300 + u64::from(bits));
        t.row(vec![
            matrix.to_string(),
            named.into(),
            format!("{mean:.4}"),
            format!("{surv:.4}"),
        ]);
    }
    print!("{}", t.render());
    println!("\ncolumns of the matrix: ST/ST ST/LD LD/ST LD/LD (X = relaxed, . = enforced)");
    println!("note how survival depends almost entirely on whether ST/LD is relaxed —");
    println!("only relaxations that let the critical LD climb grow the window.");
}
