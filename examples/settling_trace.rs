//! Figure 1 live: a random settling run rendered round by round.
//!
//! ```text
//! cargo run --release --example settling_trace [model] [m] [seed]
//! ```
//!
//! e.g. `cargo run --example settling_trace tso 8 5`

use memmodel::MemoryModel;
use progmodel::ProgramGenerator;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use settle::SettleTrace;

fn main() {
    let mut args = std::env::args().skip(1);
    let model: MemoryModel = args
        .next()
        .map(|s| s.parse().expect("sc, tso, pso, or wo"))
        .unwrap_or(MemoryModel::Tso);
    let m: usize = args.next().map(|s| s.parse().expect("m")).unwrap_or(6);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(11);

    let mut rng = SmallRng::seed_from_u64(seed);
    let program = ProgramGenerator::new(m).generate(&mut rng);
    println!("model {model}, m = {m}, seed = {seed}");
    println!("initial program order: {program}\n");

    let trace = SettleTrace::run(model, &program, &mut rng);

    // Header: S_0 then one column per settling round.
    print!("{:>8}", "S_0");
    for r in trace.rounds() {
        print!("{:>8}", format!("S_{}", r.settling + 1));
    }
    println!();

    for pos in 0..program.len() {
        print!("{:>8}", label(&program, pos));
        for r in trace.rounds() {
            print!("{:>8}", label(&program, r.order[pos]));
        }
        println!();
    }

    println!("\nclimb per round:");
    for r in trace.rounds() {
        if r.climbed > 0 {
            println!(
                "  round {:>2}: {} climbed {} position(s)",
                r.settling + 1,
                label(&program, r.settling),
                r.climbed
            );
        }
    }
    let settled = trace.final_settled();
    println!(
        "\nfinal critical window: gamma = {} (window length Gamma = {})",
        settled.gamma(),
        settled.window_len()
    );
    println!(
        "the bottom {} instruction(s) of the final order form the critical window",
        settled.window_len()
    );
}

fn label(program: &progmodel::Program, idx: usize) -> String {
    let instr = program[idx];
    match instr.op_type() {
        Some(t) if instr.is_critical() => format!("{t}*"),
        Some(t) => t.to_string(),
        None => instr.to_string(),
    }
}
