#!/bin/sh
# Tier-1 gate: build, full test suite, and lints (warnings are errors).
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --all-targets --offline --workspace -- -D warnings

# The telemetry-disabled build must stay a compile-time no-op path.
cargo build --offline -p obs --no-default-features
cargo test -q --offline -p obs --no-default-features
cargo build --offline -p montecarlo --no-default-features

# Fast benchmark smoke: the trajectory must run end to end and emit valid JSON.
BENCH_OUT="$(mktemp -d)/BENCH_smoke.json"
cargo run --release --offline -p mmr-bench --bin experiments -- bench --trials 2000 --out "$BENCH_OUT"
grep -q '"trials_per_sec"' "$BENCH_OUT"
grep -q '"joined_speedup_vs_legacy"' "$BENCH_OUT"
grep -q '"chunk_width"' "$BENCH_OUT"
grep -q '"telemetry_overhead"' "$BENCH_OUT"
rm -rf "$(dirname "$BENCH_OUT")"

# Cross-thread-count determinism smoke: a seeded experiment run must emit
# identical structured results at --threads 1 and --threads 4 once the
# timing/environment metadata (elapsed_secs, threads, host_cores) is
# filtered out — with telemetry collection live on both runs.
DET_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 1 --json "$DET_DIR/t1.json" \
  --metrics "$DET_DIR/m1.json" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 4 --json "$DET_DIR/t4.json" \
  --metrics "$DET_DIR/m4.json" lem42 thm62
grep -vE '"(elapsed_secs|threads|host_cores)":' "$DET_DIR/t1.json" > "$DET_DIR/t1.stripped"
grep -vE '"(elapsed_secs|threads|host_cores)":' "$DET_DIR/t4.json" > "$DET_DIR/t4.stripped"
diff "$DET_DIR/t1.stripped" "$DET_DIR/t4.stripped"
grep -q '"mc.runner.chunks_claimed"' "$DET_DIR/m4.json"
rm -rf "$DET_DIR"

# Metrics snapshot schema check: a full registry run with --metrics must
# emit every runner/pool/per-model counter (validated in-process).
cargo test -q --offline -p mmr-bench --test metrics_schema
