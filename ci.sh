#!/bin/sh
# Tier-1 gate: build, full test suite, and lints (warnings are errors).
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --all-targets --offline --workspace -- -D warnings

# Fast benchmark smoke: the trajectory must run end to end and emit valid JSON.
BENCH_OUT="$(mktemp -d)/BENCH_smoke.json"
cargo run --release --offline -p mmr-bench --bin experiments -- bench --trials 2000 --out "$BENCH_OUT"
grep -q '"trials_per_sec"' "$BENCH_OUT"
grep -q '"joined_speedup_vs_legacy"' "$BENCH_OUT"
rm -rf "$(dirname "$BENCH_OUT")"
