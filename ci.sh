#!/bin/sh
# Tier-1 gate: build, full test suite, and lints (warnings are errors).
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --all-targets --offline --workspace -- -D warnings
