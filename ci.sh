#!/bin/sh
# Tier-1 gate: build, full test suite, and lints (warnings are errors).
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --all-targets --offline --workspace -- -D warnings

# The telemetry-disabled build must stay a compile-time no-op path.
cargo build --offline -p obs --no-default-features
cargo test -q --offline -p obs --no-default-features
cargo build --offline -p montecarlo --no-default-features

# Fast benchmark smoke: the trajectory must run end to end and emit valid
# JSON, plus structurally valid Chrome-trace and Prometheus exports.
BENCH_DIR="$(mktemp -d)"
BENCH_OUT="$BENCH_DIR/BENCH_smoke.json"
cargo run --release --offline -p mmr-bench --bin experiments -- bench --trials 2000 \
  --out "$BENCH_OUT" --trace "$BENCH_DIR/trace.json" \
  --metrics "$BENCH_DIR/metrics.prom" --metrics-format prom
grep -q '"trials_per_sec"' "$BENCH_OUT"
grep -q '"joined_speedup_vs_legacy"' "$BENCH_OUT"
grep -q '"chunk_width"' "$BENCH_OUT"
grep -q '"telemetry_overhead"' "$BENCH_OUT"
grep -q '"history"' "$BENCH_OUT"
# The trace must be JSON with a non-empty traceEvents array.
python3 - "$BENCH_DIR/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert isinstance(events, list) and events, "traceEvents must be non-empty"
EOF
# The exposition must lint clean: TYPE before samples, monotone cumulative
# buckets, +Inf == _count.
python3 - "$BENCH_DIR/metrics.prom" <<'EOF'
import sys
types, hist = {}, {}
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ")
        types[name] = kind
        continue
    if not line or line.startswith("#"):
        continue
    sample = line.split(" ")[0]
    name = sample.split("{")[0]
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            base = name[: -len(suffix)]
    assert base in types, f"sample {name} has no TYPE declaration"
    if types[base] == "histogram":
        h = hist.setdefault(base, {"buckets": [], "count": None})
        if name.endswith("_bucket"):
            le = sample.split('le="')[1].split('"')[0]
            h["buckets"].append((le, int(line.split(" ")[1])))
        elif name.endswith("_count"):
            h["count"] = int(line.split(" ")[1])
for base, h in hist.items():
    values = [v for _, v in h["buckets"]]
    assert values == sorted(values), f"{base}: buckets not cumulative"
    assert h["buckets"][-1][0] == "+Inf", f"{base}: missing +Inf bucket"
    assert values[-1] == h["count"], f"{base}: +Inf != _count"
print(f"prom lint ok: {len(types)} series, {len(hist)} histograms")
EOF
# Perf gate, warn-only: compare against the checked-in trajectory but do
# not fail CI on throughput noise from the host running this script.
cargo run --release --offline -p mmr-bench --bin experiments -- bench --trials 2000 \
  --baseline BENCH_e2e.json --out "$BENCH_DIR/BENCH_gated.json" \
  || echo "warning: perf gate regressed vs BENCH_e2e.json (soft check)"
rm -rf "$BENCH_DIR"

# Cross-thread-count determinism smoke: a seeded experiment run must emit
# identical structured results at --threads 1 and --threads 4 once the
# timing/environment metadata (elapsed_secs, threads, host_cores,
# trials_per_sec) is filtered out — with telemetry collection live on both
# runs. The statistical diagnostics (mean, ci95, rse) stay in the diff.
DET_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 1 --json "$DET_DIR/t1.json" \
  --metrics "$DET_DIR/m1.json" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 4 --json "$DET_DIR/t4.json" \
  --metrics "$DET_DIR/m4.json" lem42 thm62
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$DET_DIR/t1.json" > "$DET_DIR/t1.stripped"
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$DET_DIR/t4.json" > "$DET_DIR/t4.stripped"
diff "$DET_DIR/t1.stripped" "$DET_DIR/t4.stripped"
grep -q '"mc.runner.chunks_claimed"' "$DET_DIR/m4.json"
rm -rf "$DET_DIR"

# Batch-lane determinism smoke: the same seeded --lanes 8 windows run must
# print bit-identical output at --workers 1 and --workers 4 (the lane
# path's per-trial counter streams are invariant in both lane width and
# worker count; DESIGN.md §14).
LANE_DIR="$(mktemp -d)"
cargo run --release --offline -- windows --model wo --trials 20000 --seed 11 \
  --lanes 8 --workers 1 > "$LANE_DIR/w1.txt"
cargo run --release --offline -- windows --model wo --trials 20000 --seed 11 \
  --lanes 8 --workers 4 > "$LANE_DIR/w4.txt"
diff "$LANE_DIR/w1.txt" "$LANE_DIR/w4.txt"
rm -rf "$LANE_DIR"

# Metrics snapshot schema check: a full registry run with --metrics must
# emit every runner/pool/per-model counter (validated in-process), and
# METRICS.md must document every name such a run emits.
cargo test -q --offline -p mmr-bench --test metrics_schema
cargo test -q --offline -p mmr-bench --test metrics_doc

# Chaos smoke: a seeded fault-injection run (panics, stalls, corruption,
# torn journal writes) must recover to results bit-identical with the
# fault-free run above, modulo timing metadata and the fault ledger.
CHAOS_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --json "$CHAOS_DIR/clean.json" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --json "$CHAOS_DIR/chaos.json" \
  --checkpoint "$CHAOS_DIR/chaos.mmrj" --chaos 20110606:mixed lem42 thm62
python3 - "$CHAOS_DIR/clean.json" "$CHAOS_DIR/chaos.json" <<'EOF2'
import json, sys
def strip(node):
    if isinstance(node, dict):
        for key in ("elapsed_secs", "threads", "host_cores", "trials_per_sec", "fault_ledger"):
            node.pop(key, None)
        for value in node.values():
            strip(value)
    elif isinstance(node, list):
        for value in node:
            strip(value)
clean, chaos = (json.load(open(p)) for p in sys.argv[1:3])
strip(clean); strip(chaos)
assert clean == chaos, "chaos run diverged from the fault-free run"
print("chaos smoke ok: recovered run is bit-identical")
EOF2
# Torn-journal recovery: a partial (kill -9 style) trailing record must be
# truncated on the next open and the victim experiment re-run losslessly.
printf 'MMRJ 1 exp deadbeef {"id":"f2","trunc' >> "$CHAOS_DIR/chaos.mmrj"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --json "$CHAOS_DIR/resumed.json" \
  --checkpoint "$CHAOS_DIR/chaos.mmrj" lem42 thm62 2> "$CHAOS_DIR/resume.log"
grep -q "skipping lem42" "$CHAOS_DIR/resume.log"
python3 - "$CHAOS_DIR/clean.json" "$CHAOS_DIR/resumed.json" <<'EOF2'
import json, sys
def strip(node):
    if isinstance(node, dict):
        for key in ("elapsed_secs", "threads", "host_cores", "trials_per_sec", "fault_ledger"):
            node.pop(key, None)
        for value in node.values():
            strip(value)
    elif isinstance(node, list):
        for value in node:
            strip(value)
clean, resumed = (json.load(open(p)) for p in sys.argv[1:3])
strip(clean); strip(resumed)
assert clean == resumed, "torn-journal resume diverged from the fault-free run"
print("torn-journal recovery ok")
EOF2
rm -rf "$CHAOS_DIR"

# Result-cache smoke: the same seeded experiment run against a --cache
# directory must be bit-identical cold (populating) and warm (served from
# the store), the warm run must actually hit (mc.cache.hits > 0 in its
# metrics snapshot), and an unusable cache directory must degrade to an
# uncached run — results intact, typed warning, exit code 2 (the
# --metrics/--checkpoint error contract).
CACHE_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --cache "$CACHE_DIR/store" \
  --json "$CACHE_DIR/cold.json" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --cache "$CACHE_DIR/store" \
  --json "$CACHE_DIR/warm.json" --metrics "$CACHE_DIR/warm_metrics.json" lem42 thm62
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$CACHE_DIR/cold.json" > "$CACHE_DIR/cold.stripped"
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$CACHE_DIR/warm.json" > "$CACHE_DIR/warm.stripped"
diff "$CACHE_DIR/cold.stripped" "$CACHE_DIR/warm.stripped"
python3 - "$CACHE_DIR/warm_metrics.json" <<'EOF2'
import json, sys
counters = {c["name"]: c["value"] for c in json.load(open(sys.argv[1]))["counters"]}
assert counters.get("mc.cache.hits", 0) > 0, f"warm run produced no cache hits: {counters}"
assert counters.get("mc.cache.errors", 0) == 0, f"cache errors on a healthy store: {counters}"
print(f"cache smoke ok: {counters['mc.cache.hits']} hits, {counters.get('mc.cache.misses', 0)} misses")
EOF2
CACHE_RC=0
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --cache "$CACHE_DIR/cold.json/not-a-dir" \
  --json "$CACHE_DIR/degraded.json" lem42 thm62 \
  2> "$CACHE_DIR/degraded.log" || CACHE_RC=$?
test "$CACHE_RC" -eq 2
grep -q "result cache disabled" "$CACHE_DIR/degraded.log"
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$CACHE_DIR/degraded.json" > "$CACHE_DIR/degraded.stripped"
diff "$CACHE_DIR/cold.stripped" "$CACHE_DIR/degraded.stripped"
rm -rf "$CACHE_DIR"

# Flight-recorder smoke: a seeded chaos run mirrored with --flight must be
# reconstructible offline — `inspect` parses the log into a non-empty
# timeline — and diffing it against its fault-free twin must report zero
# payload divergence (faults perturb the schedule, never the result). An
# unwritable --flight path degrades to a warning plus exit code 2 with
# results intact.
FLIGHT_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 1 --json "$FLIGHT_DIR/clean.json" \
  --flight "$FLIGHT_DIR/clean.flight" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 1 --json "$FLIGHT_DIR/chaos.json" \
  --flight "$FLIGHT_DIR/chaos.flight" --chaos 20110606:mixed \
  --dossier-dir "$FLIGHT_DIR/dossiers" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  inspect "$FLIGHT_DIR/chaos.flight" > "$FLIGHT_DIR/inspect.txt"
grep -q "flight timeline: " "$FLIGHT_DIR/inspect.txt"
grep -q "chunk_claimed" "$FLIGHT_DIR/inspect.txt"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  inspect "$FLIGHT_DIR/chaos.flight" --diff "$FLIGHT_DIR/clean.flight" \
  > "$FLIGHT_DIR/diff.txt"
grep -q "payload divergence: 0" "$FLIGHT_DIR/diff.txt"
FLIGHT_RC=0
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 1 --json "$FLIGHT_DIR/degraded.json" \
  --flight "$FLIGHT_DIR/clean.json/not-a-file" lem42 thm62 \
  2> "$FLIGHT_DIR/degraded.log" || FLIGHT_RC=$?
test "$FLIGHT_RC" -eq 2
grep -q "flight" "$FLIGHT_DIR/degraded.log"
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$FLIGHT_DIR/clean.json" > "$FLIGHT_DIR/clean.stripped"
grep -vE '"(elapsed_secs|threads|host_cores|trials_per_sec)":' "$FLIGHT_DIR/degraded.json" > "$FLIGHT_DIR/degraded.stripped"
diff "$FLIGHT_DIR/clean.stripped" "$FLIGHT_DIR/degraded.stripped"
rm -rf "$FLIGHT_DIR"

# Live-telemetry smoke: a chaos run with --serve must expose a lint-clean
# Prometheus exposition and stream at least one CRC-framed MMRE event
# mid-run, and serving must be invisible in the results — the final JSON
# is bit-identical to an unserved twin. An unusable --serve address
# degrades to a warning plus exit code 2 with results intact.
SERVE_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 2 --json "$SERVE_DIR/unserved.json" \
  --chaos 20110606:mixed lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 2 --json "$SERVE_DIR/served.json" \
  --chaos 20110606:mixed --serve 127.0.0.1:0 lem42 thm62 \
  2> "$SERVE_DIR/served.log" &
SERVE_PID=$!
SERVE_PORT=""
for _ in $(seq 1 100); do
  SERVE_PORT="$(sed -n 's/^serving telemetry on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$SERVE_DIR/served.log")"
  [ -n "$SERVE_PORT" ] && break
  sleep 0.1
done
test -n "$SERVE_PORT"
# /events first (it replays the ring, then tails live until the run ends),
# then /metrics mid-run. ci.sh runs under sh, so /dev/tcp needs bash.
bash -c "exec 3<>/dev/tcp/127.0.0.1/$SERVE_PORT; printf 'GET /events HTTP/1.0\r\n\r\n' >&3; cat <&3" \
  > "$SERVE_DIR/events.scrape" &
EVENTS_PID=$!
bash -c "exec 3<>/dev/tcp/127.0.0.1/$SERVE_PORT; printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3; cat <&3" \
  > "$SERVE_DIR/metrics.scrape"
wait "$EVENTS_PID"
wait "$SERVE_PID"
# The live exposition carries build identity and lints clean: every
# sample under a TYPE declaration, histograms monotone.
grep -q '^mmr_build_info{version=' "$SERVE_DIR/metrics.scrape"
python3 - "$SERVE_DIR/metrics.scrape" <<'EOF2'
import sys
lines = open(sys.argv[1]).read().split("\n")
body = lines[lines.index("") + 1 :] if "" in lines else lines  # skip HTTP headers
types = {}
samples = 0
for line in body:
    line = line.rstrip("\r")
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ")
        types[name] = kind
        continue
    if not line or line.startswith("#"):
        continue
    name = line.split(" ")[0].split("{")[0]
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            base = name[: -len(suffix)]
    assert base in types, f"sample {name} has no TYPE declaration"
    samples += 1
assert samples > 0, "the live exposition was empty"
print(f"live exposition ok: {samples} samples, {len(types)} TYPEd series")
EOF2
# The event stream carried at least one framed event, CRC-checked.
grep -c '^MMRE 1 ' "$SERVE_DIR/events.scrape"
test "$(grep -c '^MMRE 1 ' "$SERVE_DIR/events.scrape")" -ge 1
python3 - "$SERVE_DIR/unserved.json" "$SERVE_DIR/served.json" <<'EOF2'
import json, sys
def strip(node):
    if isinstance(node, dict):
        for key in ("elapsed_secs", "threads", "host_cores", "trials_per_sec", "fault_ledger"):
            node.pop(key, None)
        for value in node.values():
            strip(value)
    elif isinstance(node, list):
        for value in node:
            strip(value)
unserved, served = (json.load(open(p)) for p in sys.argv[1:3])
strip(unserved); strip(served)
assert unserved == served, "serving telemetry changed the results"
print("serve smoke ok: served run is bit-identical")
EOF2
SERVE_RC=0
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 2 --json "$SERVE_DIR/degraded.json" \
  --chaos 20110606:mixed --serve not-an-address lem42 thm62 \
  2> "$SERVE_DIR/degraded.log" || SERVE_RC=$?
test "$SERVE_RC" -eq 2
grep -q "telemetry server disabled" "$SERVE_DIR/degraded.log"
python3 - "$SERVE_DIR/unserved.json" "$SERVE_DIR/degraded.json" <<'EOF2'
import json, sys
def strip(node):
    if isinstance(node, dict):
        for key in ("elapsed_secs", "threads", "host_cores", "trials_per_sec", "fault_ledger"):
            node.pop(key, None)
        for value in node.values():
            strip(value)
    elif isinstance(node, list):
        for value in node:
            strip(value)
unserved, degraded = (json.load(open(p)) for p in sys.argv[1:3])
strip(unserved); strip(degraded)
assert unserved == degraded, "the degraded-serve run lost results"
print("serve degradation ok: results intact, exit 2")
EOF2
rm -rf "$SERVE_DIR"
