#!/bin/sh
# Tier-1 gate: build, full test suite, and lints (warnings are errors).
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --all-targets --offline --workspace -- -D warnings

# Fast benchmark smoke: the trajectory must run end to end and emit valid JSON.
BENCH_OUT="$(mktemp -d)/BENCH_smoke.json"
cargo run --release --offline -p mmr-bench --bin experiments -- bench --trials 2000 --out "$BENCH_OUT"
grep -q '"trials_per_sec"' "$BENCH_OUT"
grep -q '"joined_speedup_vs_legacy"' "$BENCH_OUT"
grep -q '"chunk_width"' "$BENCH_OUT"
rm -rf "$(dirname "$BENCH_OUT")"

# Cross-thread-count determinism smoke: a seeded experiment run must emit
# byte-identical structured results at --threads 1 and --threads 4.
DET_DIR="$(mktemp -d)"
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 1 --json "$DET_DIR/t1.json" lem42 thm62
cargo run --release --offline -p mmr-bench --bin experiments -- \
  --quick --seed 20110606 --threads 4 --json "$DET_DIR/t4.json" lem42 thm62
diff "$DET_DIR/t1.json" "$DET_DIR/t4.json"
rm -rf "$DET_DIR"
