//! `mmreliab` — command-line interface to the reliability model.
//!
//! ```text
//! mmreliab table1
//! mmreliab survival --model tso --threads 2 [--trials N] [--seed S] [--workers W] [--lanes L]
//! mmreliab windows  --model wo  [--trials N] [--seed S] [--workers W] [--lanes L]
//! mmreliab trace    --model tso [--m M] [--seed S]
//! mmreliab opsim    [--threads N] [--trials N] [--seed S] [--workers W]
//! mmreliab litmus   [--trials N] [--seed S]
//! mmreliab sweep    --param s|p|q [--trials N] [--seed S]
//! mmreliab inspect  ARTIFACT [--diff OTHER]
//! ```
//!
//! `--threads` is the *simulated* core count `n` of the model; `--workers`
//! is how many OS threads run the Monte-Carlo trials. Workers only change
//! wall-clock time — every result is identical for any worker count.
//! `--lanes L` (1..=64) opts the `survival` and `windows` Monte-Carlo
//! estimates into the batch-lane kernels: `L` trials advance in lockstep
//! per step, each on its own counter-seeded stream. Lane results are
//! bit-identical for any `L` and any worker count, but come from a
//! different RNG stream than the scalar path, so they match the default
//! route statistically rather than bit-wise.
//!
//! `--cache DIR` enables the content-addressed result store: a repeated
//! Monte-Carlo request is served bit-identically from DIR and a grown one
//! resumes from its cached chunk prefixes. An unusable DIR degrades to an
//! uncached run with a warning and exits with code 2 after the results
//! print — the same contract as the telemetry exports below.
//!
//! Observability flags (all strictly out-of-band — no result changes):
//! `--metrics FILE` writes the process telemetry snapshot at exit (JSON by
//! default; `--metrics-format prom` switches to Prometheus text
//! exposition), `--trace FILE` writes the span ring as Chrome trace-event
//! JSON, `--progress` enables a throttled stderr heartbeat during long
//! runs, and `--quiet` suppresses status lines (errors still print) and
//! wins over `--progress`. Export failures exit with code 2 after the
//! results have printed.
//!
//! `--flight FILE` mirrors the structured flight-event ring to FILE as
//! CRC-framed `MMRE` lines; `--dossier-dir DIR` writes a crash dossier
//! (last events + metrics snapshot + fault-ledger delta) into DIR on
//! panic or degradation. Both follow the export contract: an unusable
//! path degrades with a warning and exit code 2 after results print.
//! `mmreliab inspect` renders a flight log (timeline, histogram,
//! convergence trajectory; `--diff` compares two logs) or a crash
//! dossier; checkpoint journals and cache directories are handled by the
//! wider `experiments inspect`.
//!
//! `--serve ADDR` starts the live telemetry endpoint (`GET /metrics`,
//! `/events`, `/status` over HTTP/1.0) for the duration of the run.
//! Serving is strictly out-of-band — clients attaching, detaching, or
//! stalling never change a seeded result — and an unusable ADDR follows
//! the same degradation contract as every other artifact flag: warn,
//! run to completion, exit 2.

use memmodel::MemoryModel;
use mmreliab::analytic::general::{GeneralWindowLaws, Params};
use mmreliab::settle;
use mmreliab::analytic::window_law::WindowLaws;
use mmreliab::montecarlo::{task_rng, Runner, Seed};
use mmreliab::{ModelComparison, ProgramGenerator, ReliabilityModel};
use textplot::{sparkline, BarChart, Chart, Heatmap, Table};

#[derive(Debug)]
struct Args {
    command: String,
    model: MemoryModel,
    threads: usize,
    trials: u64,
    seed: u64,
    m: usize,
    param: String,
    workers: usize,
    lanes: Option<usize>,
    cache: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    metrics_prom: bool,
    trace: Option<std::path::PathBuf>,
    flight: Option<std::path::PathBuf>,
    dossier_dir: Option<std::path::PathBuf>,
    diff: Option<std::path::PathBuf>,
    artifact: Option<std::path::PathBuf>,
    serve: Option<String>,
    progress: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, mmreliab::Error> {
    let mut args = Args {
        command: String::new(),
        model: MemoryModel::Tso,
        threads: 2,
        trials: 100_000,
        seed: 7,
        m: 8,
        param: "s".into(),
        workers: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        lanes: None,
        cache: None,
        metrics: None,
        metrics_prom: false,
        trace: None,
        flight: None,
        dossier_dir: None,
        diff: None,
        artifact: None,
        serve: None,
        progress: false,
        quiet: false,
    };
    let invalid = mmreliab::Error::InvalidArgs;
    let mut it = std::env::args().skip(1);
    args.command = it.next().ok_or_else(|| invalid(usage()))?;
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(invalid(format!("{flag} needs a value")));
        match flag.as_str() {
            "--model" => args.model = value()?.parse().map_err(|e| invalid(format!("{e}")))?,
            "--threads" => {
                args.threads = value()?.parse().map_err(|e| invalid(format!("{e}")))?;
                if args.threads == 0 {
                    return Err(invalid(format!("--threads must be at least 1\n{}", usage())));
                }
            }
            "--trials" => {
                args.trials = value()?.parse().map_err(|e| invalid(format!("{e}")))?;
                if args.trials == 0 {
                    return Err(invalid(format!("--trials must be at least 1\n{}", usage())));
                }
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| invalid(format!("{e}")))?,
            "--m" => {
                args.m = value()?.parse().map_err(|e| invalid(format!("{e}")))?;
                if args.m == 0 {
                    return Err(invalid(format!("--m must be at least 1\n{}", usage())));
                }
            }
            "--param" => args.param = value()?,
            "--workers" => {
                args.workers = value()?.parse().map_err(|e| invalid(format!("{e}")))?;
                if args.workers == 0 {
                    return Err(invalid(format!("--workers must be at least 1\n{}", usage())));
                }
            }
            "--lanes" => {
                let lanes: usize = value()?.parse().map_err(|e| invalid(format!("{e}")))?;
                if !(1..=settle::MAX_LANES).contains(&lanes) {
                    return Err(invalid(format!(
                        "--lanes must be in 1..={}\n{}",
                        settle::MAX_LANES,
                        usage()
                    )));
                }
                args.lanes = Some(lanes);
            }
            "--cache" => args.cache = Some(value()?.into()),
            "--metrics" => args.metrics = Some(value()?.into()),
            "--metrics-format" => {
                args.metrics_prom = match value()?.as_str() {
                    "prom" => true,
                    "json" => false,
                    other => {
                        return Err(invalid(format!(
                            "--metrics-format takes json or prom, got {other}"
                        )))
                    }
                }
            }
            "--trace" => args.trace = Some(value()?.into()),
            "--flight" => args.flight = Some(value()?.into()),
            "--dossier-dir" => args.dossier_dir = Some(value()?.into()),
            "--diff" => args.diff = Some(value()?.into()),
            "--serve" => args.serve = Some(value()?),
            "--progress" => args.progress = true,
            "--quiet" => args.quiet = true,
            other if !other.starts_with("--")
                && args.command == "inspect"
                && args.artifact.is_none() =>
            {
                args.artifact = Some(other.into());
            }
            other => return Err(invalid(format!("unknown flag {other}\n{}", usage()))),
        }
    }
    Ok(args)
}

fn usage() -> String {
    String::from(
        "usage: mmreliab <table1|survival|windows|trace|opsim|litmus|sweep> \
         [--model sc|tso|pso|wo] [--threads N] [--trials N] [--seed S] [--m M] [--param s|p|q] \
         [--workers W] [--lanes L] [--cache DIR] [--metrics FILE] [--metrics-format json|prom] \
         [--trace FILE] [--flight FILE] [--dossier-dir DIR] [--serve ADDR] [--progress] \
         [--quiet]\n       \
         mmreliab inspect ARTIFACT [--diff OTHER]",
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.quiet {
        obs::log::set_level(obs::log::Level::Quiet);
    }
    // --quiet wins over --progress: quiet means a silent stderr.
    obs::progress::set_enabled(args.progress && !args.quiet);
    obs::set_build_info(obs::BuildInfo::detect(
        env!("CARGO_PKG_VERSION"),
        mmreliab::montecarlo::CHUNK_WIDTH,
    ));
    obs::serve::set_status_ext(Box::new(|| {
        let fields = mmreliab::montecarlo::fault::ledger().snapshot().named_fields();
        let faults = fields
            .iter()
            .map(|&(name, count)| {
                (
                    name.to_string(),
                    serde_json::Value::Number(serde_json::Number::U(count)),
                )
            })
            .collect();
        vec![("faults".to_string(), serde_json::Value::Object(faults))]
    }));
    // Every optional artifact — cache, flight mirror, dossiers, telemetry
    // server — shares one degradation contract: an unusable path or
    // address warns, the run completes with results intact, and the
    // process exits 2. The ledger tracks what degraded.
    let mut artifacts = obs::degrade::Artifacts::new();
    if let Some(dir) = &args.cache {
        if let Some(s) = artifacts.install("result cache", store::Store::open(dir)) {
            obs::info!("result cache at {}", dir.display());
            store::install(std::sync::Arc::new(s));
        }
    }
    if let Some(path) = &args.flight {
        if artifacts
            .install("flight event log", obs::flight::mirror_to(path))
            .is_some()
        {
            obs::info!("flight events mirrored to {}", path.display());
        }
    }
    if let Some(dir) = &args.dossier_dir {
        if artifacts
            .install("crash dossiers", obs::flight::set_dossier_dir(dir))
            .is_some()
        {
            obs::info!("crash dossiers will be written to {}", dir.display());
        }
    }
    // Held for the run's duration; dropping it stops the accept loop.
    let server = args
        .serve
        .as_deref()
        .and_then(|addr| artifacts.install("telemetry server", obs::serve::serve(addr)));
    if let Some(server) = &server {
        // Unconditional (not obs::info!): scripts binding port 0 discover
        // the chosen port from this line.
        eprintln!("serving telemetry on {}", server.addr());
    }
    let result = match args.command.as_str() {
        "table1" => {
            cmd_table1();
            Ok(())
        }
        "inspect" => {
            cmd_inspect(&args);
            Ok(())
        }
        "survival" => {
            cmd_survival(&args);
            Ok(())
        }
        "windows" => {
            cmd_windows(&args);
            Ok(())
        }
        "trace" => {
            cmd_trace(&args);
            Ok(())
        }
        "opsim" => cmd_opsim(&args),
        "litmus" => {
            cmd_litmus(&args);
            Ok(())
        }
        "sweep" => {
            cmd_sweep(&args);
            Ok(())
        }
        other => {
            eprintln!("unknown command {other}\n{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    // Telemetry exports run last, so a bad export path never disturbs the
    // results above; their failures join the shared degradation ledger.
    artifacts.install("telemetry exports", emit_exports(&args));
    drop(server);
    std::process::exit(i32::from(artifacts.exit_code(0)));
}

/// The `inspect` command: renders a flight event log (with an optional
/// `--diff` against a second log), a crash dossier, or a dossier
/// directory. Anything else — journals, cache directories — is the
/// `experiments inspect` analyzer's wider beat.
fn cmd_inspect(args: &Args) {
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(2);
    };
    let Some(path) = &args.artifact else {
        fail(format!("inspect takes an artifact path\n{}", usage()));
    };
    let read = |path: &std::path::Path| -> Vec<u8> {
        std::fs::read(path)
            .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())))
    };
    let parse_flight = |path: &std::path::Path, bytes: &[u8]| -> obs::flight::ParsedLog {
        let parsed = obs::flight::parse_log(&String::from_utf8_lossy(bytes));
        if parsed.torn {
            println!(
                "note: torn tail truncated after {} valid events ({})",
                parsed.events.len(),
                path.display()
            );
        }
        if parsed.skipped > 0 {
            println!(
                "note: {} well-framed line(s) of an unknown version skipped",
                parsed.skipped
            );
        }
        parsed
    };
    let render_dossier_bytes = |path: &std::path::Path, bytes: &[u8]| {
        let text = String::from_utf8_lossy(bytes);
        match serde_json::from_str::<obs::flight::Dossier>(&text) {
            Ok(d) => print!("{}", obs::flight::render_dossier(&d)),
            Err(e) => fail(format!("{}: not a crash dossier: {e:?}", path.display())),
        }
    };
    if path.is_dir() {
        let mut names: Vec<String> = std::fs::read_dir(path)
            .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())))
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("dossier-") && n.ends_with(".json"))
            .collect();
        names.sort();
        if names.is_empty() {
            fail(format!(
                "{}: no dossiers here; use `experiments inspect` for journals and cache directories",
                path.display()
            ));
        }
        println!("dossier directory: {} dossier(s)", names.len());
        for name in names {
            println!("--- {name}");
            let file = path.join(&name);
            render_dossier_bytes(&file, &read(&file));
        }
        return;
    }
    let bytes = read(path);
    if bytes.starts_with(b"MMRE") {
        let parsed = parse_flight(path, &bytes);
        print!("{}", obs::flight::render_timeline(&parsed.events));
        print!("{}", obs::flight::render_histogram(&parsed.events));
        print!("{}", obs::flight::render_convergence(&parsed.events));
        if let Some(other) = &args.diff {
            let other_bytes = read(other);
            if !other_bytes.starts_with(b"MMRE") {
                fail(format!("{}: not a flight event log", other.display()));
            }
            let other_parsed = parse_flight(other, &other_bytes);
            println!("diff vs {}:", other.display());
            print!(
                "{}",
                obs::flight::diff_logs(&parsed.events, &other_parsed.events).render()
            );
            print!(
                "{}",
                obs::flight::diff_trajectories(&parsed.events, &other_parsed.events).render()
            );
        }
        return;
    }
    if bytes.starts_with(b"{") {
        render_dossier_bytes(path, &bytes);
        return;
    }
    fail(format!(
        "{}: not a flight log or dossier; use `experiments inspect` for journals and cache directories",
        path.display()
    ));
}

/// Writes the `--trace` and `--metrics` exports, if requested.
fn emit_exports(args: &Args) -> Result<(), mmreliab::Error> {
    let write = |path: &std::path::Path, text: String| {
        std::fs::write(path, text).map_err(|e| mmreliab::Error::Export {
            path: path.to_owned(),
            detail: e.to_string(),
        })
    };
    if let Some(path) = &args.trace {
        write(path, obs::export::chrome_trace(&obs::snapshot()))?;
        obs::info!("chrome trace written to {}", path.display());
    }
    if let Some(path) = &args.metrics {
        let snapshot = obs::snapshot();
        let text = if args.metrics_prom {
            obs::export::prometheus(&snapshot)
        } else {
            serde_json::to_string_pretty(&snapshot).expect("serializable snapshot")
        };
        write(path, text)?;
        obs::info!("metrics snapshot written to {}", path.display());
    }
    Ok(())
}

fn cmd_table1() {
    print!("{}", memmodel::render_table1());
}

fn cmd_survival(args: &Args) {
    let rm = ReliabilityModel::new(args.model, args.threads);
    println!(
        "survival Pr[A] for {} threads under {}:\n",
        args.threads, args.model
    );
    if let Some((lo, hi)) = rm.log2_survival_bounds() {
        if (hi - lo).abs() < 1e-12 {
            println!("  paper (exact):       {:.6e}", 2f64.powf(lo));
        } else {
            println!(
                "  paper bounds:        ({:.6e}, {:.6e})",
                2f64.powf(lo),
                2f64.powf(hi)
            );
        }
    }
    let rb = rm.estimate_survival_rb_with(args.trials, args.seed, args.workers);
    println!(
        "  Rao-Blackwellised:   {:.6e}   (log2 = {:.2}, {} samples)",
        rb.survival(),
        rb.log2_survival,
        rb.samples
    );
    if args.threads <= 3 {
        let direct = match args.lanes {
            Some(lanes) => {
                rm.simulate_survival_lanes_with(args.trials, args.seed ^ 1, lanes, args.workers)
            }
            None => rm.simulate_survival_with(args.trials, args.seed ^ 1, args.workers),
        };
        match args.lanes {
            Some(lanes) => println!("  direct simulation:   {direct}   (lane kernels, L = {lanes})"),
            None => println!("  direct simulation:   {direct}"),
        }
    } else {
        println!("  direct simulation:   skipped (Pr[A] ~ e^-n^2 is below MC reach)");
    }
    if args.threads == 2 {
        println!("\nall models at n = 2:\n");
        print!(
            "{}",
            ModelComparison::run_with(2, args.trials, args.seed, args.workers)
        );
    }
}

fn cmd_windows(args: &Args) {
    let rm = ReliabilityModel::new(args.model, 2);
    let h = match args.lanes {
        Some(lanes) => rm.window_histogram_lanes_with(args.trials, args.seed, lanes, args.workers),
        None => rm.window_histogram_with(args.trials, args.seed, args.workers),
    };
    let laws = WindowLaws::new();
    println!(
        "critical-window growth gamma under {} ({} samples):\n",
        args.model, args.trials
    );
    let mut table = Table::new(vec!["gamma", "measured", "paper law"]);
    for gamma in 0..=8u64 {
        let paper = laws
            .pmf(args.model, gamma)
            .map(|p| format!("{p:.6}"))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            gamma.to_string(),
            format!("{:.6}", h.pmf(gamma)),
            paper,
        ]);
    }
    print!("{}", table.render());
    let pmf: Vec<f64> = (0..=12).map(|g| h.pmf(g)).collect();
    println!("\nshape: {}", sparkline(&pmf));
    println!("mean gamma: {:.4}", h.mean());
}

fn cmd_trace(args: &Args) {
    let mut rng = task_rng(Seed(args.seed), 0);
    let program = ProgramGenerator::new(args.m).generate(&mut rng);
    println!("initial program: {program}\n");
    let trace = settle::SettleTrace::run(args.model, &program, &mut rng);
    for round in trace.rounds() {
        let labels: Vec<String> = round
            .order
            .iter()
            .map(|&i| {
                let instr = program[i];
                match instr.op_type() {
                    Some(t) if instr.is_critical() => format!("{t}*"),
                    Some(t) => t.to_string(),
                    None => instr.to_string(),
                }
            })
            .collect();
        println!(
            "after round {:>2} (x{} climbed {}): {}",
            round.settling + 1,
            round.settling + 1,
            round.climbed,
            labels.join(" ")
        );
    }
    let settled = trace.final_settled();
    println!(
        "\ngamma = {}, window length = {}",
        settled.gamma(),
        settled.window_len()
    );
}

fn cmd_opsim(args: &Args) -> Result<(), mmreliab::Error> {
    use execsim::{run_increment_trial, SimParams};
    println!(
        "operational bug rate, {} cores, canonical increment ({} trials):\n",
        args.threads, args.trials
    );
    let mut bars = BarChart::new(40);
    for model in MemoryModel::NAMED {
        let params = SimParams::for_model(model);
        let n = args.threads;
        let report = Runner::new(Seed(args.seed))
            .with_threads(args.workers)
            .try_bernoulli(args.trials, move |rng| {
                run_increment_trial(n, 8, params, rng)
            })?;
        bars.bar(model.short_name(), report.value.point());
    }
    print!("{}", bars.render());
    Ok(())
}

fn cmd_litmus(args: &Args) {
    use execsim::litmus;
    use execsim::SimParams;
    println!("relaxed-outcome frequency ({} runs each):\n", args.trials);
    let mut table = Table::new(vec!["test", "SC", "TSO", "PSO", "WO"]);
    for test in litmus::all() {
        let mut row = vec![test.name.to_string()];
        for model in MemoryModel::NAMED {
            let params = SimParams::for_model(model).without_stagger();
            let mut rng = task_rng(Seed(args.seed), u64::from(model.matrix().relaxation_count() as u32));
            let count = test.relaxed_outcome_count(params, args.trials, &mut rng);
            row.push(format!("{:.4}", count as f64 / args.trials as f64));
        }
        table.row(row);
    }
    print!("{}", table.render());
}

fn cmd_sweep(args: &Args) {
    if args.param == "grid" {
        return cmd_sweep_grid(args);
    }
    let values = [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    println!(
        "two-thread survival vs {} (analytic general laws):\n",
        args.param
    );
    let mut chart = Chart::new(60, 14);
    chart.title(format!("Pr[A] vs {}", args.param));
    for model in MemoryModel::NAMED {
        let series: Vec<(f64, f64)> = values
            .iter()
            .map(|&v| {
                let params = match args.param.as_str() {
                    "s" => Params::new(0.5, v, 0.5),
                    "p" => Params::new(v, 0.5, 0.5),
                    "q" => Params::new(0.5, 0.5, v),
                    other => {
                        eprintln!("unknown sweep parameter {other} (expected s, p, q, or grid)");
                        std::process::exit(2);
                    }
                }
                .expect("grid values are valid");
                let laws = GeneralWindowLaws::new(params);
                (v, laws.two_thread_survival(model).expect("named model"))
            })
            .collect();
        chart.series(model.short_name(), series);
    }
    print!("{}", chart.render());
    println!("note the TSO/WO crossover as s grows — see EXPERIMENTS.md (EXP-GENERAL).");
}

fn cmd_sweep_grid(args: &Args) {
    // A (p, s) heatmap of the chosen model's two-thread survival.
    let axis = [0.1f64, 0.3, 0.5, 0.7, 0.9];
    println!(
        "two-thread survival Pr[A] over (p rows, s columns) under {}:\n",
        args.model
    );
    let mut h = Heatmap::new(axis.to_vec(), axis.to_vec());
    for (i, &p) in axis.iter().enumerate() {
        for (j, &s) in axis.iter().enumerate() {
            let laws = GeneralWindowLaws::new(Params::new(p, s, 0.5).expect("grid values valid"));
            h.set(i, j, laws.two_thread_survival(args.model).expect("named model"));
        }
    }
    print!("{}", h.render());
    println!("(SC is flat at 1/6 — its window ignores p and s; weak models dim as s grows)");
}
