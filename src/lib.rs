//! `mmreliab` — a reproduction of *The Impact of Memory Models on Software
//! Reliability in Multiprocessors* (Jaffe, Moscibroda, Effinger-Dean, Ceze,
//! Strauss; PODC 2011).
//!
//! This facade crate re-exports the workspace layers:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | models | [`memmodel`] | SC/TSO/PSO/WO reorder matrices, settle probabilities, fences |
//! | programs | [`progmodel`] | random LD/ST programs with the canonical atomicity bug |
//! | reordering | [`settle`] | the settling process, traces, Lemma 4.2 observables |
//! | interleaving | [`shiftproc`] | the shift process, exact `Pr[A(γ̄)]`, Theorem 6.1 |
//! | mathematics | [`analytic`] | big rationals, partitions, every closed form in the paper |
//! | simulation | [`montecarlo`] | seeded parallel runners, CIs, chi-square GoF |
//! | hardware | [`execsim`] | operational multiprocessor (store buffers, OoO windows) |
//! | plotting | [`textplot`] | ASCII/SVG rendering of figures and sweeps |
//! | joined model | [`mmr_core`] | [`ReliabilityModel`]: end-to-end survival probabilities |
//!
//! # Quickstart
//!
//! ```
//! use mmreliab::{MemoryModel, ReliabilityModel};
//!
//! // How likely is the canonical atomicity bug to *not* manifest with two
//! // threads under Total Store Order?
//! let model = ReliabilityModel::new(MemoryModel::Tso, 2);
//! let (lo, hi) = model.log2_survival_bounds().expect("named model");
//! assert!(2f64.powf(lo) > 0.13 && 2f64.powf(hi) < 0.14);
//!
//! let measured = model.simulate_survival(10_000, 1).point();
//! assert!(measured > 0.11 && measured < 0.16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analytic;
pub use execsim;
pub use memmodel;
pub use mmr_core;
pub use montecarlo;
pub use progmodel;
pub use settle;
pub use shiftproc;
pub use textplot;

pub use memmodel::{MemoryModel, OpType, ReorderMatrix, SettleProbs};
pub use mmr_core::{ModelComparison, ReliabilityModel, ScalingPoint};
pub use progmodel::{Program, ProgramGenerator};
pub use settle::Settler;
pub use shiftproc::ShiftProcess;

/// Top-level error for the `mmreliab` facade and its CLI.
///
/// Wraps the layer-specific errors so binaries can report one type:
/// configuration problems stay [`Error::InvalidArgs`] (conventionally exit
/// code 2), runtime failures from the simulation layer arrive as
/// [`Error::Simulation`] (exit code 1), and failed telemetry exports —
/// which never disturb already-printed results — as [`Error::Export`]
/// (exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Command-line arguments or configuration were rejected before any
    /// work started. The message is ready to print to stderr.
    InvalidArgs(String),
    /// The monte-carlo layer failed at runtime (for example, a worker
    /// panicked on every retry).
    Simulation(montecarlo::Error),
    /// A telemetry export (`--metrics`, `--trace`) could not be written.
    /// Exports run after the results print, so the computed output is
    /// intact when this surfaces (conventionally exit code 2 — the flag's
    /// path, not the simulation, is at fault).
    Export {
        /// The file that could not be written.
        path: std::path::PathBuf,
        /// The underlying failure, rendered.
        detail: String,
    },
    /// The `--cache` result store could not be opened. The run proceeds
    /// uncached (the cache is an accelerator, never an authority), but the
    /// degradation is reported and exits with code 2 after the results
    /// print — the same contract as [`Error::Export`].
    Cache {
        /// The cache directory that could not be used.
        path: std::path::PathBuf,
        /// The underlying failure, rendered.
        detail: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidArgs(msg) => f.write_str(msg),
            Error::Simulation(e) => write!(f, "simulation failed: {e}"),
            Error::Export { path, detail } => {
                write!(f, "cannot write telemetry export {}: {detail}", path.display())
            }
            Error::Cache { path, detail } => {
                write!(f, "result cache {} unavailable: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidArgs(_) => None,
            Error::Simulation(e) => Some(e),
            Error::Export { .. } | Error::Cache { .. } => None,
        }
    }
}

impl From<montecarlo::Error> for Error {
    fn from(e: montecarlo::Error) -> Error {
        Error::Simulation(e)
    }
}

#[cfg(test)]
mod error_tests {
    use super::Error;

    #[test]
    fn invalid_args_displays_bare_message() {
        let e = Error::InvalidArgs("--trials must be at least 1".into());
        assert_eq!(e.to_string(), "--trials must be at least 1");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn simulation_error_chains_source() {
        let inner = montecarlo::Error::MinTrialsExceedRequested {
            min_trials: 10,
            requested: 5,
        };
        let e = Error::from(inner.clone());
        assert!(e.to_string().starts_with("simulation failed:"));
        let src = std::error::Error::source(&e).expect("has source");
        assert_eq!(src.to_string(), inner.to_string());
    }
}
