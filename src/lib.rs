//! `mmreliab` — a reproduction of *The Impact of Memory Models on Software
//! Reliability in Multiprocessors* (Jaffe, Moscibroda, Effinger-Dean, Ceze,
//! Strauss; PODC 2011).
//!
//! This facade crate re-exports the workspace layers:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | models | [`memmodel`] | SC/TSO/PSO/WO reorder matrices, settle probabilities, fences |
//! | programs | [`progmodel`] | random LD/ST programs with the canonical atomicity bug |
//! | reordering | [`settle`] | the settling process, traces, Lemma 4.2 observables |
//! | interleaving | [`shiftproc`] | the shift process, exact `Pr[A(γ̄)]`, Theorem 6.1 |
//! | mathematics | [`analytic`] | big rationals, partitions, every closed form in the paper |
//! | simulation | [`montecarlo`] | seeded parallel runners, CIs, chi-square GoF |
//! | hardware | [`execsim`] | operational multiprocessor (store buffers, OoO windows) |
//! | plotting | [`textplot`] | ASCII/SVG rendering of figures and sweeps |
//! | joined model | [`mmr_core`] | [`ReliabilityModel`]: end-to-end survival probabilities |
//!
//! # Quickstart
//!
//! ```
//! use mmreliab::{MemoryModel, ReliabilityModel};
//!
//! // How likely is the canonical atomicity bug to *not* manifest with two
//! // threads under Total Store Order?
//! let model = ReliabilityModel::new(MemoryModel::Tso, 2);
//! let (lo, hi) = model.log2_survival_bounds().expect("named model");
//! assert!(2f64.powf(lo) > 0.13 && 2f64.powf(hi) < 0.14);
//!
//! let measured = model.simulate_survival(10_000, 1).point();
//! assert!(measured > 0.11 && measured < 0.16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analytic;
pub use execsim;
pub use memmodel;
pub use mmr_core;
pub use montecarlo;
pub use progmodel;
pub use settle;
pub use shiftproc;
pub use textplot;

pub use memmodel::{MemoryModel, OpType, ReorderMatrix, SettleProbs};
pub use mmr_core::{ModelComparison, ReliabilityModel, ScalingPoint};
pub use progmodel::{Program, ProgramGenerator};
pub use settle::Settler;
pub use shiftproc::ShiftProcess;
