//! Smoke tests for the `mmreliab` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmreliab"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn table1_prints_all_models() {
    let (ok, stdout, _) = run(&["table1"]);
    assert!(ok);
    for name in [
        "Sequential Consistency",
        "Total Store Order",
        "Partial Store Order",
        "Weak Ordering",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn survival_reports_bounds_and_estimates() {
    let (ok, stdout, _) = run(&["survival", "--model", "tso", "--trials", "4000", "--seed", "1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("paper bounds"));
    assert!(stdout.contains("Rao-Blackwellised"));
    assert!(stdout.contains("direct simulation"));
}

#[test]
fn windows_shows_law_comparison() {
    let (ok, stdout, _) = run(&["windows", "--model", "wo", "--trials", "4000"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("paper law"));
    assert!(stdout.contains("mean gamma"));
}

#[test]
fn sweep_grid_renders_heatmap() {
    let (ok, stdout, _) = run(&["sweep", "--param", "grid", "--model", "tso"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("scale:"));
}

#[test]
fn trace_renders_rounds() {
    let (ok, stdout, _) = run(&["trace", "--model", "tso", "--m", "5", "--seed", "2"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("after round"));
    assert!(stdout.contains("gamma ="));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_flag_value_fails() {
    let (ok, _, stderr) = run(&["survival", "--model"]);
    assert!(!ok);
    assert!(stderr.contains("--model needs a value"));
}

#[test]
fn zero_trials_rejected() {
    let (ok, _, stderr) = run(&["opsim", "--trials", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--trials must be at least 1"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn zero_threads_rejected() {
    let (ok, _, stderr) = run(&["opsim", "--threads", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn zero_workers_rejected() {
    let (ok, _, stderr) = run(&["survival", "--workers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--workers must be at least 1"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn zero_m_rejected() {
    let (ok, _, stderr) = run(&["trace", "--m", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--m must be at least 1"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn survival_output_is_identical_across_worker_counts() {
    // --workers only changes wall-clock time: the chunk-tiled executor
    // produces the same bits at any worker count.
    let base = ["survival", "--model", "tso", "--trials", "4000", "--seed", "5"];
    let (ok1, one, _) = run(&[&base[..], &["--workers", "1"]].concat());
    let (ok4, four, _) = run(&[&base[..], &["--workers", "4"]].concat());
    assert!(ok1 && ok4);
    assert_eq!(one, four);
}

#[test]
fn metrics_flag_writes_parseable_snapshot_and_quiet_is_quiet() {
    let dir = std::env::temp_dir().join(format!("mmreliab-cli-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.json");

    let (ok, stdout, stderr) = run(&[
        "survival",
        "--model",
        "tso",
        "--trials",
        "4000",
        "--seed",
        "5",
        "--quiet",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    // Results go to stdout regardless of --quiet; status lines are gone.
    assert!(stdout.contains("paper bounds"));
    assert!(stderr.is_empty(), "{stderr}");

    let snap: obs::Snapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap())
            .expect("metrics snapshot parses");
    assert!(snap.counter("mc.runner.trials_completed").unwrap_or(0) >= 4000);

    // Telemetry flags do not perturb the seeded result.
    let (ok_plain, plain, _) =
        run(&["survival", "--model", "tso", "--trials", "4000", "--seed", "5"]);
    assert!(ok_plain);
    assert_eq!(stdout, plain);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn progress_flag_is_accepted() {
    let (ok, stdout, _) = run(&["opsim", "--trials", "2000", "--progress"]);
    assert!(ok, "{stdout}");
}

#[test]
fn unknown_flag_fails_with_usage() {
    let (ok, _, stderr) = run(&["survival", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    assert!(stderr.contains("usage:"));
}
