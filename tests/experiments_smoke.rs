//! Smoke test: every registered experiment runs in quick mode and reports
//! REPRODUCED with no MISMATCH — i.e. `EXPERIMENTS.md` is regenerable from
//! a clean checkout.

use mmr_bench::{registry, Ctx};

#[test]
fn every_experiment_reproduces_in_quick_mode() {
    let ctx = Ctx::quick();
    for e in registry() {
        let out = (e.run)(&ctx);
        assert!(
            out.contains("REPRODUCED"),
            "{}: no REPRODUCED verdict\n{out}",
            e.id
        );
        assert!(
            !out.contains("MISMATCH"),
            "{}: MISMATCH in quick mode\n{out}",
            e.id
        );
    }
}
