//! The shared unusable-artifact degradation contract, table-driven over
//! every artifact flag of the `mmreliab` binary: an unusable path or
//! address warns (`warning: <artifact> disabled: …`), the results still
//! print, and the process exits 2 — never 0 (the caller must notice the
//! missing artifact) and never a crash (the computation must survive).

use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmreliab-degrade-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_artifact_flag_degrades_to_warning_and_exit_2_with_results_intact() {
    let dir = tmp_dir("flags");
    // A plain file whose "subdirectory" can never exist: using it as a
    // parent directory is unusable for every artifact kind.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let unusable = blocker.join("sub").join("artifact");
    let unusable = unusable.to_str().unwrap();

    let cases: &[(&str, &str)] = &[
        ("--metrics", unusable),
        ("--trace", unusable),
        ("--flight", unusable),
        ("--dossier-dir", unusable),
        ("--cache", unusable),
        ("--serve", "not-an-address"),
    ];
    for (flag, value) in cases {
        let out = Command::new(env!("CARGO_BIN_EXE_mmreliab"))
            .args(["table1", flag, value])
            .output()
            .unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{flag}: {stderr}");
        assert!(stderr.contains("disabled"), "{flag}: {stderr}");
        assert!(
            stdout.contains("Sequential Consistency"),
            "{flag}: results must land before the degradation surfaces: {stdout}"
        );
    }

    // A usable path for every flag is the control: exit 0, no warning.
    let ok = dir.join("ok");
    std::fs::create_dir_all(&ok).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mmreliab"))
        .args([
            "table1",
            "--metrics",
            ok.join("m.json").to_str().unwrap(),
            "--flight",
            ok.join("f.flight").to_str().unwrap(),
            "--dossier-dir",
            ok.join("dossiers").to_str().unwrap(),
            "--cache",
            ok.join("cache").to_str().unwrap(),
            "--serve",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(!stderr.contains("disabled"), "{stderr}");
    assert!(stderr.contains("serving telemetry on 127.0.0.1:"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn degradations_accumulate_but_exit_code_stays_2() {
    let dir = tmp_dir("multi");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let unusable = blocker.join("sub").join("artifact");
    let unusable = unusable.to_str().unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_mmreliab"))
        .args([
            "table1",
            "--cache",
            unusable,
            "--flight",
            unusable,
            "--serve",
            "not-an-address",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("result cache disabled"), "{stderr}");
    assert!(stderr.contains("flight event log disabled"), "{stderr}");
    assert!(stderr.contains("telemetry server disabled"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}
