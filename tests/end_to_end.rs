//! Cross-crate integration: the full pipeline (program → settle → shift →
//! survival) reproduces the paper's Theorem 6.2 constants, and the abstract
//! and operational routes agree where they should.

use mmreliab::{MemoryModel, ModelComparison, ReliabilityModel};

const TRIALS: u64 = if cfg!(debug_assertions) { 40_000 } else { 250_000 };

#[test]
fn theorem_62_headline_constants_reproduce() {
    let cmp = ModelComparison::run(2, TRIALS, 1);
    for row in cmp.rows() {
        assert!(
            row.consistent(0.999),
            "{}: measured {} vs paper bounds {:?}",
            row.model,
            row.estimate,
            row.bounds
        );
    }
    // The point estimates land near the paper's numbers.
    let p = |m| cmp.row(m).unwrap().estimate.point();
    assert!((p(MemoryModel::Sc) - 1.0 / 6.0).abs() < 0.01);
    assert!((p(MemoryModel::Wo) - 7.0 / 54.0).abs() < 0.01);
    assert!(p(MemoryModel::Tso) > 0.1315 - 0.01 && p(MemoryModel::Tso) < 0.1369 + 0.01);
}

#[test]
fn direct_and_rao_blackwell_estimators_agree() {
    for model in MemoryModel::NAMED {
        let rm = ReliabilityModel::new(model, 3);
        let direct = rm.simulate_survival(TRIALS, 2);
        let rb = rm.estimate_survival_rb(TRIALS, 3);
        let (lo, hi) = direct.wilson_ci(0.999);
        assert!(
            rb.survival() >= lo - 5e-4 && rb.survival() <= hi + 5e-4,
            "{model}: RB {} outside direct CI [{lo}, {hi}]",
            rb.survival()
        );
    }
}

#[test]
fn abstract_and_operational_sc_agree() {
    // The operational machine's SC bug rate equals the abstract 5/6 within
    // Monte-Carlo noise — the two substrates model the same process.
    use execsim::{run_increment_trial, SimParams};
    use montecarlo::{Runner, Seed};
    let params = SimParams::for_model(MemoryModel::Sc);
    let est = Runner::new(Seed(4)).bernoulli(TRIALS / 4, move |rng| {
        run_increment_trial(2, 8, params, rng)
    });
    assert!(
        (est.point() - 5.0 / 6.0).abs() < 0.02,
        "operational SC bug rate {} far from 5/6",
        est.point()
    );
}

#[test]
fn fenced_settling_restores_sc_survival_under_wo() {
    use montecarlo::{Runner, Seed};
    use progmodel::ProgramGenerator;
    use settle::Settler;
    use shiftproc::ShiftProcess;

    let settler = Settler::for_model(MemoryModel::Wo);
    let gen = ProgramGenerator::new(32);
    let est = Runner::new(Seed(5)).bernoulli(TRIALS / 2, move |rng| {
        let program = gen.generate(rng).with_acquire_before_critical();
        let windows: Vec<u64> = (0..2)
            .map(|_| settler.settle(&program, rng).window_len())
            .collect();
        ShiftProcess::canonical().simulate_disjoint(&windows, rng)
    });
    // With the window pinned to 2, survival is exactly the SC constant 1/6.
    assert!(est.covers(1.0 / 6.0, 0.999), "fenced WO survival {est}");
}

#[test]
fn facade_reexports_cover_the_pipeline() {
    // Compile-time shape check of the public API plus a tiny smoke run.
    use mmreliab::{Program, ProgramGenerator, Settler, ShiftProcess};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut rng = SmallRng::seed_from_u64(6);
    let program: Program = ProgramGenerator::new(8).generate(&mut rng);
    let settled = Settler::for_model(MemoryModel::Tso).settle(&program, &mut rng);
    let windows = vec![settled.window_len(), settled.window_len()];
    let _ = ShiftProcess::canonical().simulate_disjoint(&windows, &mut rng);
    let table = mmreliab::memmodel::render_table1();
    assert!(table.contains("Weak Ordering"));
}
