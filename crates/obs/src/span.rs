//! RAII span timers over a monotonic clock.
//!
//! [`span("name")`](span) returns a guard; dropping it records one timed
//! event into a process-global sink. The sink keeps (a) per-name
//! aggregates (count / total / max) forever and (b) the most recent
//! events in a bounded ring buffer, so a snapshot can both attribute
//! total time per pipeline stage and show the recent timeline.
//! Timestamps are microseconds since the process observability epoch
//! ([`crate::epoch`], shared with the flight recorder), which keeps
//! every snapshot field an integer.
//!
//! # Overflow semantics
//!
//! The ring holds [`crate::ring_capacity`] events (1024 by default;
//! `obs::set_ring_capacity` / `MMR_OBS_RING` override it). Once full,
//! every new event **overwrites the oldest surviving event** —
//! aggregates keep counting forever, only the individual timeline is
//! bounded. Each eviction increments the `obs.spans_dropped` counter, so
//! a snapshot (or a Chrome trace exported from it) always states how
//! much of the timeline was evicted: `spans_dropped + len(span_events)`
//! equals the total number of events ever recorded.

use serde::{Deserialize, Serialize};

#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Per-name running totals.
#[cfg(feature = "enabled")]
#[derive(Debug)]
struct Aggregate {
    name: &'static str,
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// One finished span kept in the ring.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    tid: u64,
}

/// Cached handle onto the eviction counter; resolved once per process.
#[cfg(feature = "enabled")]
fn spans_dropped() -> &'static crate::Counter {
    static DROPPED: OnceLock<crate::Counter> = OnceLock::new();
    DROPPED.get_or_init(|| crate::global().counter("obs.spans_dropped"))
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct Sink {
    aggregates: Vec<Aggregate>,
    ring: crate::ring::Ring<Event>,
}

#[cfg(feature = "enabled")]
fn sink() -> &'static Mutex<Sink> {
    static SINK: Mutex<Sink> = Mutex::new(Sink {
        aggregates: Vec::new(),
        ring: crate::ring::Ring::new(),
    });
    &SINK
}

#[cfg(feature = "enabled")]
fn record(name: &'static str, start_us: u64, dur_us: u64) {
    let event = Event {
        name,
        start_us,
        dur_us,
        tid: crate::current_tid(),
    };
    let dropped = {
        let mut sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match sink.aggregates.iter_mut().find(|a| a.name == name) {
            Some(a) => {
                a.count += 1;
                a.total_us += dur_us;
                a.max_us = a.max_us.max(dur_us);
            }
            None => sink.aggregates.push(Aggregate {
                name,
                count: 1,
                total_us: dur_us,
                max_us: dur_us,
            }),
        }
        sink.ring.push(crate::ring_capacity(), event)
    };
    if dropped > 0 {
        spans_dropped().add(dropped);
    }
}

/// Starts a timed span; the time from this call until the guard drops is
/// recorded under `name`. Recording honors the runtime master switch at
/// *drop* time; a span opened while paused and closed while recording is
/// still counted (the window is what matters, not the toggle race).
#[must_use = "a span measures the scope of its guard; dropping it immediately records ~0"]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

/// RAII guard returned by [`span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            let dur_us = self.start.elapsed().as_micros() as u64;
            let start_us = self
                .start
                .saturating_duration_since(crate::epoch())
                .as_micros() as u64;
            record(self.name, start_us, dur_us);
        }
    }
}

/// Aggregate timing for one span name in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

impl SpanSnapshot {
    /// Mean span duration in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// One recent span event in a [`crate::Snapshot`] ring buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEventSnapshot {
    /// Span name.
    pub name: String,
    /// Start time, microseconds since the process span epoch.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Small stable id of the recording thread (trace-lane attribution;
    /// not the OS thread id).
    pub tid: u64,
}

/// Current aggregates (sorted by name) and ring contents (oldest first).
pub(crate) fn snapshot() -> (Vec<SpanSnapshot>, Vec<SpanEventSnapshot>) {
    #[cfg(feature = "enabled")]
    {
        let sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut spans: Vec<SpanSnapshot> = sink
            .aggregates
            .iter()
            .map(|a| SpanSnapshot {
                name: a.name.to_owned(),
                count: a.count,
                total_us: a.total_us,
                max_us: a.max_us,
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        let events = sink
            .ring
            .in_order()
            .into_iter()
            .map(|e| SpanEventSnapshot {
                name: e.name.to_owned(),
                start_us: e.start_us,
                dur_us: e.dur_us,
                tid: e.tid,
            })
            .collect();
        (spans, events)
    }
    #[cfg(not(feature = "enabled"))]
    {
        (Vec::new(), Vec::new())
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn span_records_aggregate_and_event() {
        let _guard = crate::test_ring_lock();
        {
            let _g = span("span.test.basic");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (spans, events) = snapshot();
        let agg = spans.iter().find(|s| s.name == "span.test.basic").unwrap();
        assert!(agg.count >= 1);
        assert!(agg.total_us >= 1_000, "slept 2ms, got {}us", agg.total_us);
        assert!(agg.max_us <= agg.total_us);
        assert!(agg.mean_us() > 0.0);
        assert!(events.iter().any(|e| e.name == "span.test.basic"));
    }

    #[test]
    fn nested_spans_both_record() {
        {
            let _outer = span("span.test.outer");
            let _inner = span("span.test.inner");
        }
        let (spans, _) = snapshot();
        assert!(spans.iter().any(|s| s.name == "span.test.outer"));
        assert!(spans.iter().any(|s| s.name == "span.test.inner"));
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = crate::test_ring_lock();
        let cap = crate::ring_capacity();
        for _ in 0..(cap + 50) {
            drop(span("span.test.flood"));
        }
        let (spans, events) = snapshot();
        assert!(events.len() <= cap);
        let agg = spans.iter().find(|s| s.name == "span.test.flood").unwrap();
        assert!(agg.count >= (cap + 50) as u64);
        // Oldest-first ordering: start times never decrease for one name
        // (other tests interleave, so only check our own floods).
        let floods: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "span.test.flood")
            .map(|e| e.start_us)
            .collect();
        assert!(floods.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ring_overflow_counts_dropped_spans() {
        // Flooding capacity + 50 events can keep at most capacity of them,
        // so at least 50 evictions must be accounted to obs.spans_dropped
        // (other tests in this process may evict more; never fewer).
        let _guard = crate::test_ring_lock();
        let cap = crate::ring_capacity();
        let before = spans_dropped().get();
        for _ in 0..(cap + 50) {
            drop(span("span.test.drop_count"));
        }
        let after = spans_dropped().get();
        assert!(
            after >= before + 50,
            "expected >= 50 drops, got {}",
            after - before
        );
        // The snapshot surfaces the same counter.
        assert_eq!(crate::snapshot().counter("obs.spans_dropped"), Some(after));
    }

    #[test]
    fn shrunk_ring_capacity_evicts_and_counts() {
        let _guard = crate::test_ring_lock();
        crate::set_recording(true);
        crate::set_ring_capacity(8);
        let before = spans_dropped().get();
        for _ in 0..20 {
            drop(span("span.test.shrunk"));
        }
        let (_, events) = snapshot();
        crate::set_ring_capacity(0);
        assert!(events.len() <= 8, "ring held {} events at cap 8", events.len());
        assert!(spans_dropped().get() >= before + 12);
    }

    #[test]
    fn events_carry_a_stable_thread_id() {
        let _guard = crate::test_ring_lock();
        drop(span("span.test.tid"));
        let (_, events) = snapshot();
        let mine = crate::current_tid();
        assert!(events
            .iter()
            .any(|e| e.name == "span.test.tid" && e.tid == mine));
        // A different thread gets a different id.
        let other = std::thread::spawn(crate::current_tid).join().unwrap();
        assert_ne!(mine, other);
    }
}
