//! RAII span timers over a monotonic clock.
//!
//! [`span("name")`](span) returns a guard; dropping it records one timed
//! event into a process-global sink. The sink keeps (a) per-name
//! aggregates (count / total / max) forever and (b) the most recent
//! [`RING_CAP`] individual events in a bounded ring buffer, so a snapshot
//! can both attribute total time per pipeline stage and show the recent
//! timeline. Timestamps are microseconds since the first span of the
//! process (a lazily pinned [`Instant`] epoch), which keeps every snapshot
//! field an integer.
//!
//! # Overflow semantics
//!
//! The ring holds exactly [`RING_CAP`] (1024) events. Once full, every new
//! event **overwrites the oldest surviving event** — aggregates keep
//! counting forever, only the individual timeline is bounded. Each
//! overwrite increments the `obs.spans_dropped` counter, so a snapshot (or
//! a Chrome trace exported from it) always states how much of the timeline
//! was evicted: `spans_dropped + len(span_events)` equals the total number
//! of events ever recorded.

use serde::{Deserialize, Serialize};

#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Maximum number of individual events retained (oldest evicted first).
#[cfg(feature = "enabled")]
const RING_CAP: usize = 1024;

/// Per-name running totals.
#[cfg(feature = "enabled")]
#[derive(Debug)]
struct Aggregate {
    name: &'static str,
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// One finished span kept in the ring.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    tid: u64,
}

/// A small stable id for the recording thread, assigned on first use.
/// Purely for trace-event attribution (Chrome trace `tid` lanes); it is
/// not the OS thread id.
#[cfg(feature = "enabled")]
fn current_tid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Cached handle onto the eviction counter; resolved once per process.
#[cfg(feature = "enabled")]
fn spans_dropped() -> &'static crate::Counter {
    static DROPPED: OnceLock<crate::Counter> = OnceLock::new();
    DROPPED.get_or_init(|| crate::global().counter("obs.spans_dropped"))
}

#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
struct Sink {
    aggregates: Vec<Aggregate>,
    ring: Vec<Event>,
    /// Index in `ring` the next event overwrites once the ring is full.
    next: usize,
    /// Total events ever pushed (so a snapshot can order the ring).
    pushed: u64,
}

#[cfg(feature = "enabled")]
fn sink() -> &'static Mutex<Sink> {
    static SINK: Mutex<Sink> = Mutex::new(Sink {
        aggregates: Vec::new(),
        ring: Vec::new(),
        next: 0,
        pushed: 0,
    });
    &SINK
}

/// Monotonic epoch shared by all spans: pinned on first use.
#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(feature = "enabled")]
fn record(name: &'static str, start_us: u64, dur_us: u64) {
    let mut sink = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match sink.aggregates.iter_mut().find(|a| a.name == name) {
        Some(a) => {
            a.count += 1;
            a.total_us += dur_us;
            a.max_us = a.max_us.max(dur_us);
        }
        None => sink.aggregates.push(Aggregate {
            name,
            count: 1,
            total_us: dur_us,
            max_us: dur_us,
        }),
    }
    let event = Event {
        name,
        start_us,
        dur_us,
        tid: current_tid(),
    };
    if sink.ring.len() < RING_CAP {
        sink.ring.push(event);
    } else {
        // Drop-oldest: the slot at `next` holds the oldest surviving event.
        spans_dropped().inc();
        let slot = sink.next;
        sink.ring[slot] = event;
    }
    sink.next = (sink.next + 1) % RING_CAP;
    sink.pushed += 1;
}

/// Starts a timed span; the time from this call until the guard drops is
/// recorded under `name`. Recording honors the runtime master switch at
/// *drop* time; a span opened while paused and closed while recording is
/// still counted (the window is what matters, not the toggle race).
#[must_use = "a span measures the scope of its guard; dropping it immediately records ~0"]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

/// RAII guard returned by [`span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            let dur_us = self.start.elapsed().as_micros() as u64;
            let start_us = self
                .start
                .saturating_duration_since(epoch())
                .as_micros() as u64;
            record(self.name, start_us, dur_us);
        }
    }
}

/// Aggregate timing for one span name in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

impl SpanSnapshot {
    /// Mean span duration in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// One recent span event in a [`crate::Snapshot`] ring buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEventSnapshot {
    /// Span name.
    pub name: String,
    /// Start time, microseconds since the process span epoch.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Small stable id of the recording thread (trace-lane attribution;
    /// not the OS thread id).
    pub tid: u64,
}

/// Current aggregates (sorted by name) and ring contents (oldest first).
pub(crate) fn snapshot() -> (Vec<SpanSnapshot>, Vec<SpanEventSnapshot>) {
    #[cfg(feature = "enabled")]
    {
        let sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut spans: Vec<SpanSnapshot> = sink
            .aggregates
            .iter()
            .map(|a| SpanSnapshot {
                name: a.name.to_owned(),
                count: a.count,
                total_us: a.total_us,
                max_us: a.max_us,
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        // Oldest-first: once the ring has wrapped, `next` points at the
        // oldest surviving event.
        let mut events = Vec::with_capacity(sink.ring.len());
        let start = if sink.pushed > sink.ring.len() as u64 {
            sink.next
        } else {
            0
        };
        for i in 0..sink.ring.len() {
            let e = &sink.ring[(start + i) % sink.ring.len()];
            events.push(SpanEventSnapshot {
                name: e.name.to_owned(),
                start_us: e.start_us,
                dur_us: e.dur_us,
                tid: e.tid,
            });
        }
        (spans, events)
    }
    #[cfg(not(feature = "enabled"))]
    {
        (Vec::new(), Vec::new())
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn span_records_aggregate_and_event() {
        {
            let _g = span("span.test.basic");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (spans, events) = snapshot();
        let agg = spans.iter().find(|s| s.name == "span.test.basic").unwrap();
        assert!(agg.count >= 1);
        assert!(agg.total_us >= 1_000, "slept 2ms, got {}us", agg.total_us);
        assert!(agg.max_us <= agg.total_us);
        assert!(agg.mean_us() > 0.0);
        assert!(events.iter().any(|e| e.name == "span.test.basic"));
    }

    #[test]
    fn nested_spans_both_record() {
        {
            let _outer = span("span.test.outer");
            let _inner = span("span.test.inner");
        }
        let (spans, _) = snapshot();
        assert!(spans.iter().any(|s| s.name == "span.test.outer"));
        assert!(spans.iter().any(|s| s.name == "span.test.inner"));
    }

    #[test]
    fn ring_is_bounded() {
        for _ in 0..(RING_CAP + 50) {
            drop(span("span.test.flood"));
        }
        let (spans, events) = snapshot();
        assert!(events.len() <= RING_CAP);
        let agg = spans.iter().find(|s| s.name == "span.test.flood").unwrap();
        assert!(agg.count >= (RING_CAP + 50) as u64);
        // Oldest-first ordering: start times never decrease for one name
        // (other tests interleave, so only check our own floods).
        let floods: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "span.test.flood")
            .map(|e| e.start_us)
            .collect();
        assert!(floods.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ring_overflow_counts_dropped_spans() {
        // Flooding RING_CAP + 50 events can keep at most RING_CAP of them,
        // so at least 50 evictions must be accounted to obs.spans_dropped
        // (other tests in this process may evict more; never fewer).
        let before = spans_dropped().get();
        for _ in 0..(RING_CAP + 50) {
            drop(span("span.test.drop_count"));
        }
        let after = spans_dropped().get();
        assert!(
            after >= before + 50,
            "expected >= 50 drops, got {}",
            after - before
        );
        // The snapshot surfaces the same counter.
        assert_eq!(crate::snapshot().counter("obs.spans_dropped"), Some(after));
    }

    #[test]
    fn events_carry_a_stable_thread_id() {
        drop(span("span.test.tid"));
        let (_, events) = snapshot();
        let mine = current_tid();
        assert!(events
            .iter()
            .any(|e| e.name == "span.test.tid" && e.tid == mine));
        // A different thread gets a different id.
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(mine, other);
    }
}
