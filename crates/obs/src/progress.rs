//! Opt-in throttled progress heartbeat on stderr.
//!
//! The Monte-Carlo runner calls [`tick`] once per completed chunk; when
//! progress is enabled (`--progress`) and at least [`MIN_INTERVAL_MS`] has
//! elapsed since the last line, one `progress: …` line with done/total,
//! percentage, trials/sec, and an ETA is printed. The throttle is a single
//! relaxed compare-exchange on a timestamp cell, so the disabled path (the
//! default) costs one atomic load per chunk and prints nothing.
//!
//! Progress output is observational only: it never feeds back into the
//! computation, and it goes to stderr so piped stdout stays clean.
//!
//! Sequential-stopping runs additionally publish their live RSE
//! ([`set_live_rse`], written by the runner's stop predicate) and the
//! heartbeat appends it — plus the result-cache hit rate when a store
//! has seen traffic — to each line. Both enrichments ride the existing
//! ≤2 Hz throttle, so they never add per-chunk cost.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// `f64::to_bits` of the most recent RSE seen by a stop predicate; 0
/// (the bits of +0.0, never a real RSE) means "unset".
static LIVE_RSE_BITS: AtomicU64 = AtomicU64::new(0);

/// Publishes the RSE a sequential-stopping predicate just computed so
/// the heartbeat can display it. Non-finite or zero values clear it.
pub fn set_live_rse(rse: f64) {
    let bits = if rse.is_finite() && rse != 0.0 {
        rse.to_bits()
    } else {
        0
    };
    LIVE_RSE_BITS.store(bits, Ordering::Relaxed);
}

/// The most recently published live RSE, if any.
#[must_use]
pub fn live_rse() -> Option<f64> {
    match LIVE_RSE_BITS.load(Ordering::Relaxed) {
        0 => None,
        bits => Some(f64::from_bits(bits)),
    }
}

/// `", rse …"` / `", cache …"` suffix for a heartbeat line: the live RSE
/// (when a stop predicate has published one) and the result-cache hit
/// rate (when any cache lookup has resolved). Reads the global registry;
/// called at most once per throttle interval.
fn enrichment() -> String {
    let mut out = String::new();
    if let Some(rse) = live_rse() {
        out.push_str(&format!(", rse {rse:.2e}"));
    }
    let snap = crate::global().snapshot();
    let hits = snap.counter("mc.cache.hits").unwrap_or(0);
    let lookups = hits
        + snap.counter("mc.cache.misses").unwrap_or(0)
        + snap.counter("mc.cache.extends").unwrap_or(0);
    if lookups > 0 {
        out.push_str(&format!(", cache {hits}/{lookups}"));
    }
    out
}

/// Minimum milliseconds between heartbeat lines.
pub const MIN_INTERVAL_MS: u64 = 500;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Milliseconds (since [`clock`] epoch) of the last printed line.
static LAST_PRINT_MS: AtomicU64 = AtomicU64::new(0);

fn clock() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns the heartbeat on or off (off by default; `--progress` turns it on).
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first tick so elapsed math never underflows.
    let _ = clock();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the heartbeat is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reports progress of a run: `done` of `total` work units complete,
/// `started` when the run began. Throttled; most calls return after one
/// atomic load. `label` names the unit (e.g. `"trials"`).
pub fn tick(label: &str, done: u64, total: u64, started: Instant) {
    if !enabled() {
        return;
    }
    let now_ms = clock().elapsed().as_millis() as u64;
    let last = LAST_PRINT_MS.load(Ordering::Relaxed);
    if now_ms.saturating_sub(last) < MIN_INTERVAL_MS {
        return;
    }
    // One printer per interval; losers of the race skip quietly.
    if LAST_PRINT_MS
        .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        0.0
    };
    let pct = if total > 0 {
        100.0 * done as f64 / total as f64
    } else {
        0.0
    };
    let eta = if rate > 0.0 && total > done {
        (total - done) as f64 / rate
    } else {
        0.0
    };
    eprintln!(
        "progress: {done}/{total} {label} ({pct:.1}%), {rate:.0} {label}/s, eta {eta:.1}s{}",
        enrichment()
    );
}

/// Prints one final un-throttled line for a finished run (only when
/// enabled), so short runs that never crossed the throttle still report.
pub fn finish(label: &str, done: u64, started: Instant) {
    if !enabled() {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        0.0
    };
    eprintln!("progress: {done} {label} done in {elapsed:.2}s ({rate:.0} {label}/s)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tick_is_silent_and_cheap() {
        // Default-off; tick must be callable without side effects.
        assert!(!enabled());
        tick("trials", 10, 100, Instant::now());
        finish("trials", 10, Instant::now());
    }

    #[test]
    fn toggle_roundtrips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn live_rse_roundtrips_and_filters_degenerates() {
        set_live_rse(0.0625);
        assert_eq!(live_rse(), Some(0.0625));
        assert!(enrichment().contains("rse 6.25e-2"), "{}", enrichment());
        set_live_rse(f64::NAN);
        assert_eq!(live_rse(), None);
        set_live_rse(f64::INFINITY);
        assert_eq!(live_rse(), None);
        set_live_rse(0.0);
        assert_eq!(live_rse(), None);
    }
}
