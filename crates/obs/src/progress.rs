//! Opt-in throttled progress heartbeat on stderr, riding the broadcast
//! bus.
//!
//! The Monte-Carlo runner calls [`tick`] once per completed chunk; when
//! anyone is listening — the stderr heartbeat (`--progress`) or a bus
//! queue subscriber (a `--serve` client) — and at least
//! [`MIN_INTERVAL_MS`] has elapsed since the last frame, one
//! [`Frame`](crate::bus::Frame) with done/total, trials/sec, live RSE,
//! and cache hit rate is published on [`crate::bus`]. The `--progress`
//! printer is an ordinary synchronous bus subscriber that renders
//! heartbeat frames as `progress: …` lines, so the heartbeat and every
//! remote client share exactly one frame path. The throttle is a single
//! relaxed compare-exchange on a timestamp cell, so the disabled path
//! (the default) costs two atomic loads per chunk and prints nothing.
//!
//! Progress output is observational only: it never feeds back into the
//! computation, and it goes to stderr so piped stdout stays clean.
//!
//! Sequential-stopping runs additionally publish their live RSE
//! ([`set_live_rse`], written by the runner's stop predicate) and each
//! frame carries it — plus the result-cache hit rate when a store has
//! seen traffic. Both enrichments ride the existing ≤2 Hz throttle, so
//! they never add per-chunk cost.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// `f64::to_bits` of the most recent RSE seen by a stop predicate; 0
/// (the bits of +0.0, never a real RSE) means "unset".
static LIVE_RSE_BITS: AtomicU64 = AtomicU64::new(0);

/// Publishes the RSE a sequential-stopping predicate just computed so
/// the heartbeat can display it. Non-finite or zero values clear it.
pub fn set_live_rse(rse: f64) {
    let bits = if rse.is_finite() && rse != 0.0 {
        rse.to_bits()
    } else {
        0
    };
    LIVE_RSE_BITS.store(bits, Ordering::Relaxed);
}

/// The most recently published live RSE, if any.
#[must_use]
pub fn live_rse() -> Option<f64> {
    match LIVE_RSE_BITS.load(Ordering::Relaxed) {
        0 => None,
        bits => Some(f64::from_bits(bits)),
    }
}

/// `", rse …"` / `", cache …"` suffix for a heartbeat line: the live RSE
/// (when a stop predicate has published one) and the result-cache hit
/// rate (when any cache lookup has resolved), read from the frame the
/// bus delivered.
fn enrichment(frame: &crate::bus::Frame) -> String {
    let mut out = String::new();
    if let Some(rse) = frame.rse {
        out.push_str(&format!(", rse {rse:.2e}"));
    }
    if frame.cache_lookups > 0 {
        out.push_str(&format!(", cache {}/{}", frame.cache_hits, frame.cache_lookups));
    }
    out
}

/// Renders one heartbeat frame as the classic `progress: …` stderr line.
fn render_heartbeat(frame: &crate::bus::Frame) -> String {
    let pct = if frame.total > 0 {
        100.0 * frame.done as f64 / frame.total as f64
    } else {
        0.0
    };
    let eta = if frame.rate > 0.0 && frame.total > frame.done {
        (frame.total - frame.done) as f64 / frame.rate
    } else {
        0.0
    };
    format!(
        "progress: {}/{} {} ({pct:.1}%), {:.0} {}/s, eta {eta:.1}s{}",
        frame.done,
        frame.total,
        frame.label,
        frame.rate,
        frame.label,
        enrichment(frame)
    )
}

/// Minimum milliseconds between heartbeat lines.
pub const MIN_INTERVAL_MS: u64 = 500;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Milliseconds (since [`clock`] epoch) of the last printed line.
static LAST_PRINT_MS: AtomicU64 = AtomicU64::new(0);

fn clock() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Bus-sink id of the installed stderr printer, if any.
static PRINTER_SINK: Mutex<Option<u64>> = Mutex::new(None);

/// Turns the heartbeat on or off (off by default; `--progress` turns it
/// on). Enabling installs the stderr printer as a synchronous bus
/// subscriber for heartbeat frames; disabling removes it.
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first tick so elapsed math never underflows.
    let _ = clock();
    ENABLED.store(on, Ordering::Relaxed);
    let mut guard = PRINTER_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if on && guard.is_none() {
        *guard = Some(crate::bus::install_sink(Box::new(|msg| {
            if let crate::bus::BusMessage::Frame(frame) = msg {
                if frame.kind == "heartbeat" {
                    eprintln!("{}", render_heartbeat(frame));
                }
            }
        })));
    } else if !on {
        if let Some(id) = guard.take() {
            crate::bus::remove_sink(id);
        }
    }
}

/// Whether the heartbeat is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reports progress of a run: `done` of `total` work units complete,
/// `started` when the run began. Throttled; most calls return after two
/// atomic loads. `label` names the unit (e.g. `"trials"`). When anyone
/// is listening (the stderr heartbeat or a bus queue subscriber), one
/// heartbeat [`Frame`](crate::bus::Frame) per interval is published on
/// the bus.
pub fn tick(label: &str, done: u64, total: u64, started: Instant) {
    if !enabled() && crate::bus::queue_subscribers() == 0 {
        return;
    }
    let now_ms = clock().elapsed().as_millis() as u64;
    let last = LAST_PRINT_MS.load(Ordering::Relaxed);
    if now_ms.saturating_sub(last) < MIN_INTERVAL_MS {
        return;
    }
    // One frame per interval; losers of the race skip quietly.
    if LAST_PRINT_MS
        .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        0.0
    };
    crate::bus::publish_frame(crate::bus::Frame::collect(
        "heartbeat",
        label,
        done,
        total,
        rate,
    ));
}

/// Prints one final un-throttled line for a finished run (only when
/// enabled), so short runs that never crossed the throttle still report.
pub fn finish(label: &str, done: u64, started: Instant) {
    if !enabled() {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        0.0
    };
    eprintln!("progress: {done} {label} done in {elapsed:.2}s ({rate:.0} {label}/s)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tick_is_silent_and_cheap() {
        let _g = crate::test_ring_lock();
        // Default-off; tick must be callable without side effects.
        set_enabled(false);
        assert!(!enabled());
        tick("trials", 10, 100, Instant::now());
        finish("trials", 10, Instant::now());
    }

    #[test]
    fn toggle_roundtrips_and_installs_printer_sink() {
        let _g = crate::test_ring_lock();
        set_enabled(true);
        assert!(enabled());
        assert!(PRINTER_SINK.lock().unwrap().is_some());
        set_enabled(false);
        assert!(!enabled());
        assert!(PRINTER_SINK.lock().unwrap().is_none());
    }

    #[test]
    fn live_rse_roundtrips_and_filters_degenerates() {
        let _g = crate::test_ring_lock();
        set_live_rse(0.0625);
        assert_eq!(live_rse(), Some(0.0625));
        let frame = crate::bus::Frame::collect("heartbeat", "trials", 1, 2, 1.0);
        assert!(enrichment(&frame).contains("rse 6.25e-2"), "{}", enrichment(&frame));
        set_live_rse(f64::NAN);
        assert_eq!(live_rse(), None);
        set_live_rse(f64::INFINITY);
        assert_eq!(live_rse(), None);
        set_live_rse(0.0);
        assert_eq!(live_rse(), None);
    }

    #[test]
    fn heartbeat_renders_classic_line() {
        let frame = crate::bus::Frame {
            t_us: 0,
            kind: "heartbeat".to_owned(),
            label: "trials".to_owned(),
            done: 50,
            total: 100,
            rate: 25.0,
            rse: None,
            cache_hits: 3,
            cache_lookups: 4,
            counters_delta: Vec::new(),
        };
        assert_eq!(
            render_heartbeat(&frame),
            "progress: 50/100 trials (50.0%), 25 trials/s, eta 2.0s, cache 3/4"
        );
    }
}
