//! In-process telemetry for the reproduction: a metrics registry of atomic
//! counters/gauges/histograms, RAII span timers with a ring-buffer event
//! sink, a throttled progress heartbeat, and a small leveled stderr logger.
//!
//! The crate exists so that the Monte-Carlo stack (pool → runner → model →
//! experiments) can report what it is doing without perturbing what it
//! computes. Two invariants define the design:
//!
//! * **Strictly out-of-band.** Telemetry never touches an RNG stream,
//!   never reorders work, and never feeds back into any seeded
//!   computation. Handles are updated with relaxed atomics off the hot
//!   path (per chunk / per run, never per trial), so every seeded result
//!   is bit-for-bit identical whether collection is on, off, or absent.
//! * **The disabled path is a compile-time no-op.** Built without the
//!   `enabled` feature (`--no-default-features`), every handle is a
//!   zero-sized struct with empty inlined methods and [`snapshot`] returns
//!   an empty [`Snapshot`]. A runtime master switch ([`set_recording`])
//!   additionally pauses collection in `enabled` builds, which is what the
//!   overhead benchmarks toggle.
//!
//! Collection is process-global: every crate in the workspace feeds the
//! same [`global`] registry, and a binary emits one JSON [`Snapshot`] at
//! exit (the `--metrics <path>` flag).
//!
//! # Example
//!
//! ```
//! let hits = obs::global().counter("example.hits");
//! hits.add(3);
//! let snap = obs::snapshot();
//! # #[cfg(feature = "enabled")]
//! assert!(snap.counter("example.hits").unwrap() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod degrade;
pub mod export;
pub mod flight;
pub mod log;
mod metrics;
pub mod progress;
mod ring;
pub mod serve;
mod span;

pub use flight::FlightEvent;
pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket,
    HistogramSnapshot, Registry,
};
pub use span::{span, SpanEventSnapshot, SpanGuard, SpanSnapshot};

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The process-wide registry every instrumented crate records into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// Runtime master switch; collection starts enabled.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Pauses (`false`) or resumes (`true`) all metric and span collection at
/// runtime. Purely observational: results of instrumented code are
/// identical either way.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether collection is currently recording (always `false` in builds
/// without the `enabled` feature).
#[must_use]
pub fn recording() -> bool {
    cfg!(feature = "enabled") && RECORDING.load(Ordering::Relaxed)
}

/// Default capacity of the bounded event rings (span timeline and flight
/// recorder) when neither [`set_ring_capacity`] nor `MMR_OBS_RING`
/// overrides it.
pub const DEFAULT_RING_CAP: usize = 1024;

/// Programmatic ring-capacity override; 0 means "not set".
static RING_CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the shared ring capacity at runtime (clamped to ≥ 1).
/// Passing `0` clears the override, falling back to the `MMR_OBS_RING`
/// environment variable and then [`DEFAULT_RING_CAP`]. Shrinking takes
/// effect on the next push to each ring: the oldest surplus events are
/// evicted and accounted to the ring's drop counter.
pub fn set_ring_capacity(cap: usize) {
    RING_CAP_OVERRIDE.store(cap, Ordering::Relaxed);
}

/// Parses a ring capacity from an `MMR_OBS_RING`-style value (clamped to
/// ≥ 1; unparsable values are ignored).
fn ring_cap_from_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// The current shared ring capacity: [`set_ring_capacity`] override if
/// set, else `MMR_OBS_RING` (read once per process), else
/// [`DEFAULT_RING_CAP`].
#[must_use]
pub fn ring_capacity() -> usize {
    let o = RING_CAP_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    static FROM_ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    FROM_ENV
        .get_or_init(|| ring_cap_from_env(std::env::var("MMR_OBS_RING").ok().as_deref()))
        .unwrap_or(DEFAULT_RING_CAP)
}

/// Build metadata stamped once by the binary and carried on every
/// [`Snapshot`], Prometheus exposition (`mmr_build_info`), `/status`
/// response, and crash dossier — so any artifact can be traced back to
/// the exact build and host shape that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildInfo {
    /// The binary's crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Short git revision of the working tree, or `unknown`.
    pub git_rev: String,
    /// Logical cores available to this process at startup.
    pub host_cores: u64,
    /// The deterministic chunk width results are tiled in.
    pub chunk_width: u64,
}

impl BuildInfo {
    /// Detects build metadata at startup: `git rev-parse --short HEAD`
    /// (best-effort) and the host's available parallelism.
    #[must_use]
    pub fn detect(version: &str, chunk_width: u64) -> BuildInfo {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map_or_else(|| "unknown".to_owned(), |s| s.trim().to_owned());
        BuildInfo {
            version: version.to_owned(),
            git_rev,
            host_cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            chunk_width,
        }
    }
}

/// The stamped build metadata, if any.
static BUILD_INFO: std::sync::Mutex<Option<BuildInfo>> = std::sync::Mutex::new(None);

/// Stamps the process-wide build metadata (binaries call this once at
/// startup; later calls replace it).
pub fn set_build_info(info: BuildInfo) {
    *BUILD_INFO
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(info);
}

/// The stamped build metadata, if a binary has provided one.
#[must_use]
pub fn build_info() -> Option<BuildInfo> {
    BUILD_INFO
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Monotonic epoch shared by span and flight timestamps: pinned on first
/// use, so both timelines interleave on one clock.
pub(crate) fn epoch() -> std::time::Instant {
    static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

/// A small stable id for the recording thread, assigned on first use.
/// Purely for trace-event attribution (Chrome trace `tid` lanes); it is
/// not the OS thread id.
pub(crate) fn current_tid() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One coherent JSON-serializable view of everything collected so far:
/// counters, gauges, histograms, per-name span aggregates, and the recent
/// span events still in the ring buffer. Collection is out-of-band, so a
/// snapshot may be taken at any time from any thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-name span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// The most recent span events, oldest first (bounded ring buffer).
    pub span_events: Vec<SpanEventSnapshot>,
    /// The most recent flight-recorder events, oldest first (bounded ring
    /// buffer). `Option` so snapshots serialized before the flight
    /// recorder existed still deserialize; use
    /// [`flight_events`](Snapshot::flight_events) to read it.
    pub flight_events: Option<Vec<FlightEvent>>,
    /// Build metadata stamped by the binary ([`set_build_info`]);
    /// `Option` so snapshots serialized before it existed still
    /// deserialize.
    pub build_info: Option<BuildInfo>,
}

impl Snapshot {
    /// The value of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The value of a gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by name, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// A span aggregate by name, if present.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The retained flight events (empty for snapshots that predate the
    /// flight recorder).
    #[must_use]
    pub fn flight_events(&self) -> &[FlightEvent] {
        self.flight_events.as_deref().unwrap_or(&[])
    }

    /// What happened between `earlier` and `self`: per-name deltas of the
    /// monotone series, assuming both snapshots come from the same process.
    ///
    /// Semantics per section:
    ///
    /// * **counters** — `self − earlier` (saturating). A name missing from
    ///   `earlier` keeps its full value (it was created in between); a name
    ///   only in `earlier` is dropped (nothing happened to it since).
    /// * **gauges** — point-in-time values, not diffable: `self`'s value is
    ///   kept as-is.
    /// * **histograms** — `count`/`sum` and per-bucket counts are diffed
    ///   bucket-wise; `min`/`max` are running extremes and not diffable, so
    ///   `self`'s values are kept.
    /// * **spans** — `count`/`total_us` are diffed; `max_us` (a running
    ///   maximum) keeps `self`'s value.
    /// * **span_events** / **flight_events** — the rings are bounded
    ///   timelines, not monotone series; the diff carries no events.
    #[must_use]
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name.clone(),
                value: c.value.saturating_sub(earlier.counter(&c.name).unwrap_or(0)),
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let prev = earlier.histogram(&h.name);
                let bucket_before = |lo: u64| {
                    prev.and_then(|p| p.buckets.iter().find(|b| b.lo == lo))
                        .map_or(0, |b| b.count)
                };
                HistogramSnapshot {
                    name: h.name.clone(),
                    count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                    sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                    min: h.min,
                    max: h.max,
                    buckets: h
                        .buckets
                        .iter()
                        .filter_map(|b| {
                            let count = b.count.saturating_sub(bucket_before(b.lo));
                            (count > 0).then_some(HistogramBucket { lo: b.lo, count })
                        })
                        .collect(),
                }
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let prev = earlier.span(&s.name);
                SpanSnapshot {
                    name: s.name.clone(),
                    count: s.count.saturating_sub(prev.map_or(0, |p| p.count)),
                    total_us: s.total_us.saturating_sub(prev.map_or(0, |p| p.total_us)),
                    max_us: s.max_us,
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            spans,
            span_events: Vec::new(),
            flight_events: None,
            build_info: self.build_info.clone(),
        }
    }
}

/// Snapshots the [`global`] registry plus the span sink and the flight
/// recorder ring.
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut snap = global().snapshot();
    let (spans, span_events) = span::snapshot();
    snap.spans = spans;
    snap.span_events = span_events;
    snap.flight_events = Some(flight::events());
    snap.build_info = build_info();
    snap
}

/// Serializes tests across modules that toggle process-global recording
/// state (the master switch, the flight switch, the ring capacity).
#[cfg(test)]
pub(crate) fn test_ring_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The master switch is process-global, so tests that toggle or depend
    /// on it serialize through this lock.
    fn recording_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_ring_lock()
    }

    #[test]
    fn ring_cap_env_parses_and_clamps() {
        assert_eq!(ring_cap_from_env(None), None);
        assert_eq!(ring_cap_from_env(Some("")), None);
        assert_eq!(ring_cap_from_env(Some("not a number")), None);
        assert_eq!(ring_cap_from_env(Some(" 256 ")), Some(256));
        assert_eq!(ring_cap_from_env(Some("0")), Some(1));
    }

    #[test]
    fn set_ring_capacity_overrides_and_clears() {
        let _guard = recording_lock();
        let baseline = ring_capacity();
        set_ring_capacity(64);
        assert_eq!(ring_capacity(), 64);
        set_ring_capacity(0);
        assert_eq!(ring_capacity(), baseline);
    }

    #[test]
    fn recording_switch_roundtrips() {
        let _guard = recording_lock();
        set_recording(true);
        assert_eq!(recording(), cfg!(feature = "enabled"));
        set_recording(false);
        assert!(!recording());
        set_recording(true);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_a_zero_sized_no_op() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        let c = global().counter("disabled.counter");
        c.add(7);
        let h = global().histogram("disabled.hist");
        h.record(7);
        drop(span("disabled.span"));
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.span_events.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn snapshot_sees_global_updates() {
        let _guard = recording_lock();
        let c = global().counter("lib.test.counter");
        c.add(41);
        c.inc();
        let g = global().gauge("lib.test.gauge");
        g.set(17);
        let h = global().histogram("lib.test.hist");
        h.record(100);
        drop(span("lib.test.span"));
        let snap = snapshot();
        assert!(snap.counter("lib.test.counter").unwrap() >= 42);
        assert_eq!(snap.gauge("lib.test.gauge"), Some(17));
        assert!(snap.histogram("lib.test.hist").unwrap().count >= 1);
        assert!(snap.span("lib.test.span").unwrap().count >= 1);
        assert!(snap.counter("lib.test.missing").is_none());
    }

    fn named_counter(name: &str, value: u64) -> CounterSnapshot {
        CounterSnapshot {
            name: name.into(),
            value,
        }
    }

    #[test]
    fn diff_subtracts_counters_per_name() {
        let earlier = Snapshot {
            counters: vec![named_counter("a", 10), named_counter("gone", 5)],
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: Vec::new(),
            flight_events: None,
            build_info: None,
        };
        let later = Snapshot {
            counters: vec![named_counter("a", 17), named_counter("new", 3)],
            gauges: vec![GaugeSnapshot {
                name: "g".into(),
                value: 9,
            }],
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: vec![SpanEventSnapshot {
                name: "e".into(),
                start_us: 0,
                dur_us: 1,
                tid: 1,
            }],
            flight_events: None,
            build_info: None,
        };
        let d = later.diff(&earlier);
        assert_eq!(d.counter("a"), Some(7));
        // Only in `later`: created in between, full value kept.
        assert_eq!(d.counter("new"), Some(3));
        // Only in `earlier`: dropped from the delta.
        assert_eq!(d.counter("gone"), None);
        // Gauges pass through; the ring timeline does not diff.
        assert_eq!(d.gauge("g"), Some(9));
        assert!(d.span_events.is_empty());
    }

    #[test]
    fn diff_handles_histograms_and_spans() {
        let hist = |count: u64, sum: u64, buckets: Vec<(u64, u64)>| HistogramSnapshot {
            name: "h".into(),
            count,
            sum,
            min: 1,
            max: 8,
            buckets: buckets
                .into_iter()
                .map(|(lo, count)| HistogramBucket { lo, count })
                .collect(),
        };
        let span = |count: u64, total_us: u64| SpanSnapshot {
            name: "s".into(),
            count,
            total_us,
            max_us: 40,
        };
        let earlier = Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: vec![hist(3, 11, vec![(1, 2), (8, 1)])],
            spans: vec![span(2, 50)],
            span_events: Vec::new(),
            flight_events: None,
            build_info: None,
        };
        let later = Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: vec![hist(7, 30, vec![(1, 4), (4, 2), (8, 1)])],
            spans: vec![span(5, 90)],
            span_events: Vec::new(),
            flight_events: None,
            build_info: None,
        };
        let d = later.diff(&earlier);
        let h = d.histogram("h").unwrap();
        assert_eq!((h.count, h.sum), (4, 19));
        // Bucket-wise delta; the unchanged bucket (lo = 8) disappears, the
        // bucket new to `later` (lo = 4) keeps its full count.
        let bucket = |lo: u64| h.buckets.iter().find(|b| b.lo == lo).map(|b| b.count);
        assert_eq!(bucket(1), Some(2));
        assert_eq!(bucket(4), Some(2));
        assert_eq!(bucket(8), None);
        // min/max are running extremes: kept from `later`, not diffed.
        assert_eq!((h.min, h.max), (1, 8));
        let s = d.span("s").unwrap();
        assert_eq!((s.count, s.total_us, s.max_us), (3, 40, 40));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn diff_of_identical_live_snapshots_is_zero() {
        let _guard = recording_lock();
        global().counter("lib.test.diff_zero").add(5);
        let snap = snapshot();
        let d = snap.diff(&snap);
        assert!(d.counters.iter().all(|c| c.value == 0));
        assert!(d.histograms.iter().all(|h| h.count == 0));
        assert!(d.spans.iter().all(|s| s.count == 0));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn paused_recording_drops_updates() {
        let _guard = recording_lock();
        let c = global().counter("lib.test.paused");
        set_recording(false);
        c.add(1000);
        set_recording(true);
        assert_eq!(snapshot().counter("lib.test.paused"), Some(0));
    }
}
