//! In-process telemetry for the reproduction: a metrics registry of atomic
//! counters/gauges/histograms, RAII span timers with a ring-buffer event
//! sink, a throttled progress heartbeat, and a small leveled stderr logger.
//!
//! The crate exists so that the Monte-Carlo stack (pool → runner → model →
//! experiments) can report what it is doing without perturbing what it
//! computes. Two invariants define the design:
//!
//! * **Strictly out-of-band.** Telemetry never touches an RNG stream,
//!   never reorders work, and never feeds back into any seeded
//!   computation. Handles are updated with relaxed atomics off the hot
//!   path (per chunk / per run, never per trial), so every seeded result
//!   is bit-for-bit identical whether collection is on, off, or absent.
//! * **The disabled path is a compile-time no-op.** Built without the
//!   `enabled` feature (`--no-default-features`), every handle is a
//!   zero-sized struct with empty inlined methods and [`snapshot`] returns
//!   an empty [`Snapshot`]. A runtime master switch ([`set_recording`])
//!   additionally pauses collection in `enabled` builds, which is what the
//!   overhead benchmarks toggle.
//!
//! Collection is process-global: every crate in the workspace feeds the
//! same [`global`] registry, and a binary emits one JSON [`Snapshot`] at
//! exit (the `--metrics <path>` flag).
//!
//! # Example
//!
//! ```
//! let hits = obs::global().counter("example.hits");
//! hits.add(3);
//! let snap = obs::snapshot();
//! # #[cfg(feature = "enabled")]
//! assert!(snap.counter("example.hits").unwrap() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
mod metrics;
pub mod progress;
mod span;

pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket,
    HistogramSnapshot, Registry,
};
pub use span::{span, SpanEventSnapshot, SpanGuard, SpanSnapshot};

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide registry every instrumented crate records into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// Runtime master switch; collection starts enabled.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Pauses (`false`) or resumes (`true`) all metric and span collection at
/// runtime. Purely observational: results of instrumented code are
/// identical either way.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether collection is currently recording (always `false` in builds
/// without the `enabled` feature).
#[must_use]
pub fn recording() -> bool {
    cfg!(feature = "enabled") && RECORDING.load(Ordering::Relaxed)
}

/// One coherent JSON-serializable view of everything collected so far:
/// counters, gauges, histograms, per-name span aggregates, and the recent
/// span events still in the ring buffer. Collection is out-of-band, so a
/// snapshot may be taken at any time from any thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-name span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// The most recent span events, oldest first (bounded ring buffer).
    pub span_events: Vec<SpanEventSnapshot>,
}

impl Snapshot {
    /// The value of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The value of a gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by name, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// A span aggregate by name, if present.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Snapshots the [`global`] registry plus the span sink.
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut snap = global().snapshot();
    let (spans, span_events) = span::snapshot();
    snap.spans = spans;
    snap.span_events = span_events;
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The master switch is process-global, so tests that toggle or depend
    /// on it serialize through this lock.
    fn recording_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn recording_switch_roundtrips() {
        let _guard = recording_lock();
        set_recording(true);
        assert_eq!(recording(), cfg!(feature = "enabled"));
        set_recording(false);
        assert!(!recording());
        set_recording(true);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_a_zero_sized_no_op() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        let c = global().counter("disabled.counter");
        c.add(7);
        let h = global().histogram("disabled.hist");
        h.record(7);
        drop(span("disabled.span"));
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.span_events.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn snapshot_sees_global_updates() {
        let _guard = recording_lock();
        let c = global().counter("lib.test.counter");
        c.add(41);
        c.inc();
        let g = global().gauge("lib.test.gauge");
        g.set(17);
        let h = global().histogram("lib.test.hist");
        h.record(100);
        drop(span("lib.test.span"));
        let snap = snapshot();
        assert!(snap.counter("lib.test.counter").unwrap() >= 42);
        assert_eq!(snap.gauge("lib.test.gauge"), Some(17));
        assert!(snap.histogram("lib.test.hist").unwrap().count >= 1);
        assert!(snap.span("lib.test.span").unwrap().count >= 1);
        assert!(snap.counter("lib.test.missing").is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn paused_recording_drops_updates() {
        let _guard = recording_lock();
        let c = global().counter("lib.test.paused");
        set_recording(false);
        c.add(1000);
        set_recording(true);
        assert_eq!(snapshot().counter("lib.test.paused"), Some(0));
    }
}
