//! The live telemetry endpoint: a std-only TCP server speaking minimal
//! HTTP/1.0, started by `--serve ADDR` on both binaries.
//!
//! | endpoint | response |
//! |---|---|
//! | `GET /` | plain-text endpoint index |
//! | `GET /metrics` | live Prometheus exposition ([`crate::export::prometheus`]) |
//! | `GET /events` | CRC-framed `MMRE` NDJSON flight events: the retained ring replayed, then a live tail |
//! | `GET /status` | JSON summary: build info, current request key, run state, convergence trajectory, extension fields |
//!
//! Connections are accepted on one dedicated thread and each request is
//! handled on its own short-lived thread, so a slow client can never
//! stall the accept loop — and, because `/events` tails a bounded
//! drop-oldest [bus](crate::bus) queue, never a worker either. A client
//! that goes away mid-stream is detached with an `obs.serve.disconnects`
//! bump. Serving is strictly out-of-band: results are bit-identical with
//! the server attached, detached, or with clients connecting and
//! disconnecting mid-run.
//!
//! An unusable `--serve` address surfaces as the bind error from
//! [`serve`]; the flag layer degrades it like any other artifact
//! (warning + exit 2 with results intact, via [`crate::degrade`]).

use serde::{Number, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the accept loop sleeps between polls of the nonblocking
/// listener (also bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// How long an `/events` streamer waits on its queue before re-checking
/// the shutdown flag.
const EVENTS_POLL: Duration = Duration::from_millis(250);

fn serve_connections() -> &'static crate::Counter {
    static C: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::global().counter("obs.serve.connections"))
}

fn serve_disconnects() -> &'static crate::Counter {
    static C: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::global().counter("obs.serve.disconnects"))
}

/// Extra `/status` fields installed by the binary (e.g. the fault-ledger
/// snapshot, which lives above `obs` in the crate graph).
type StatusExt = Box<dyn Fn() -> Vec<(String, Value)> + Send + Sync>;

static STATUS_EXT: Mutex<Option<StatusExt>> = Mutex::new(None);

/// Installs a provider of extra top-level `/status` fields. The binaries
/// use this to attach state `obs` cannot see itself (the fault ledger).
pub fn set_status_ext(f: StatusExt) {
    *STATUS_EXT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(f);
}

/// A running telemetry server. Dropping it stops the accept loop;
/// in-flight `/events` streams notice the shutdown flag within
/// [`EVENTS_POLL`] and close.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The actually-bound address (resolves port 0 to the kernel's
    /// choice — callers print this so clients can find it).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving on a dedicated
/// accept thread.
///
/// # Errors
///
/// Any error resolving or binding the address — the flag layer's
/// degradation contract turns it into a warning plus deferred exit 2.
pub fn serve(addr: &str) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("obs-serve".to_owned())
        .spawn(move || accept_loop(&listener, &stop2))?;
    Ok(Server {
        addr: local,
        stop,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                serve_connections().inc();
                let stop = Arc::clone(stop);
                // One short-lived thread per request: a slow reader can
                // stall neither the accept loop nor any worker.
                let _ = std::thread::Builder::new()
                    .name("obs-serve-conn".to_owned())
                    .spawn(move || handle_connection(stream, &stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Parses the target path out of an HTTP request line (`GET <path> …`).
fn request_path(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Some(path.to_owned()),
        _ => None,
    }
}

fn handle_connection(stream: TcpStream, stop: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    match request_path(&line).as_deref() {
        Some("/metrics") => {
            let body = crate::export::prometheus(&crate::snapshot());
            respond(stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        Some("/status") => {
            let body = serde_json::to_string_pretty(&status_value()).unwrap_or_default();
            respond(stream, "200 OK", "application/json", &body);
        }
        Some("/events") => stream_events(stream, stop),
        Some("/") => respond(
            stream,
            "200 OK",
            "text/plain",
            "mmreliab live telemetry\n\n/metrics  Prometheus exposition\n/events   MMRE NDJSON flight-event stream\n/status   JSON run summary\n",
        ),
        Some(_) => respond(stream, "404 Not Found", "text/plain", "not found\n"),
        None => respond(stream, "400 Bad Request", "text/plain", "bad request\n"),
    }
}

/// Writes one complete HTTP/1.0 response and closes the connection.
fn respond(mut stream: TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}

/// Streams flight events: first a replay of everything still in the
/// ring, then a live tail from a bounded drop-oldest bus queue, until
/// the client disconnects or the server stops.
fn stream_events(mut stream: TcpStream, stop: &Arc<AtomicBool>) {
    // Subscribe before replaying so no event can fall between the
    // replay and the tail; duplicates are filtered by sequence number.
    let sub = crate::bus::subscribe(crate::ring_capacity());
    let head = "HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        serve_disconnects().inc();
        return;
    }
    let mut last_seq = 0u64;
    for ev in crate::flight::events() {
        if let Some(line) = crate::flight::frame_line(&ev) {
            if stream.write_all(line.as_bytes()).is_err() {
                serve_disconnects().inc();
                return;
            }
        }
        last_seq = last_seq.max(ev.seq);
    }
    let _ = stream.flush();
    while !stop.load(Ordering::Relaxed) {
        match sub.recv_timeout(EVENTS_POLL) {
            Some(crate::bus::BusMessage::Event(ev)) if ev.seq > last_seq => {
                last_seq = ev.seq;
                let Some(line) = crate::flight::frame_line(&ev) else {
                    continue;
                };
                if stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    serve_disconnects().inc();
                    return;
                }
            }
            // Frames and replay duplicates are not part of this stream.
            Some(_) | None => {}
        }
    }
}

fn num(v: u64) -> Value {
    Value::Number(Number::U(v))
}

fn opt_f64(v: Option<f64>) -> Value {
    v.map_or(Value::Null, |f| Value::Number(Number::F(f)))
}

/// The `/status` document: build metadata, the current request key, the
/// run state derived from the flight timeline, the convergence
/// trajectory so far, and any binary-installed extension fields.
fn status_value() -> Value {
    let events = crate::flight::events();
    let mut state = "idle";
    let mut fate: Option<String> = None;
    for ev in &events {
        match ev.kind.as_str() {
            "run_start" => {
                state = "running";
                fate = None;
            }
            "run_end" => {
                state = "done";
                fate = ev.detail.clone();
            }
            _ => {}
        }
    }
    let waves: Vec<Value> = events
        .iter()
        .filter(|e| e.kind == "wave_decided")
        .map(|e| {
            Value::Object(vec![
                ("n".to_owned(), num(e.n.unwrap_or(0))),
                ("rse".to_owned(), opt_f64(e.value)),
                (
                    "decision".to_owned(),
                    e.detail
                        .clone()
                        .map_or(Value::Null, Value::String),
                ),
            ])
        })
        .collect();
    let build = crate::build_info().map_or(Value::Null, |b| {
        Value::Object(vec![
            ("version".to_owned(), Value::String(b.version)),
            ("git_rev".to_owned(), Value::String(b.git_rev)),
            ("host_cores".to_owned(), num(b.host_cores)),
            ("chunk_width".to_owned(), num(b.chunk_width)),
        ])
    });
    let mut fields = vec![
        ("build".to_owned(), build),
        (
            "request".to_owned(),
            crate::flight::current_request().map_or(Value::Null, Value::String),
        ),
        ("state".to_owned(), Value::String(state.to_owned())),
        (
            "fate".to_owned(),
            fate.map_or(Value::Null, Value::String),
        ),
        ("live_rse".to_owned(), opt_f64(crate::progress::live_rse())),
        ("waves".to_owned(), Value::Array(waves)),
        ("events_retained".to_owned(), num(events.len() as u64)),
    ];
    let ext = STATUS_EXT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(f) = ext.as_ref() {
        fields.extend(f());
    }
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot GET against a live server, returning (header, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("request");
        let mut text = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut text).expect("response");
        match text.split_once("\r\n\r\n") {
            Some((h, b)) => (h.to_owned(), b.to_owned()),
            None => (text, String::new()),
        }
    }

    #[test]
    fn metrics_endpoint_serves_lint_clean_exposition() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::set_build_info(crate::BuildInfo {
            version: "0.0.0-test".to_owned(),
            git_rev: "deadbeef".to_owned(),
            host_cores: 8,
            chunk_width: 4096,
        });
        crate::global().counter("serve.test.hits").add(3);
        let server = serve("127.0.0.1:0").expect("bind");
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        crate::export::lint(&body).expect("exposition lints clean");
        #[cfg(feature = "enabled")]
        {
            assert!(body.contains("serve_test_hits 3"), "{body}");
            assert!(body.contains("mmr_build_info{"), "{body}");
        }
    }

    #[test]
    fn events_endpoint_replays_ring_and_tails_live() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::flight::set_flight_recording(true);
        crate::flight::clear();
        crate::flight::event("serve_replayed").emit();
        let server = serve("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /events HTTP/1.0\r\n\r\n")
            .expect("request");
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        // Give the streamer a beat to finish the replay, then emit live.
        std::thread::sleep(Duration::from_millis(100));
        crate::flight::event("serve_live").emit();
        let mut reader = BufReader::new(stream);
        let mut kinds = Vec::new();
        let mut line = String::new();
        // Header lines, blank separator, then MMRE lines.
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if let Some(ev) = parse_mmre(&line) {
                kinds.push(ev);
            }
            if kinds.len() >= 2 {
                break;
            }
        }
        #[cfg(feature = "enabled")]
        assert_eq!(kinds, vec!["serve_replayed", "serve_live"]);
        #[cfg(not(feature = "enabled"))]
        assert!(kinds.is_empty() || kinds.len() <= 2);
        drop(server);
    }

    fn parse_mmre(line: &str) -> Option<String> {
        if !line.starts_with("MMRE ") {
            return None;
        }
        let parsed = crate::flight::parse_log(line);
        parsed.events.first().map(|e| e.kind.clone())
    }

    #[test]
    fn status_endpoint_reports_build_state_and_waves() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::flight::set_flight_recording(true);
        crate::flight::clear();
        crate::set_build_info(crate::BuildInfo {
            version: "0.0.0-test".to_owned(),
            git_rev: "deadbeef".to_owned(),
            host_cores: 8,
            chunk_width: 4096,
        });
        set_status_ext(Box::new(|| {
            vec![("faults".to_owned(), Value::Object(vec![
                ("injected_panics".to_owned(), num(2)),
            ]))]
        }));
        crate::flight::event("run_start").n(100).emit();
        crate::flight::event("wave_decided")
            .n(64)
            .value(0.25)
            .detail("continue")
            .emit();
        let server = serve("127.0.0.1:0").expect("bind");
        let (head, body) = get(server.addr(), "/status");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let v: Value = serde_json::from_str(&body).expect("status parses");
        let Value::Object(fields) = &v else {
            panic!("status is not an object: {body}")
        };
        assert!(matches!(Value::field(fields, "build"), Value::Object(_)));
        #[cfg(feature = "enabled")]
        {
            assert!(
                matches!(Value::field(fields, "state"), Value::String(s) if s == "running"),
                "{body}"
            );
            let Value::Array(waves) = Value::field(fields, "waves") else {
                panic!("waves missing: {body}")
            };
            assert_eq!(waves.len(), 1);
            assert!(matches!(Value::field(fields, "faults"), Value::Object(_)));
        }
        *STATUS_EXT.lock().unwrap() = None;
    }

    #[test]
    fn unknown_path_is_404_and_bad_request_400() {
        let _g = crate::test_ring_lock();
        let server = serve("127.0.0.1:0").expect("bind");
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        assert!(request_path("POST / HTTP/1.0").is_none());
        assert!(request_path("").is_none());
        assert_eq!(request_path("GET /x HTTP/1.1").as_deref(), Some("/x"));
    }

    #[test]
    fn unusable_address_is_a_bind_error() {
        assert!(serve("256.256.256.256:1").is_err());
        assert!(serve("not an address").is_err());
    }

    #[test]
    fn dead_events_client_is_detached_with_counter_bump() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::flight::set_flight_recording(true);
        let before = crate::global().counter("obs.serve.disconnects").get();
        let server = serve("127.0.0.1:0").expect("bind");
        {
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            stream
                .write_all(b"GET /events HTTP/1.0\r\n\r\n")
                .expect("request");
            // Let the streamer start, then vanish without reading.
            std::thread::sleep(Duration::from_millis(100));
        }
        #[cfg(feature = "enabled")]
        {
            // Keep emitting until the write error surfaces (the first
            // write after a close may still succeed).
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while crate::global().counter("obs.serve.disconnects").get() == before {
                assert!(
                    std::time::Instant::now() < deadline,
                    "dead client never detached"
                );
                crate::flight::event("serve_dead_client_probe").emit();
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = before;
        drop(server);
    }
}
