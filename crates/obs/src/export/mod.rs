//! Interoperable exports of a [`Snapshot`](crate::Snapshot): Chrome
//! trace-event JSON ([`chrome_trace`]) for Perfetto / `chrome://tracing`,
//! and Prometheus text exposition ([`prometheus`]) for scrape-style
//! tooling.
//!
//! Both exporters are pure functions of snapshot data — no sockets, no
//! background threads, no new dependencies. A binary collects out-of-band
//! telemetry exactly as before and only the final serialization changes
//! (`--trace FILE`, `--metrics-format prom`). In builds without the
//! `enabled` feature the snapshot is empty and the exporters emit the
//! corresponding empty-but-valid documents.

mod chrome;
mod prom;

pub use chrome::chrome_trace;
pub use prom::{lint, prometheus};

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain.name"), "plain.name");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }
}
