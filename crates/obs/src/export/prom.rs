//! Prometheus text-format exposition of a [`Snapshot`], plus a lint for
//! the invariants scrapers rely on.
//!
//! Mapping:
//!
//! * counters → `# TYPE name counter` and one sample;
//! * gauges → `# TYPE name gauge` and one sample;
//! * histograms → `# TYPE name histogram` with cumulative `name_bucket`
//!   samples over the log₂ buckets (`le` is the inclusive upper bound of
//!   each integer bucket: `0` for the zero bucket, `2·lo − 1` for
//!   `[lo, 2·lo)`), a `+Inf` bucket, `name_sum`, and `name_count`;
//! * spans → `span_<name>_count` / `span_<name>_total_us` counters and a
//!   `span_<name>_max_us` gauge (the `span_` prefix keeps aggregate span
//!   names from colliding with metric names after sanitization).
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
//! underscores), matching the exposition-format grammar.
//!
//! Every family is preceded by a `# HELP` line whose text is sourced
//! from the METRICS.md name table (compiled in via `include_str!`), so
//! the exposition is self-describing and cannot drift from the repo's
//! own metric reference. Names the table does not document get an
//! explicit fallback text; [`lint`] requires the HELP line either way.

use crate::Snapshot;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// The METRICS.md name table, parsed once: `(pattern, meaning)` rows
/// where a pattern may contain `*` wildcard segments
/// (`mmr.model.*.trials`).
fn help_table() -> &'static [(String, String)] {
    static TABLE: OnceLock<Vec<(String, String)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut rows = Vec::new();
        for line in include_str!("../../../../METRICS.md").lines() {
            // Documented rows look like: | `name` | `source` | Meaning. |
            let Some(rest) = line.trim().strip_prefix("| `") else {
                continue;
            };
            let Some((name, rest)) = rest.split_once('`') else {
                continue;
            };
            let cells: Vec<&str> = rest.split('|').collect();
            if cells.len() < 3 {
                continue;
            }
            let meaning = cells[cells.len() - 2].trim().replace('`', "");
            if !meaning.is_empty() {
                rows.push((name.to_owned(), meaning));
            }
        }
        rows
    })
}

/// Whether a METRICS.md pattern covers a raw metric name (`*` matches
/// exactly one dot-separated segment).
fn covers(pattern: &str, name: &str) -> bool {
    let pat: Vec<&str> = pattern.split('.').collect();
    let segs: Vec<&str> = name.split('.').collect();
    pat.len() == segs.len()
        && pat.iter().zip(&segs) .all(|(p, s)| *p == "*" || p == s)
}

/// The METRICS.md meaning of a raw (pre-sanitization) name, or an
/// explicit fallback for undocumented names.
fn help_text(raw: &str) -> String {
    help_table()
        .iter()
        .find(|(pattern, _)| covers(pattern, raw))
        .map_or_else(
            || "Undocumented metric; add a row to METRICS.md.".to_owned(),
            |(_, meaning)| meaning.clone(),
        )
}

/// Replaces every character outside the Prometheus metric-name alphabet
/// with `_` (and prefixes `_` when the name starts with a digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' || (c.is_ascii_digit() && i > 0) {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders the snapshot in the Prometheus text exposition format.
#[must_use]
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if let Some(b) = &snapshot.build_info {
        let _ = writeln!(out, "# HELP mmr_build_info {}", help_text("mmr_build_info"));
        let _ = writeln!(out, "# TYPE mmr_build_info gauge");
        let _ = writeln!(
            out,
            "mmr_build_info{{version=\"{}\",git_rev=\"{}\",host_cores=\"{}\",chunk_width=\"{}\"}} 1",
            label_escape(&b.version),
            label_escape(&b.git_rev),
            b.host_cores,
            b.chunk_width
        );
    }
    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# HELP {name} {}", help_text(&c.name));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# HELP {name} {}", help_text(&g.name));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# HELP {name} {}", help_text(&h.name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            // Inclusive integer upper bound of the log2 bucket.
            let le = if b.lo == 0 { 0 } else { 2 * b.lo - 1 };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    for s in &snapshot.spans {
        let name = format!("span_{}", sanitize(&s.name));
        let base = help_text(&s.name);
        let _ = writeln!(out, "# HELP {name}_count {base} (completed spans)");
        let _ = writeln!(out, "# TYPE {name}_count counter");
        let _ = writeln!(out, "{name}_count {}", s.count);
        let _ = writeln!(out, "# HELP {name}_total_us {base} (total duration, us)");
        let _ = writeln!(out, "# TYPE {name}_total_us counter");
        let _ = writeln!(out, "{name}_total_us {}", s.total_us);
        let _ = writeln!(out, "# HELP {name}_max_us {base} (longest single span, us)");
        let _ = writeln!(out, "# TYPE {name}_max_us gauge");
        let _ = writeln!(out, "{name}_max_us {}", s.max_us);
    }
    out
}

/// Checks the invariants scrape consumers rely on:
///
/// 1. every sample line belongs to a metric declared by a preceding
///    `# TYPE` line (histogram `_bucket`/`_sum`/`_count` samples belong to
///    their base name);
/// 2. histogram bucket counts are monotone non-decreasing in declaration
///    order;
/// 3. every histogram's `+Inf` bucket equals its `_count` sample;
/// 4. every `# TYPE` line is immediately preceded by a non-empty
///    `# HELP` line for the same metric name.
///
/// # Errors
///
/// The first violated invariant, as a human-readable message with the
/// offending line.
pub fn lint(text: &str) -> Result<(), String> {
    let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut last_bucket: Option<(String, u64)> = None; // (histogram, cumulative)
    let mut inf_buckets: Vec<(String, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();
    let mut last_help: Option<String> = None;

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().ok_or(format!("bare HELP line: {line:?}"))?;
            let help = parts.next().unwrap_or("").trim();
            if help.is_empty() {
                return Err(format!("HELP without text: {line:?}"));
            }
            last_help = Some(name.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("bare TYPE line: {line:?}"))?;
            let kind = parts.next().ok_or(format!("TYPE without kind: {line:?}"))?;
            if last_help.as_deref() != Some(name) {
                return Err(format!("TYPE not preceded by its # HELP: {line:?}"));
            }
            declared.push((name.to_owned(), kind.to_owned()));
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment form: {line:?}"));
        }
        // Sample line: `name[{labels}] value`.
        let metric_end = line
            .find(['{', ' '])
            .ok_or(format!("malformed sample line: {line:?}"))?;
        let metric = &line[..metric_end];
        let value: u64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(format!("sample without an integer value: {line:?}"))?;

        // Resolve the declared family this sample belongs to.
        let family = declared
            .iter()
            .rev()
            .find(|(name, kind)| {
                metric == name
                    || (kind == "histogram"
                        && [
                            format!("{name}_bucket"),
                            format!("{name}_sum"),
                            format!("{name}_count"),
                        ]
                        .contains(&metric.to_owned()))
            })
            .ok_or(format!("sample not preceded by a # TYPE: {line:?}"))?
            .clone();

        if family.1 == "histogram" && metric == format!("{}_bucket", family.0) {
            if line.contains("le=\"+Inf\"") {
                inf_buckets.push((family.0.clone(), value));
            }
            match &last_bucket {
                Some((name, prev)) if *name == family.0 && value < *prev => {
                    return Err(format!(
                        "histogram {} buckets not monotone: {} after {}",
                        family.0, value, prev
                    ));
                }
                _ => {}
            }
            last_bucket = Some((family.0.clone(), value));
        } else {
            last_bucket = None;
            if family.1 == "histogram" && metric == format!("{}_count", family.0) {
                counts.push((family.0.clone(), value));
            }
        }
    }

    for (name, inf) in &inf_buckets {
        let count = counts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .ok_or(format!("histogram {name} has +Inf bucket but no _count"))?;
        if *inf != count {
            return Err(format!(
                "histogram {name}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    for (name, _) in &counts {
        if !inf_buckets.iter().any(|(n, _)| n == name) {
            return Err(format!("histogram {name} lacks a +Inf bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CounterSnapshot, GaugeSnapshot, HistogramBucket, HistogramSnapshot, SpanSnapshot,
    };

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "mc.runner.runs".into(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "mc.pool.workers_busy".into(),
                value: 2,
            }],
            histograms: vec![HistogramSnapshot {
                name: "mc.runner.chunk_wall_us".into(),
                count: 7,
                sum: 900,
                min: 0,
                max: 600,
                buckets: vec![
                    HistogramBucket { lo: 0, count: 1 },
                    HistogramBucket { lo: 64, count: 4 },
                    HistogramBucket { lo: 512, count: 2 },
                ],
            }],
            spans: vec![SpanSnapshot {
                name: "thm62".into(),
                count: 1,
                total_us: 1500,
                max_us: 1500,
            }],
            span_events: Vec::new(),
            flight_events: None,
            build_info: None,
        }
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("mc.runner.runs"), "mc_runner_runs");
        assert_eq!(sanitize("exp.t1.runs"), "exp_t1_runs");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }

    #[test]
    fn help_table_covers_documented_names() {
        assert_eq!(help_text("mc.runner.runs"), "Monte-Carlo runner invocations.");
        // Wildcard segments resolve per the METRICS.md convention.
        assert!(help_text("mmr.model.SC.trials").contains("Survival trials per model"));
        assert!(help_text("exp.t1.runs").contains("Completions per experiment"));
        // Span rows are looked up by raw span name.
        assert!(help_text("bench.joined").contains("joined scratch pipeline"));
        // Undocumented names get the explicit fallback.
        assert!(help_text("export.test.undocumented").contains("Undocumented metric"));
        assert!(!covers("mmr.model.*.trials", "mmr.model.trials"));
    }

    #[test]
    fn exposition_has_types_buckets_and_passes_lint() {
        let text = prometheus(&sample());
        assert!(text.contains("# HELP mc_runner_runs Monte-Carlo runner invocations."));
        assert!(text.contains("# TYPE mc_runner_runs counter"));
        assert!(text.contains("# HELP span_thm62_count Experiment runtime. (completed spans)"));
        assert!(text.contains("mc_runner_runs 3"));
        assert!(text.contains("# TYPE mc_pool_workers_busy gauge"));
        assert!(text.contains("# TYPE mc_runner_chunk_wall_us histogram"));
        // Cumulative buckets with inclusive integer bounds: 0 | [64,128) →
        // le=127 | [512,1024) → le=1023, then +Inf == count.
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"127\"} 5"));
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"1023\"} 7"));
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("mc_runner_chunk_wall_us_sum 900"));
        assert!(text.contains("mc_runner_chunk_wall_us_count 7"));
        assert!(text.contains("span_thm62_count 1"));
        assert!(text.contains("span_thm62_total_us 1500"));
        lint(&text).unwrap();
    }

    #[test]
    fn empty_snapshot_is_lintable() {
        let snap = Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: Vec::new(),
            flight_events: None,
            build_info: None,
        };
        let text = prometheus(&snap);
        assert!(text.is_empty());
        lint(&text).unwrap();
    }

    #[test]
    fn lint_rejects_undeclared_samples() {
        let err = lint("orphan_metric 5\n").unwrap_err();
        assert!(err.contains("not preceded by a # TYPE"), "{err}");
    }

    #[test]
    fn lint_rejects_non_monotone_buckets() {
        let text = "# HELP h a histogram\n\
                    # TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"3\"} 4\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\n\
                    h_count 5\n";
        let err = lint(text).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn lint_rejects_inf_count_mismatch() {
        let text = "# HELP h a histogram\n\
                    # TYPE h histogram\n\
                    h_bucket{le=\"1\"} 4\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    h_sum 9\n\
                    h_count 5\n";
        let err = lint(text).unwrap_err();
        assert!(err.contains("+Inf bucket 4 != _count 5"), "{err}");
    }

    #[test]
    fn lint_requires_help_before_type() {
        let err = lint("# TYPE h counter\nh 1\n").unwrap_err();
        assert!(err.contains("not preceded by its # HELP"), "{err}");
        // HELP for a different name does not satisfy the requirement.
        let err = lint("# HELP other text\n# TYPE h counter\nh 1\n").unwrap_err();
        assert!(err.contains("not preceded by its # HELP"), "{err}");
        // Empty HELP text is rejected outright.
        let err = lint("# HELP h\n# TYPE h counter\nh 1\n").unwrap_err();
        assert!(err.contains("HELP without text"), "{err}");
        lint("# HELP h fine\n# TYPE h counter\nh 1\n").unwrap();
    }

    #[test]
    fn build_info_renders_as_labeled_gauge_and_lints() {
        let mut snap = sample();
        snap.build_info = Some(crate::BuildInfo {
            version: "0.1.0".into(),
            git_rev: "abc123\"x".into(),
            host_cores: 8,
            chunk_width: 4096,
        });
        let text = prometheus(&snap);
        assert!(text.contains("# HELP mmr_build_info "), "{text}");
        assert!(text.contains("# TYPE mmr_build_info gauge"), "{text}");
        assert!(
            text.contains(
                "mmr_build_info{version=\"0.1.0\",git_rev=\"abc123\\\"x\",host_cores=\"8\",chunk_width=\"4096\"} 1"
            ),
            "{text}"
        );
        // The HELP text comes from the METRICS.md table, not the fallback.
        assert!(!text.contains("mmr_build_info Undocumented"), "{text}");
        lint(&text).unwrap();
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn live_snapshot_passes_lint() {
        crate::global().counter("export.test.prom").add(2);
        crate::global().histogram("export.test.prom_hist").record(100);
        drop(crate::span("export.test.prom_span"));
        lint(&prometheus(&crate::snapshot())).unwrap();
    }
}
