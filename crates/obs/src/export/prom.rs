//! Prometheus text-format exposition of a [`Snapshot`], plus a lint for
//! the invariants scrapers rely on.
//!
//! Mapping:
//!
//! * counters → `# TYPE name counter` and one sample;
//! * gauges → `# TYPE name gauge` and one sample;
//! * histograms → `# TYPE name histogram` with cumulative `name_bucket`
//!   samples over the log₂ buckets (`le` is the inclusive upper bound of
//!   each integer bucket: `0` for the zero bucket, `2·lo − 1` for
//!   `[lo, 2·lo)`), a `+Inf` bucket, `name_sum`, and `name_count`;
//! * spans → `span_<name>_count` / `span_<name>_total_us` counters and a
//!   `span_<name>_max_us` gauge (the `span_` prefix keeps aggregate span
//!   names from colliding with metric names after sanitization).
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
//! underscores), matching the exposition-format grammar.

use crate::Snapshot;
use std::fmt::Write as _;

/// Replaces every character outside the Prometheus metric-name alphabet
/// with `_` (and prefixes `_` when the name starts with a digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' || (c.is_ascii_digit() && i > 0) {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot in the Prometheus text exposition format.
#[must_use]
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            // Inclusive integer upper bound of the log2 bucket.
            let le = if b.lo == 0 { 0 } else { 2 * b.lo - 1 };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    for s in &snapshot.spans {
        let name = format!("span_{}", sanitize(&s.name));
        let _ = writeln!(out, "# TYPE {name}_count counter");
        let _ = writeln!(out, "{name}_count {}", s.count);
        let _ = writeln!(out, "# TYPE {name}_total_us counter");
        let _ = writeln!(out, "{name}_total_us {}", s.total_us);
        let _ = writeln!(out, "# TYPE {name}_max_us gauge");
        let _ = writeln!(out, "{name}_max_us {}", s.max_us);
    }
    out
}

/// Checks the invariants scrape consumers rely on:
///
/// 1. every sample line belongs to a metric declared by a preceding
///    `# TYPE` line (histogram `_bucket`/`_sum`/`_count` samples belong to
///    their base name);
/// 2. histogram bucket counts are monotone non-decreasing in declaration
///    order;
/// 3. every histogram's `+Inf` bucket equals its `_count` sample.
///
/// # Errors
///
/// The first violated invariant, as a human-readable message with the
/// offending line.
pub fn lint(text: &str) -> Result<(), String> {
    let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut last_bucket: Option<(String, u64)> = None; // (histogram, cumulative)
    let mut inf_buckets: Vec<(String, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("bare TYPE line: {line:?}"))?;
            let kind = parts.next().ok_or(format!("TYPE without kind: {line:?}"))?;
            declared.push((name.to_owned(), kind.to_owned()));
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment form: {line:?}"));
        }
        // Sample line: `name[{labels}] value`.
        let metric_end = line
            .find(['{', ' '])
            .ok_or(format!("malformed sample line: {line:?}"))?;
        let metric = &line[..metric_end];
        let value: u64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(format!("sample without an integer value: {line:?}"))?;

        // Resolve the declared family this sample belongs to.
        let family = declared
            .iter()
            .rev()
            .find(|(name, kind)| {
                metric == name
                    || (kind == "histogram"
                        && [
                            format!("{name}_bucket"),
                            format!("{name}_sum"),
                            format!("{name}_count"),
                        ]
                        .contains(&metric.to_owned()))
            })
            .ok_or(format!("sample not preceded by a # TYPE: {line:?}"))?
            .clone();

        if family.1 == "histogram" && metric == format!("{}_bucket", family.0) {
            if line.contains("le=\"+Inf\"") {
                inf_buckets.push((family.0.clone(), value));
            }
            match &last_bucket {
                Some((name, prev)) if *name == family.0 && value < *prev => {
                    return Err(format!(
                        "histogram {} buckets not monotone: {} after {}",
                        family.0, value, prev
                    ));
                }
                _ => {}
            }
            last_bucket = Some((family.0.clone(), value));
        } else {
            last_bucket = None;
            if family.1 == "histogram" && metric == format!("{}_count", family.0) {
                counts.push((family.0.clone(), value));
            }
        }
    }

    for (name, inf) in &inf_buckets {
        let count = counts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .ok_or(format!("histogram {name} has +Inf bucket but no _count"))?;
        if *inf != count {
            return Err(format!(
                "histogram {name}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    for (name, _) in &counts {
        if !inf_buckets.iter().any(|(n, _)| n == name) {
            return Err(format!("histogram {name} lacks a +Inf bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CounterSnapshot, GaugeSnapshot, HistogramBucket, HistogramSnapshot, SpanSnapshot,
    };

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "mc.runner.runs".into(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "mc.pool.workers_busy".into(),
                value: 2,
            }],
            histograms: vec![HistogramSnapshot {
                name: "mc.runner.chunk_wall_us".into(),
                count: 7,
                sum: 900,
                min: 0,
                max: 600,
                buckets: vec![
                    HistogramBucket { lo: 0, count: 1 },
                    HistogramBucket { lo: 64, count: 4 },
                    HistogramBucket { lo: 512, count: 2 },
                ],
            }],
            spans: vec![SpanSnapshot {
                name: "thm62".into(),
                count: 1,
                total_us: 1500,
                max_us: 1500,
            }],
            span_events: Vec::new(),
        }
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("mc.runner.runs"), "mc_runner_runs");
        assert_eq!(sanitize("exp.t1.runs"), "exp_t1_runs");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }

    #[test]
    fn exposition_has_types_buckets_and_passes_lint() {
        let text = prometheus(&sample());
        assert!(text.contains("# TYPE mc_runner_runs counter"));
        assert!(text.contains("mc_runner_runs 3"));
        assert!(text.contains("# TYPE mc_pool_workers_busy gauge"));
        assert!(text.contains("# TYPE mc_runner_chunk_wall_us histogram"));
        // Cumulative buckets with inclusive integer bounds: 0 | [64,128) →
        // le=127 | [512,1024) → le=1023, then +Inf == count.
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"127\"} 5"));
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"1023\"} 7"));
        assert!(text.contains("mc_runner_chunk_wall_us_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("mc_runner_chunk_wall_us_sum 900"));
        assert!(text.contains("mc_runner_chunk_wall_us_count 7"));
        assert!(text.contains("span_thm62_count 1"));
        assert!(text.contains("span_thm62_total_us 1500"));
        lint(&text).unwrap();
    }

    #[test]
    fn empty_snapshot_is_lintable() {
        let snap = Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: Vec::new(),
        };
        let text = prometheus(&snap);
        assert!(text.is_empty());
        lint(&text).unwrap();
    }

    #[test]
    fn lint_rejects_undeclared_samples() {
        let err = lint("orphan_metric 5\n").unwrap_err();
        assert!(err.contains("not preceded by a # TYPE"), "{err}");
    }

    #[test]
    fn lint_rejects_non_monotone_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"3\"} 4\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\n\
                    h_count 5\n";
        let err = lint(text).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn lint_rejects_inf_count_mismatch() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 4\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    h_sum 9\n\
                    h_count 5\n";
        let err = lint(text).unwrap_err();
        assert!(err.contains("+Inf bucket 4 != _count 5"), "{err}");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn live_snapshot_passes_lint() {
        crate::global().counter("export.test.prom").add(2);
        crate::global().histogram("export.test.prom_hist").record(100);
        drop(crate::span("export.test.prom_span"));
        lint(&prometheus(&crate::snapshot())).unwrap();
    }
}
