//! Chrome trace-event JSON from the span ring buffer and the flight
//! recorder.
//!
//! The output follows the Trace Event Format's JSON-object form: a
//! top-level `"traceEvents"` array of complete (`"ph": "X"`) events, one
//! per ring-buffer span, with microsecond `ts`/`dur` — exactly what
//! Perfetto and `chrome://tracing` open directly. Flight-recorder events
//! interleave on the same clock as thread-scoped instant events
//! (`"ph": "i"`, `"cat": "flight"`). Aggregate-only data (counters,
//! per-name span totals) has no timeline and is summarized in
//! `"otherData"` instead.

use super::json_escape;
use crate::Snapshot;
use std::fmt::Write as _;

/// Renders the snapshot's span and flight timelines as Chrome
/// trace-event JSON.
///
/// Every ring-buffer span becomes one complete event: `ts` is the span's
/// start in microseconds since the process observability epoch, `dur`
/// its duration, `pid` is always 1 (one process), and `tid` is the
/// recorder's stable small thread id. Every flight event becomes one
/// thread-scoped instant event at its `ts`, with its payload fields as
/// `args`. Both rings are drop-oldest bounded;
/// `otherData.spans_dropped` / `otherData.flight_dropped` report how
/// many earlier events were evicted before this export.
#[must_use]
pub fn chrome_trace(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"traceEvents\": [");
    let mut emitted = 0usize;
    for e in &snapshot.span_events {
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            if emitted == 0 { "" } else { "," },
            json_escape(&e.name),
            e.start_us,
            e.dur_us,
            e.tid
        );
        emitted += 1;
    }
    for e in snapshot.flight_events() {
        let mut args = vec![format!("\"seq\": {}", e.seq)];
        if let Some(c) = e.chunk {
            args.push(format!("\"chunk\": {c}"));
        }
        if let Some(a) = e.attempt {
            args.push(format!("\"attempt\": {a}"));
        }
        if let Some(n) = e.n {
            args.push(format!("\"n\": {n}"));
        }
        if let Some(v) = e.value.filter(|v| v.is_finite()) {
            args.push(format!("\"value\": {v}"));
        }
        if let Some(d) = &e.detail {
            args.push(format!("\"detail\": \"{}\"", json_escape(d)));
        }
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{}\", \"cat\": \"flight\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{{}}}}}",
            if emitted == 0 { "" } else { "," },
            json_escape(&e.kind),
            e.t_us,
            e.tid,
            args.join(", ")
        );
        emitted += 1;
    }
    if emitted > 0 {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"spans_dropped\": \"{}\", \
         \"flight_dropped\": \"{}\"}}\n}}\n",
        snapshot.counter("obs.spans_dropped").unwrap_or(0),
        snapshot.counter("obs.flight_dropped").unwrap_or(0)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEventSnapshot, Snapshot};

    fn empty() -> Snapshot {
        Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: Vec::new(),
            flight_events: None,
            build_info: None,
        }
    }

    #[test]
    fn empty_snapshot_is_valid_and_has_empty_array() {
        let text = chrome_trace(&empty());
        assert!(text.contains("\"traceEvents\": []"));
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
    }

    #[test]
    fn events_become_complete_trace_events() {
        let mut snap = empty();
        snap.span_events = vec![
            SpanEventSnapshot {
                name: "alpha".into(),
                start_us: 10,
                dur_us: 5,
                tid: 1,
            },
            SpanEventSnapshot {
                name: "beta \"quoted\"".into(),
                start_us: 20,
                dur_us: 7,
                tid: 2,
            },
        ];
        let text = chrome_trace(&snap);
        // Parses as JSON and carries both events with the X phase.
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
        assert_eq!(text.matches("\"ph\": \"X\"").count(), 2);
        assert!(text.contains("\"name\": \"alpha\""));
        assert!(text.contains("beta \\\"quoted\\\""));
        assert!(text.contains("\"ts\": 10"));
        assert!(text.contains("\"dur\": 7"));
        assert!(text.contains("\"tid\": 2"));
    }

    #[test]
    fn flight_events_become_instant_events() {
        let mut snap = empty();
        snap.flight_events = Some(vec![
            crate::FlightEvent {
                seq: 1,
                t_us: 40,
                tid: 3,
                kind: "chunk_retried".into(),
                chunk: Some(9),
                attempt: Some(2),
                n: None,
                value: None,
                detail: None,
            },
            crate::FlightEvent {
                seq: 2,
                t_us: 55,
                tid: 3,
                kind: "wave_decided".into(),
                chunk: None,
                attempt: None,
                n: Some(16384),
                value: Some(0.25),
                detail: Some("continue".to_owned()),
            },
        ]);
        let text = chrome_trace(&snap);
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
        assert_eq!(text.matches("\"ph\": \"i\"").count(), 2);
        assert!(text.contains("\"cat\": \"flight\""));
        assert!(text.contains("\"chunk\": 9"));
        assert!(text.contains("\"value\": 0.25"));
        assert!(text.contains("\"detail\": \"continue\""));
        assert!(text.contains("\"flight_dropped\""));
        // Spans and flight events share one array without comma faults.
        snap.span_events = vec![SpanEventSnapshot {
            name: "alpha".into(),
            start_us: 10,
            dur_us: 5,
            tid: 1,
        }];
        let text = chrome_trace(&snap);
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
        assert_eq!(text.matches("\"ph\": \"X\"").count(), 1);
        assert_eq!(text.matches("\"ph\": \"i\"").count(), 2);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn live_snapshot_round_trips() {
        drop(crate::span("export.test.chrome"));
        let text = chrome_trace(&crate::snapshot());
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
        assert!(text.contains("export.test.chrome"));
    }
}
