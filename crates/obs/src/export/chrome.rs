//! Chrome trace-event JSON from the span ring buffer.
//!
//! The output follows the Trace Event Format's JSON-object form: a
//! top-level `"traceEvents"` array of complete (`"ph": "X"`) events, one
//! per ring-buffer span, with microsecond `ts`/`dur` — exactly what
//! Perfetto and `chrome://tracing` open directly. Aggregate-only data
//! (counters, per-name span totals) has no timeline and is summarized in
//! `"otherData"` instead.

use super::json_escape;
use crate::Snapshot;
use std::fmt::Write as _;

/// Renders the snapshot's span timeline as Chrome trace-event JSON.
///
/// Every ring-buffer event becomes one complete event: `ts` is the span's
/// start in microseconds since the process span epoch, `dur` its duration,
/// `pid` is always 1 (one process), and `tid` is the recorder's stable
/// small thread id. The ring keeps only the most recent 1024 spans
/// (drop-oldest); `otherData.spans_dropped` reports how many earlier
/// events were evicted before this export.
#[must_use]
pub fn chrome_trace(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"traceEvents\": [");
    for (i, e) in snapshot.span_events.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            if i == 0 { "" } else { "," },
            json_escape(&e.name),
            e.start_us,
            e.dur_us,
            e.tid
        );
    }
    if !snapshot.span_events.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"spans_dropped\": \"{}\"}}\n}}\n",
        snapshot.counter("obs.spans_dropped").unwrap_or(0)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEventSnapshot, Snapshot};

    fn empty() -> Snapshot {
        Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: Vec::new(),
        }
    }

    #[test]
    fn empty_snapshot_is_valid_and_has_empty_array() {
        let text = chrome_trace(&empty());
        assert!(text.contains("\"traceEvents\": []"));
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
    }

    #[test]
    fn events_become_complete_trace_events() {
        let mut snap = empty();
        snap.span_events = vec![
            SpanEventSnapshot {
                name: "alpha".into(),
                start_us: 10,
                dur_us: 5,
                tid: 1,
            },
            SpanEventSnapshot {
                name: "beta \"quoted\"".into(),
                start_us: 20,
                dur_us: 7,
                tid: 2,
            },
        ];
        let text = chrome_trace(&snap);
        // Parses as JSON and carries both events with the X phase.
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
        assert_eq!(text.matches("\"ph\": \"X\"").count(), 2);
        assert!(text.contains("\"name\": \"alpha\""));
        assert!(text.contains("beta \\\"quoted\\\""));
        assert!(text.contains("\"ts\": 10"));
        assert!(text.contains("\"dur\": 7"));
        assert!(text.contains("\"tid\": 2"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn live_snapshot_round_trips() {
        drop(crate::span("export.test.chrome"));
        let text = chrome_trace(&crate::snapshot());
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        drop(value);
        assert!(text.contains("export.test.chrome"));
    }
}
