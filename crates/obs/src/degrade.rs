//! The shared unusable-artifact degradation contract.
//!
//! Every optional artifact flag (`--metrics`, `--trace`, `--flight`,
//! `--dossier-dir`, `--cache`, `--checkpoint`, `--serve`) degrades the
//! same way when its path or address is unusable: the run continues and
//! produces results normally, a `warning: <artifact> disabled: <error>`
//! line goes to stderr, the `obs.degraded_artifacts` counter is bumped,
//! and the process exits with code [`EXIT_CODE`] *after* results print —
//! so a batch caller notices the missing artifact without losing the
//! computation. Both binaries funnel every such flag through one
//! [`Artifacts`] ledger instead of hand-rolling the warn/remember/exit
//! dance per flag.

/// Exit code for a run whose results are intact but one or more
/// requested artifacts could not be produced.
pub const EXIT_CODE: u8 = 2;

/// Accumulates unusable-artifact degradations over a process lifetime.
#[derive(Debug, Default)]
pub struct Artifacts {
    degraded: Vec<String>,
}

impl Artifacts {
    /// An empty ledger.
    #[must_use]
    pub const fn new() -> Artifacts {
        Artifacts {
            degraded: Vec::new(),
        }
    }

    /// Applies the degradation contract to one artifact installation
    /// attempt: `Ok` passes the value through; `Err` warns to stderr
    /// (`warning: <what> disabled: <error>`), bumps
    /// `obs.degraded_artifacts`, records the failure, and returns
    /// `None` — the run proceeds without the artifact.
    pub fn install<T, E: std::fmt::Display>(
        &mut self,
        what: &str,
        result: Result<T, E>,
    ) -> Option<T> {
        match result {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("warning: {what} disabled: {e}");
                crate::global().counter("obs.degraded_artifacts").inc();
                self.degraded.push(format!("{what} disabled: {e}"));
                None
            }
        }
    }

    /// Whether any artifact degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// The recorded degradations, in occurrence order.
    #[must_use]
    pub fn degraded(&self) -> &[String] {
        &self.degraded
    }

    /// The deferred exit code: [`EXIT_CODE`] if anything degraded, else
    /// `ok`. Binaries call this after printing results.
    #[must_use]
    pub fn exit_code(&self, ok: u8) -> u8 {
        if self.is_degraded() {
            EXIT_CODE
        } else {
            ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_passes_through_without_degrading() {
        let mut a = Artifacts::new();
        assert_eq!(a.install::<u32, String>("result cache", Ok(7)), Some(7));
        assert!(!a.is_degraded());
        assert_eq!(a.exit_code(0), 0);
        assert_eq!(a.exit_code(3), 3);
    }

    #[test]
    fn err_warns_counts_and_defers_exit_2() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        let before = crate::global().counter("obs.degraded_artifacts").get();
        let mut a = Artifacts::new();
        let got: Option<u32> = a.install("flight event log", Err("denied".to_owned()));
        assert_eq!(got, None);
        let _: Option<u32> = a.install("result cache", Err("read-only".to_owned()));
        assert!(a.is_degraded());
        assert_eq!(a.degraded().len(), 2);
        assert!(a.degraded()[0].contains("flight event log disabled: denied"));
        assert_eq!(a.exit_code(0), 2);
        // Degradation outranks the "mismatched" exit code too.
        assert_eq!(a.exit_code(1), 2);
        #[cfg(feature = "enabled")]
        assert_eq!(
            crate::global().counter("obs.degraded_artifacts").get(),
            before + 2
        );
        #[cfg(not(feature = "enabled"))]
        let _ = before;
    }
}
