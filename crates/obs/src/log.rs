//! A minimal leveled stderr logger for the workspace binaries.
//!
//! Three levels: `Quiet` (status lines suppressed), `Info` (the default
//! — what the binaries printed before this crate existed), and `Debug`.
//! Error/usage output in the binaries intentionally bypasses the logger
//! (plain `eprintln!`), so `--quiet` can never swallow a failure message
//! and exit-code behavior is unchanged.
//!
//! Always compiled (not gated on the `enabled` feature): logging is part
//! of the binaries' user interface, not of metric collection.

use std::sync::atomic::{AtomicU8, Ordering};

/// Logger verbosity, ordered so that `level as u8` comparison works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Suppress status lines (errors still print via plain `eprintln!`).
    Quiet = 0,
    /// Normal status lines (default).
    Info = 1,
    /// Extra diagnostics.
    Debug = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
#[must_use]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `at` would currently be printed.
#[must_use]
pub fn enabled(at: Level) -> bool {
    at <= level() && at != Level::Quiet
}

/// Logs a status line to stderr at `Info` level. Prefer this over raw
/// `eprintln!` for anything `--quiet` should suppress.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs a diagnostic line to stderr at `Debug` level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_correctly() {
        // Serialized against nothing: the only other level-touching test
        // is this one, and the default is restored at the end.
        set_level(Level::Quiet);
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Quiet));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        set_level(Level::Info);
        assert_eq!(level(), Level::Info);
    }
}
