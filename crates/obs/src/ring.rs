//! A drop-oldest bounded ring shared by the span sink and the flight
//! recorder.
//!
//! The capacity is passed to every [`Ring::push`] rather than stored, so
//! one process-wide knob ([`crate::set_ring_capacity`] / `MMR_OBS_RING`)
//! governs all rings and can change at runtime: a push under a smaller
//! capacity first evicts the oldest surviving items (each eviction is
//! reported to the caller so drop counters stay honest), and a push under
//! a larger capacity simply lets the ring grow again.

/// A bounded buffer that keeps the most recent items, oldest evicted
/// first. `pushed` counts every item ever offered so a snapshot can
/// linearize a wrapped ring.
#[derive(Debug)]
pub(crate) struct Ring<T> {
    buf: Vec<T>,
    /// Index the next push overwrites once the ring is full.
    next: usize,
    /// Total items ever pushed.
    pushed: u64,
}

impl<T: Clone> Ring<T> {
    /// An empty ring (const, so it can back a `static Mutex`).
    pub(crate) const fn new() -> Ring<T> {
        Ring {
            buf: Vec::new(),
            next: 0,
            pushed: 0,
        }
    }

    /// Whether the ring has wrapped (physical order differs from
    /// chronological order).
    fn wrapped(&self) -> bool {
        !self.buf.is_empty() && self.pushed > self.buf.len() as u64
    }

    /// Pushes one item under the drop-oldest contract at capacity `cap`
    /// (≥ 1). Returns how many items were evicted by this push: 0 while
    /// filling, 1 per overwrite at steady state, more when the capacity
    /// shrank since the previous push.
    pub(crate) fn push(&mut self, cap: usize, item: T) -> u64 {
        let cap = cap.max(1);
        let mut dropped = 0u64;
        if self.buf.len() > cap || (self.buf.len() < cap && self.wrapped()) {
            // The capacity changed since the last push: linearize to
            // chronological order, evicting the oldest surplus if the
            // ring shrank. `pushed` keeps counting, and a linearized
            // ring reads in order from index 0 (`next` = 0).
            let mut ordered = self.in_order();
            if ordered.len() > cap {
                dropped = (ordered.len() - cap) as u64;
                ordered.drain(..ordered.len() - cap);
            }
            self.buf = ordered;
            self.next = 0;
        }
        if self.buf.len() < cap {
            self.buf.push(item);
        } else {
            dropped += 1;
            let slot = self.next;
            self.buf[slot] = item;
            self.next = (self.next + 1) % cap;
        }
        self.pushed += 1;
        dropped
    }

    /// The ring's contents in chronological order, oldest first.
    pub(crate) fn in_order(&self) -> Vec<T> {
        let start = if self.wrapped() { self.next } else { 0 };
        (0..self.buf.len())
            .map(|i| self.buf[(start + i) % self.buf.len()].clone())
            .collect()
    }

    /// Number of items currently retained.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    /// Drops every retained item (drop counters are the caller's concern;
    /// a clear is a reset, not an eviction).
    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r: Ring<u32> = Ring::new();
        for i in 0..5 {
            assert_eq!(r.push(4, i), u64::from(i >= 4));
        }
        assert_eq!(r.in_order(), vec![1, 2, 3, 4]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn shrink_evicts_oldest_and_stays_ordered() {
        let mut r: Ring<u32> = Ring::new();
        for i in 0..6 {
            r.push(4, i); // wrapped ring holds [2,3,4,5]
        }
        // Shrinking to 2 must evict 2,3 and then overwrite 4.
        assert_eq!(r.push(2, 6), 3);
        assert_eq!(r.in_order(), vec![5, 6]);
    }

    #[test]
    fn grow_after_wrap_keeps_chronological_order() {
        let mut r: Ring<u32> = Ring::new();
        for i in 0..6 {
            r.push(4, i);
        }
        assert_eq!(r.push(8, 6), 0);
        assert_eq!(r.in_order(), vec![2, 3, 4, 5, 6]);
        for i in 7..11 {
            r.push(8, i);
        }
        assert_eq!(r.in_order(), vec![3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn clear_resets() {
        let mut r: Ring<u32> = Ring::new();
        for i in 0..6 {
            r.push(4, i);
        }
        r.clear();
        assert_eq!(r.len(), 0);
        assert!(r.in_order().is_empty());
        r.push(4, 9);
        assert_eq!(r.in_order(), vec![9]);
    }
}
