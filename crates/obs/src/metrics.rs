//! The metrics registry: named atomic counters, gauges, and log₂-bucket
//! histograms with cloneable typed handles.
//!
//! Handles are `Arc`s onto plain atomics; updating one is a relaxed RMW
//! with no lock, so instrumented code can record from any worker thread.
//! The registry itself is only locked to create a handle or to take a
//! [`Snapshot`](crate::Snapshot) — both off every hot path. In builds
//! without the `enabled` feature all of this compiles away: handles are
//! zero-sized, methods are empty, and snapshots are empty.

use serde::{Deserialize, Serialize};

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two.
#[cfg(feature = "enabled")]
const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter (dropped while recording is paused).
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (0 in disabled builds).
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// A gauge: a value that can move both ways (e.g. busy-worker count).
#[derive(Debug, Clone)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge (dropped while recording is paused).
    #[inline]
    pub fn set(&self, value: u64) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.cell.store(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// Raises the gauge to `value` if it is currently lower.
    #[inline]
    pub fn set_max(&self, value: u64) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.cell.fetch_max(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtracts one (saturating at zero is the caller's concern; pairs
    /// of `inc`/`dec` keep it balanced).
    #[inline]
    pub fn dec(&self) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            self.cell.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The current value (0 in disabled builds).
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Bucket `0` holds zeros; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
    buckets: [AtomicU64; BUCKETS],
}

/// A histogram of `u64` samples over power-of-two buckets — cheap enough
/// to record per chunk, coarse enough that 65 atomics cover all of `u64`.
#[derive(Debug, Clone)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Records one sample (dropped while recording is paused).
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "enabled")]
        if crate::recording() {
            let idx = if value == 0 {
                0
            } else {
                64 - value.leading_zeros() as usize
            };
            self.cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.cells.count.fetch_add(1, Ordering::Relaxed);
            self.cells.sum.fetch_add(value, Ordering::Relaxed);
            self.cells.min.fetch_min(value, Ordering::Relaxed);
            self.cells.max.fetch_max(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// Number of recorded samples (0 in disabled builds).
    #[must_use]
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cells.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// A named collection of metrics, snapshottable as one coherent view.
///
/// `const`-constructible so it can back a process-wide `static`
/// ([`crate::global`]); crates keep their own handle structs (built once
/// through [`counter`](Registry::counter) and friends) and never touch the
/// registry lock afterwards.
#[derive(Debug)]
pub struct Registry {
    #[cfg(feature = "enabled")]
    counters: Mutex<Vec<(String, Counter)>>,
    #[cfg(feature = "enabled")]
    gauges: Mutex<Vec<(String, Gauge)>>,
    #[cfg(feature = "enabled")]
    histograms: Mutex<Vec<(String, Histogram)>>,
}

#[cfg(feature = "enabled")]
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub const fn new() -> Registry {
        Registry {
            #[cfg(feature = "enabled")]
            counters: Mutex::new(Vec::new()),
            #[cfg(feature = "enabled")]
            gauges: Mutex::new(Vec::new()),
            #[cfg(feature = "enabled")]
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// The counter named `name`, created on first use. Handles to the same
    /// name share one cell.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        #[cfg(feature = "enabled")]
        {
            let mut entries = lock(&self.counters);
            if let Some((_, c)) = entries.iter().find(|(n, _)| n == name) {
                return c.clone();
            }
            let c = Counter {
                cell: Arc::new(AtomicU64::new(0)),
            };
            entries.push((name.to_owned(), c.clone()));
            c
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Counter {}
        }
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        #[cfg(feature = "enabled")]
        {
            let mut entries = lock(&self.gauges);
            if let Some((_, g)) = entries.iter().find(|(n, _)| n == name) {
                return g.clone();
            }
            let g = Gauge {
                cell: Arc::new(AtomicU64::new(0)),
            };
            entries.push((name.to_owned(), g.clone()));
            g
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Gauge {}
        }
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        #[cfg(feature = "enabled")]
        {
            let mut entries = lock(&self.histograms);
            if let Some((_, h)) = entries.iter().find(|(n, _)| n == name) {
                return h.clone();
            }
            #[allow(clippy::declare_interior_mutable_const)]
            const ZERO: AtomicU64 = AtomicU64::new(0);
            let h = Histogram {
                cells: Arc::new(HistogramCells {
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                    buckets: [ZERO; BUCKETS],
                }),
            };
            entries.push((name.to_owned(), h.clone()));
            h
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Histogram {}
        }
    }

    /// A point-in-time view of every registered metric, sorted by name
    /// (span sections are filled in by [`crate::snapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> crate::Snapshot {
        #[cfg(feature = "enabled")]
        {
            let mut counters: Vec<CounterSnapshot> = lock(&self.counters)
                .iter()
                .map(|(name, c)| CounterSnapshot {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect();
            counters.sort_by(|a, b| a.name.cmp(&b.name));
            let mut gauges: Vec<GaugeSnapshot> = lock(&self.gauges)
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect();
            gauges.sort_by(|a, b| a.name.cmp(&b.name));
            let mut histograms: Vec<HistogramSnapshot> = lock(&self.histograms)
                .iter()
                .map(|(name, h)| snapshot_histogram(name, h))
                .collect();
            histograms.sort_by(|a, b| a.name.cmp(&b.name));
            crate::Snapshot {
                counters,
                gauges,
                histograms,
                spans: Vec::new(),
                span_events: Vec::new(),
                flight_events: None,
            build_info: None,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            crate::Snapshot {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
                spans: Vec::new(),
                span_events: Vec::new(),
                flight_events: None,
            build_info: None,
            }
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

#[cfg(feature = "enabled")]
fn snapshot_histogram(name: &str, h: &Histogram) -> HistogramSnapshot {
    let count = h.cells.count.load(Ordering::Relaxed);
    let min = h.cells.min.load(Ordering::Relaxed);
    HistogramSnapshot {
        name: name.to_owned(),
        count,
        sum: h.cells.sum.load(Ordering::Relaxed),
        min: if count == 0 { 0 } else { min },
        max: h.cells.max.load(Ordering::Relaxed),
        buckets: h
            .cells
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| HistogramBucket {
                    lo: if i == 0 { 0 } else { 1u64 << (i - 1) },
                    count: n,
                })
            })
            .collect(),
    }
}

/// One counter in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One occupied power-of-two bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket (`0`, then powers of two).
    pub lo: u64,
    /// Samples that landed in `[lo, 2 * max(lo, 1))`.
    pub count: u64,
}

/// One histogram in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (wrapping is the caller's concern).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Occupied buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_cell_per_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("g");
        g.set(5);
        g.inc();
        g.dec();
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, u64::MAX);
        let bucket = |lo: u64| hs.buckets.iter().find(|b| b.lo == lo).map(|b| b.count);
        assert_eq!(bucket(0), Some(1)); // 0
        assert_eq!(bucket(1), Some(1)); // 1
        assert_eq!(bucket(2), Some(2)); // 2, 3
        assert_eq!(bucket(4), Some(1)); // 4
        assert_eq!(bucket(512), Some(1)); // 1000
        assert_eq!(bucket(1u64 << 63), Some(1)); // u64::MAX
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        r.gauge("z").set(1);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.gauge("z"), Some(1));
    }

    #[test]
    fn empty_histogram_snapshot_is_well_formed() {
        let r = Registry::new();
        let _ = r.histogram("empty");
        let snap = r.snapshot();
        let hs = snap.histogram("empty").unwrap();
        assert_eq!((hs.count, hs.min, hs.max), (0, 0, 0));
        assert!(hs.buckets.is_empty());
        assert_eq!(hs.mean(), 0.0);
    }
}
