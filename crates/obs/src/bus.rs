//! Process-global broadcast bus: the single fan-out every telemetry
//! consumer subscribes to.
//!
//! Producers publish two message kinds: every [`FlightEvent`] the flight
//! recorder emits, and periodic [`Frame`] snapshots (progress, live RSE,
//! cache hit rate, counter deltas) built at the heartbeat throttle and at
//! sequential-stopping wave boundaries. Consumers come in two classes:
//!
//! * **Sinks** — synchronous in-process callbacks invoked on the
//!   publishing thread, lossless and ordered. The `--flight` disk mirror
//!   and the `--progress` stderr heartbeat are sinks, so there is exactly
//!   one event path from the recorder to every consumer.
//! * **Queues** — bounded per-subscriber buffers with drop-oldest
//!   semantics, drained by their own thread (TCP clients, tests). A slow
//!   or dead queue consumer can never block a worker: publishing into a
//!   full queue evicts the oldest message and bumps `obs.bus.dropped`.
//!
//! Like everything in `obs`, the bus is strictly out-of-band: publishing
//! never feeds back into seeded computation, and a bus with no
//! subscribers costs one relaxed atomic load per publish.

use crate::flight::FlightEvent;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One message on the bus.
#[derive(Debug, Clone, PartialEq)]
pub enum BusMessage {
    /// A flight-recorder event, republished verbatim.
    Event(FlightEvent),
    /// A periodic progress/metrics frame.
    Frame(Frame),
}

/// A periodic snapshot of run progress, built at most once per heartbeat
/// interval (`kind: "heartbeat"`) and at each sequential-stopping wave
/// boundary (`kind: "wave"`). `total` and `rate` are 0 when unknown (wave
/// frames report only the merged trial count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Microseconds since the shared telemetry epoch.
    pub t_us: u64,
    /// Why the frame was emitted: `heartbeat` or `wave`.
    pub kind: String,
    /// The work unit being counted (e.g. `trials`).
    pub label: String,
    /// Work units completed so far.
    pub done: u64,
    /// Requested total work units (0 when unknown).
    pub total: u64,
    /// Work units per second over the run so far (0 when unknown).
    pub rate: f64,
    /// Live RSE published by the most recent stop-predicate wave, if any.
    pub rse: Option<f64>,
    /// Result-cache hits so far.
    pub cache_hits: u64,
    /// Result-cache lookups so far (hits + misses + extends).
    pub cache_lookups: u64,
    /// Per-name counter deltas since the previous published frame — the
    /// "what changed" view a live dashboard tails.
    pub counters_delta: Vec<crate::CounterSnapshot>,
}

/// Counter values at the previous [`Frame::collect`], for delta frames.
static LAST_FRAME_COUNTERS: Mutex<Vec<crate::CounterSnapshot>> = Mutex::new(Vec::new());

impl Frame {
    /// Builds a frame from the current telemetry state: live RSE, cache
    /// counters, and the counter delta since the previous collected
    /// frame. Called at most a few times per second (heartbeat throttle
    /// plus geometric wave boundaries), never per trial.
    #[must_use]
    pub fn collect(kind: &str, label: &str, done: u64, total: u64, rate: f64) -> Frame {
        let snap = crate::global().snapshot();
        let hits = snap.counter("mc.cache.hits").unwrap_or(0);
        let lookups = hits
            + snap.counter("mc.cache.misses").unwrap_or(0)
            + snap.counter("mc.cache.extends").unwrap_or(0);
        let counters_delta = {
            let mut last = LAST_FRAME_COUNTERS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let delta: Vec<crate::CounterSnapshot> = snap
                .counters
                .iter()
                .filter_map(|c| {
                    let before = last
                        .iter()
                        .find(|p| p.name == c.name)
                        .map_or(0, |p| p.value);
                    let d = c.value.saturating_sub(before);
                    (d > 0).then(|| crate::CounterSnapshot {
                        name: c.name.clone(),
                        value: d,
                    })
                })
                .collect();
            *last = snap.counters;
            delta
        };
        Frame {
            t_us: crate::epoch().elapsed().as_micros() as u64,
            kind: kind.to_owned(),
            label: label.to_owned(),
            done,
            total,
            rate,
            rse: crate::progress::live_rse(),
            cache_hits: hits,
            cache_lookups: lookups,
            counters_delta,
        }
    }
}

/// A bounded drop-oldest buffer shared between the bus (producer side)
/// and one [`Subscription`] (consumer side).
struct SubQueue {
    q: Mutex<VecDeque<BusMessage>>,
    cv: Condvar,
    cap: usize,
}

enum Subscriber {
    Queue {
        id: u64,
        queue: Arc<SubQueue>,
    },
    Sink {
        id: u64,
        f: Box<dyn FnMut(&BusMessage) + Send>,
    },
}

impl Subscriber {
    fn id(&self) -> u64 {
        match self {
            Subscriber::Queue { id, .. } | Subscriber::Sink { id, .. } => *id,
        }
    }
}

static SUBSCRIBERS: Mutex<Vec<Subscriber>> = Mutex::new(Vec::new());
/// Total live subscribers (queues + sinks): the cheap "anyone listening?"
/// load every publish starts with.
static TOTAL_SUBS: AtomicUsize = AtomicUsize::new(0);
/// Live queue subscribers only — gates optional frame production.
static QUEUE_SUBS: AtomicUsize = AtomicUsize::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn subscribers() -> std::sync::MutexGuard<'static, Vec<Subscriber>> {
    SUBSCRIBERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cached counter handles (create-on-first-use is lock-bearing).
fn bus_published() -> &'static crate::Counter {
    static C: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::global().counter("obs.bus.published"))
}

fn bus_dropped() -> &'static crate::Counter {
    static C: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| crate::global().counter("obs.bus.dropped"))
}

fn refresh_gauges() {
    let queues = QUEUE_SUBS.load(Ordering::Relaxed) as u64;
    crate::global().gauge("obs.bus.subscribers").set(queues);
}

/// A bounded drop-oldest mailbox of bus messages, detached from the bus
/// when dropped.
pub struct Subscription {
    id: u64,
    queue: Arc<SubQueue>,
}

impl Subscription {
    /// Pops the oldest queued message without waiting.
    #[must_use]
    pub fn try_recv(&self) -> Option<BusMessage> {
        self.queue
            .q
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
    }

    /// Pops the oldest queued message, waiting up to `timeout` for one
    /// to arrive.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<BusMessage> {
        let guard = self
            .queue
            .q
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (mut guard, _) = self
            .queue
            .cv
            .wait_timeout_while(guard, timeout, |q| q.is_empty())
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.pop_front()
    }

    /// Drains everything currently queued, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<BusMessage> {
        self.queue
            .q
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        detach(self.id, true);
    }
}

/// Subscribes a bounded drop-oldest queue of `capacity` messages
/// (clamped to ≥ 1). The subscription detaches itself when dropped.
#[must_use]
pub fn subscribe(capacity: usize) -> Subscription {
    let queue = Arc::new(SubQueue {
        q: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        cap: capacity.max(1),
    });
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    subscribers().push(Subscriber::Queue {
        id,
        queue: Arc::clone(&queue),
    });
    TOTAL_SUBS.fetch_add(1, Ordering::Relaxed);
    QUEUE_SUBS.fetch_add(1, Ordering::Relaxed);
    refresh_gauges();
    Subscription { id, queue }
}

/// Installs a synchronous sink called on the publishing thread for every
/// message (lossless, in publish order). Returns an id for
/// [`remove_sink`]. Sinks must be fast and must never emit flight events
/// (the recorder publishes while holding its own lock).
pub(crate) fn install_sink(f: Box<dyn FnMut(&BusMessage) + Send>) -> u64 {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    subscribers().push(Subscriber::Sink { id, f });
    TOTAL_SUBS.fetch_add(1, Ordering::Relaxed);
    id
}

/// Removes a sink installed by [`install_sink`] (no-op for unknown ids).
pub(crate) fn remove_sink(id: u64) {
    detach(id, false);
}

fn detach(id: u64, is_queue: bool) {
    let mut subs = subscribers();
    let before = subs.len();
    subs.retain(|s| s.id() != id);
    if subs.len() < before {
        TOTAL_SUBS.fetch_sub(1, Ordering::Relaxed);
        if is_queue {
            QUEUE_SUBS.fetch_sub(1, Ordering::Relaxed);
            refresh_gauges();
        }
    }
}

/// Whether any subscriber (queue or sink) is attached.
#[must_use]
pub fn has_subscribers() -> bool {
    TOTAL_SUBS.load(Ordering::Relaxed) > 0
}

/// The number of attached queue subscribers (TCP clients, tests) — the
/// gate for optional frame production.
#[must_use]
pub fn queue_subscribers() -> usize {
    QUEUE_SUBS.load(Ordering::Relaxed)
}

/// Publishes a flight event to every subscriber. Called by the flight
/// recorder under its sink lock, so sinks observe events in sequence
/// order.
pub fn publish_event(ev: &FlightEvent) {
    if !has_subscribers() {
        return;
    }
    publish(&BusMessage::Event(ev.clone()));
}

/// Publishes a progress frame to every subscriber.
pub fn publish_frame(frame: Frame) {
    if !has_subscribers() {
        return;
    }
    publish(&BusMessage::Frame(frame));
}

fn publish(msg: &BusMessage) {
    let mut dropped = 0u64;
    {
        let mut subs = subscribers();
        for sub in subs.iter_mut() {
            match sub {
                Subscriber::Sink { f, .. } => f(msg),
                Subscriber::Queue { queue, .. } => {
                    let mut q = queue
                        .q
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    while q.len() >= queue.cap {
                        let _ = q.pop_front();
                        dropped += 1;
                    }
                    q.push_back(msg.clone());
                    drop(q);
                    queue.cv.notify_one();
                }
            }
        }
    }
    bus_published().inc();
    if dropped > 0 {
        bus_dropped().add(dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_event(kind: &'static str) {
        crate::flight::event(kind).emit();
    }

    #[test]
    fn queue_subscriber_receives_published_events() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::flight::set_flight_recording(true);
        let sub = subscribe(16);
        test_event("bus_test_a");
        test_event("bus_test_b");
        let got = sub.drain();
        let kinds: Vec<String> = got
            .iter()
            .filter_map(|m| match m {
                BusMessage::Event(e) => Some(e.kind.clone()),
                BusMessage::Frame(_) => None,
            })
            .collect();
        #[cfg(feature = "enabled")]
        assert_eq!(kinds, vec!["bus_test_a", "bus_test_b"]);
        #[cfg(not(feature = "enabled"))]
        assert!(kinds.is_empty());
    }

    #[test]
    fn full_queue_drops_oldest_and_counts() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::flight::set_flight_recording(true);
        let sub = subscribe(2);
        let before = crate::global().counter("obs.bus.dropped").get();
        for _ in 0..5 {
            test_event("bus_overflow");
        }
        let got = sub.drain();
        #[cfg(feature = "enabled")]
        {
            // Capacity 2, five published: the three oldest were evicted.
            assert_eq!(got.len(), 2);
            assert_eq!(crate::global().counter("obs.bus.dropped").get(), before + 3);
            // Drop-oldest: the survivors are the two newest.
            let seqs: Vec<u64> = got
                .iter()
                .filter_map(|m| match m {
                    BusMessage::Event(e) => Some(e.seq),
                    BusMessage::Frame(_) => None,
                })
                .collect();
            assert!(seqs[0] < seqs[1]);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = before;
            assert!(got.is_empty());
        }
    }

    #[test]
    fn dropping_subscription_detaches() {
        let _g = crate::test_ring_lock();
        let before = queue_subscribers();
        let sub = subscribe(4);
        assert_eq!(queue_subscribers(), before + 1);
        drop(sub);
        assert_eq!(queue_subscribers(), before);
    }

    #[test]
    fn sink_sees_messages_in_order_and_removes() {
        let _g = crate::test_ring_lock();
        crate::set_recording(true);
        crate::flight::set_flight_recording(true);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let id = install_sink(Box::new(move |msg| {
            if let BusMessage::Event(e) = msg {
                seen2.lock().unwrap().push(e.kind.clone());
            }
        }));
        test_event("bus_sink_a");
        test_event("bus_sink_b");
        remove_sink(id);
        test_event("bus_sink_c");
        let got = seen.lock().unwrap().clone();
        #[cfg(feature = "enabled")]
        assert_eq!(got, vec!["bus_sink_a", "bus_sink_b"]);
        #[cfg(not(feature = "enabled"))]
        assert!(got.is_empty());
    }

    #[test]
    fn frames_flow_to_queues_and_serialize() {
        let _g = crate::test_ring_lock();
        let sub = subscribe(4);
        let frame = Frame::collect("heartbeat", "trials", 10, 100, 123.0);
        publish_frame(frame.clone());
        let json = serde_json::to_string(&frame).unwrap();
        let back: Frame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, frame);
        match sub.recv_timeout(Duration::from_millis(100)) {
            Some(BusMessage::Frame(f)) => assert_eq!(f, frame),
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
