//! The flight recorder: a bounded in-memory timeline of typed structured
//! events, an optional CRC-framed on-disk mirror, and crash dossiers.
//!
//! Where the metrics registry *counts* what happened, the flight recorder
//! *orders* it: every notable step of a run — a chunk claimed, a fault
//! fired, a retry backed off, a convergence wave decided, a cache tier
//! answering — is appended as one [`FlightEvent`] to a process-global
//! drop-oldest ring (capacity shared with the span ring via
//! [`crate::set_ring_capacity`] / `MMR_OBS_RING`; evictions count into
//! `obs.flight_dropped`). Recording follows the same contract as
//! [`crate::set_recording`]: compiled out without the `enabled` feature,
//! pausable at runtime, and additionally gated by
//! [`set_flight_recording`] so the recorder's own overhead can be
//! measured in isolation. Emission never touches an RNG stream; seeded
//! results are bit-identical with the recorder on, off, or mirrored.
//!
//! # Event taxonomy
//!
//! | kind | payload | emitted by |
//! |---|---|---|
//! | `run_start` | `n` = trials requested (`detail` = `"resume"` for cache-resumed runs) | runner |
//! | `run_end` | `n` = trials completed, `detail` = `ok`/`degraded`/`truncated`/`degraded+truncated` | runner |
//! | `chunk_claimed` | `chunk` | runner |
//! | `chunk_retried` | `chunk`, `attempt` | runner |
//! | `chunk_abandoned` | `chunk`, `attempt` | runner |
//! | `chunk_failed` | `chunk`, `attempt` (retries exhausted, run fails) | runner |
//! | `watchdog_requeue` | `n` = scatter-local index requeued | pool |
//! | `fault_fired` | `chunk`, `attempt`, `detail` = `panic`/`stall`/`corruption`/`torn_write` | fault plan |
//! | `backoff_slept` | `chunk`, `attempt`, `n` = µs | runner |
//! | `wave_decided` | `n` = trials merged, `value` = RSE, `detail` = `converged`/`continue` | stop predicate |
//! | `request` | `detail` = full canonical request key | cache seam |
//! | `cache_hit` / `cache_extend` / `cache_miss` | `detail` = key, `n` = prefix chunks (extend) | store |
//! | `cache_compacted` | `n` = records kept | store |
//! | `journal_append` | `detail` = experiment id | checkpoint journal |
//! | `journal_torn_tail` | `n` = bytes kept | checkpoint journal |
//!
//! # On-disk framing
//!
//! [`mirror_to`] appends each event as one `MMRE 1 <crc:08x> <json>` line
//! — the PR 6/PR 8 framing discipline: the CRC32 (zlib polynomial) covers
//! `"<version> <json>"`, a torn tail truncates to the longest valid
//! prefix on read ([`parse_log`]), and well-framed lines of an unknown
//! version are skipped, not fatal.
//!
//! # Crash dossiers
//!
//! [`write_dossier`] bundles the last events, the full metrics
//! [`Snapshot`](crate::Snapshot), a fault-ledger delta, and the request
//! key into one atomically written JSON file under the directory
//! installed by [`set_dossier_dir`] — the runner and the experiment
//! harness call it on panic, degradation, and deadline truncation so any
//! failed run is post-mortem-debuggable from artifacts alone.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded flight event. Flat by design (`Option` payload fields a
/// kind does not use stay `None`) so the schema is forward-compatible:
/// a reader tolerates fields it does not know and kinds it has never
/// seen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Emission order within the process, 1-based, gap-free at the
    /// recorder (gaps in a snapshot mean the ring evicted events).
    pub seq: u64,
    /// Microseconds since the process observability epoch (shared with
    /// span timestamps, so traces interleave).
    pub t_us: u64,
    /// Small stable id of the emitting thread (same lane ids as spans).
    pub tid: u64,
    /// Event kind (see the module-level taxonomy).
    pub kind: String,
    /// Chunk index, for per-chunk events.
    pub chunk: Option<u64>,
    /// Attempt number, for retry-path events.
    pub attempt: Option<u64>,
    /// A count: trials for run/wave events, microseconds for backoffs,
    /// prefix chunks for cache extensions, bytes for torn tails.
    pub n: Option<u64>,
    /// A measurement (the RSE for `wave_decided`).
    pub value: Option<f64>,
    /// Free-form qualifier: fault/fate labels, request keys, ids.
    pub detail: Option<String>,
}

/// Builder returned by [`event`]; populate the payload fields that apply
/// and [`emit`](EventBuilder::emit).
#[derive(Debug)]
#[must_use = "an event does nothing until .emit()"]
pub struct EventBuilder {
    kind: &'static str,
    chunk: Option<u64>,
    attempt: Option<u64>,
    n: Option<u64>,
    value: Option<f64>,
    detail: Option<String>,
}

/// Starts building a flight event of the given kind.
pub fn event(kind: &'static str) -> EventBuilder {
    EventBuilder {
        kind,
        chunk: None,
        attempt: None,
        n: None,
        value: None,
        detail: None,
    }
}

impl EventBuilder {
    /// Sets the chunk index.
    pub fn chunk(mut self, chunk: u64) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Sets the attempt number.
    pub fn attempt(mut self, attempt: u32) -> Self {
        self.attempt = Some(u64::from(attempt));
        self
    }

    /// Sets the count payload.
    pub fn n(mut self, n: u64) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the measurement payload. Non-finite values are dropped (the
    /// field stays `None`) so every serialization of the event is valid
    /// JSON.
    pub fn value(mut self, value: f64) -> Self {
        self.value = value.is_finite().then_some(value);
        self
    }

    /// Sets the free-form qualifier.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Records the event into the ring and publishes it on the broadcast
    /// bus (the single event path the disk mirror and TCP clients
    /// subscribe to). A no-op unless both the master recording switch
    /// and the flight switch are on; always a no-op in builds without
    /// the `enabled` feature.
    pub fn emit(self) {
        if !recording() {
            return;
        }
        let t_us = crate::epoch().elapsed().as_micros() as u64;
        let tid = crate::current_tid();
        let dropped = {
            let mut sink = lock();
            sink.seq += 1;
            let ev = FlightEvent {
                seq: sink.seq,
                t_us,
                tid,
                kind: self.kind.to_owned(),
                chunk: self.chunk,
                attempt: self.attempt,
                n: self.n,
                value: self.value,
                detail: self.detail,
            };
            // Published under the sink lock so every subscriber —
            // including the lossless disk-mirror sink — observes events
            // in sequence order.
            crate::bus::publish_event(&ev);
            sink.ring.push(crate::ring_capacity(), ev)
        };
        if dropped > 0 {
            flight_dropped().add(dropped);
        }
    }
}

/// Runtime switch for the flight recorder alone (both this and the
/// master [`crate::set_recording`] switch must be on to record).
static FLIGHT_RECORDING: AtomicBool = AtomicBool::new(true);

/// Pauses (`false`) or resumes (`true`) flight-event recording without
/// touching metric/span collection — the seam the recorder-overhead
/// benchmark toggles. Purely observational.
pub fn set_flight_recording(on: bool) {
    FLIGHT_RECORDING.store(on, Ordering::Relaxed);
}

/// Whether flight events are currently being recorded.
#[must_use]
pub fn recording() -> bool {
    crate::recording() && FLIGHT_RECORDING.load(Ordering::Relaxed)
}

struct FlightSink {
    ring: crate::ring::Ring<FlightEvent>,
    seq: u64,
}

static SINK: Mutex<FlightSink> = Mutex::new(FlightSink {
    ring: crate::ring::Ring::new(),
    seq: 0,
});

/// Bus-sink id of the installed disk mirror, if any.
static MIRROR_SINK: Mutex<Option<u64>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, FlightSink> {
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cached handle onto the ring-eviction counter.
fn flight_dropped() -> &'static crate::Counter {
    static DROPPED: std::sync::OnceLock<crate::Counter> = std::sync::OnceLock::new();
    DROPPED.get_or_init(|| crate::global().counter("obs.flight_dropped"))
}

/// The retained events, oldest first.
#[must_use]
pub fn events() -> Vec<FlightEvent> {
    lock().ring.in_order()
}

/// Empties the ring (the sequence counter keeps running). For tests and
/// benchmarks that need a clean timeline; a clear is not an eviction, so
/// `obs.flight_dropped` is untouched.
pub fn clear() {
    lock().ring.clear();
}

/// Mirrors every subsequent event to `path` as CRC-framed `MMRE` lines
/// (appending; an existing log grows). Returns the open error if the
/// path is unusable — callers degrade to ring-only recording.
///
/// # Errors
///
/// Any error opening `path` for append.
pub fn mirror_to(path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    let mut guard = MIRROR_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(old) = guard.take() {
        crate::bus::remove_sink(old);
    }
    // The mirror is an ordinary bus subscriber: a synchronous sink, so
    // it stays lossless and sequence-ordered (events are published under
    // the recorder lock), while remote clients ride bounded queues.
    let id = crate::bus::install_sink(Box::new(move |msg| {
        if let crate::bus::BusMessage::Event(ev) = msg {
            if let Some(line) = frame_line(ev) {
                // Best-effort: a mirror that starts failing mid-run
                // must not take the run down with it.
                let _ = file.write_all(line.as_bytes());
            }
        }
    }));
    *guard = Some(id);
    Ok(())
}

/// Stops mirroring (the ring keeps recording).
pub fn unmirror() {
    let old = MIRROR_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(id) = old {
        crate::bus::remove_sink(id);
    }
}

/// Frame tag opening every flight-log line.
const TAG: &str = "MMRE";
/// Flight-log frame version.
const VERSION: u32 = 1;

/// Frames one serialized event as an `MMRE` line (with trailing newline).
fn frame(json: &str) -> String {
    let crc = crc32(format!("{VERSION} {json}").as_bytes());
    format!("{TAG} {VERSION} {crc:08x} {json}\n")
}

/// Frames one event as its on-disk/on-wire `MMRE` line — what the disk
/// mirror appends and `GET /events` streams. `None` if serialization
/// fails (it never does for recorder-built events).
#[must_use]
pub(crate) fn frame_line(ev: &FlightEvent) -> Option<String> {
    serde_json::to_string(ev).ok().map(|json| frame(&json))
}

/// CRC-32 (zlib polynomial, reflected, init/xorout `0xFFFFFFFF`) — the
/// same checksum the checkpoint journal and cache segments use, computed
/// here so `obs` stays dependency-free.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What [`parse_log`] recovered from a flight log.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLog {
    /// Events of the longest valid prefix, in log order.
    pub events: Vec<FlightEvent>,
    /// Whether a torn or corrupt tail was truncated.
    pub torn: bool,
    /// Well-framed lines of an unknown frame version, skipped.
    pub skipped: usize,
}

/// Parses a flight log: keeps the longest prefix of CRC-valid `MMRE`
/// lines, skips well-framed lines of an unknown version, and truncates
/// at the first torn or corrupt line (`torn` reports that).
#[must_use]
pub fn parse_log(text: &str) -> ParsedLog {
    let mut parsed = ParsedLog {
        events: Vec::new(),
        torn: false,
        skipped: 0,
    };
    let mut rest = text;
    while !rest.is_empty() {
        let Some((line, tail)) = rest.split_once('\n') else {
            // Data without a terminating newline is a torn write.
            parsed.torn = true;
            return parsed;
        };
        match parse_line(line) {
            Line::Event(ev) => parsed.events.push(ev),
            Line::UnknownVersion => parsed.skipped += 1,
            Line::Torn => {
                parsed.torn = true;
                return parsed;
            }
        }
        rest = tail;
    }
    parsed
}

enum Line {
    Event(FlightEvent),
    UnknownVersion,
    Torn,
}

fn parse_line(line: &str) -> Line {
    let Some(rest) = line.strip_prefix("MMRE ") else {
        return Line::Torn;
    };
    let Some((version, rest)) = rest.split_once(' ') else {
        return Line::Torn;
    };
    let Some((crc_hex, json)) = rest.split_once(' ') else {
        return Line::Torn;
    };
    let Ok(expected) = u32::from_str_radix(crc_hex, 16) else {
        return Line::Torn;
    };
    if crc32(format!("{version} {json}").as_bytes()) != expected {
        return Line::Torn;
    }
    if version != "1" {
        return Line::UnknownVersion;
    }
    match serde_json::from_str::<FlightEvent>(json) {
        Ok(ev) => Line::Event(ev),
        Err(_) => Line::Torn,
    }
}

/// The canonical key of the request currently being served, published by
/// the cache seam so crash dossiers can attribute a failure to its exact
/// request even though the runner never sees the key.
static CURRENT_REQUEST: Mutex<Option<String>> = Mutex::new(None);

/// Publishes (or clears, with `None`) the canonical request key of the
/// run now in flight.
pub fn set_current_request(key: Option<&str>) {
    *CURRENT_REQUEST
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = key.map(str::to_owned);
}

/// The most recently published request key, if any.
#[must_use]
pub fn current_request() -> Option<String> {
    CURRENT_REQUEST
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Directory crash dossiers are written to (none installed by default).
static DOSSIER_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Per-process dossier sequence number (part of the file name).
static DOSSIER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Installs `dir` as the crash-dossier directory, creating it and
/// probing writability so an unusable path surfaces here (the flag
/// layer's warning + exit-2 contract) instead of at crash time.
///
/// # Errors
///
/// Any error creating the directory or writing the probe file.
pub fn set_dossier_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let probe = dir.join(".mmre-probe");
    std::fs::write(&probe, b"probe")?;
    let _ = std::fs::remove_file(&probe);
    *DOSSIER_DIR.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
        Some(dir.to_path_buf());
    Ok(())
}

/// Uninstalls the dossier directory.
pub fn clear_dossier_dir() {
    *DOSSIER_DIR.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

fn dossier_dir() -> Option<PathBuf> {
    DOSSIER_DIR
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// One crash dossier: everything needed to reconstruct a failed run
/// from artifacts alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dossier {
    /// Why the dossier was written (`worker_panicked`, `degraded`,
    /// `deadline_truncated`, `experiment_panicked`, …).
    pub reason: String,
    /// The canonical request key of the failed run, when known.
    pub request: Option<String>,
    /// Fault-ledger delta over the failed run, as `name: count` pairs.
    pub fault_delta: Value,
    /// The full metrics snapshot at dossier time.
    pub snapshot: crate::Snapshot,
    /// The last flight events still in the ring, oldest first.
    pub events: Vec<FlightEvent>,
    /// Build metadata of the producing binary (`Option` so dossiers
    /// written before it existed still deserialize).
    pub build: Option<crate::BuildInfo>,
}

/// Writes a crash dossier (atomically: tmp + rename) into the installed
/// dossier directory. Returns `Ok(None)` when no directory is installed
/// — emission sites call this unconditionally and stay silent by
/// default.
///
/// # Errors
///
/// Any error serializing or writing the dossier file.
pub fn write_dossier(
    reason: &str,
    request: Option<&str>,
    fault_delta: &[(&str, u64)],
) -> std::io::Result<Option<PathBuf>> {
    let Some(dir) = dossier_dir() else {
        return Ok(None);
    };
    let delta = Value::Object(
        fault_delta
            .iter()
            .map(|&(name, count)| (name.to_owned(), Value::Number(serde::Number::U(count))))
            .collect(),
    );
    let dossier = Dossier {
        reason: reason.to_owned(),
        request: request.map(str::to_owned),
        fault_delta: delta,
        snapshot: crate::snapshot(),
        events: events(),
        build: crate::build_info(),
    };
    let json = serde_json::to_string_pretty(&dossier)
        .map_err(|e| std::io::Error::other(format!("dossier serialization failed: {e:?}")))?;
    let slug: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let seq = DOSSIER_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!("dossier-{}-{seq:03}-{slug}.json", std::process::id());
    let path = dir.join(&name);
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, &path)?;
    Ok(Some(path))
}

/// Event kinds that are deterministic run payload: equal between a
/// chaos run and its fault-free twin whenever recovery succeeded.
/// Everything else (faults, retries, requeues, cache/journal traffic)
/// is incident reporting, compared only informationally by
/// [`diff_logs`].
#[must_use]
pub fn is_payload(ev: &FlightEvent) -> bool {
    matches!(ev.kind.as_str(), "request" | "run_start" | "run_end" | "wave_decided")
}

fn fmt_t(t_us: u64) -> String {
    if t_us < 1_000 {
        format!("{t_us}us")
    } else {
        format!("{:.1}ms", t_us as f64 / 1_000.0)
    }
}

fn fmt_payload(ev: &FlightEvent) -> String {
    let mut out = String::new();
    if let Some(c) = ev.chunk {
        let _ = write!(out, " chunk={c}");
    }
    if let Some(a) = ev.attempt {
        let _ = write!(out, " attempt={a}");
    }
    if let Some(n) = ev.n {
        let _ = write!(out, " n={n}");
    }
    if let Some(v) = ev.value {
        let _ = write!(out, " value={v:.4e}");
    }
    if let Some(d) = &ev.detail {
        let _ = write!(out, " {d}");
    }
    out
}

/// Renders the chronological timeline plus per-chunk retry/requeue
/// causality chains — the `inspect` view of a flight log.
#[must_use]
pub fn render_timeline(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "flight timeline: {} events", events.len());
    for ev in events {
        let _ = writeln!(
            out,
            "  {:>10}  t{:<3} {:<18}{}",
            fmt_t(ev.t_us),
            ev.tid,
            ev.kind,
            fmt_payload(ev)
        );
    }
    // Per-chunk causality: every chunk that saw an incident, with its
    // ordered chain of events and its fate.
    let mut chunks: Vec<u64> = events.iter().filter_map(|e| e.chunk).collect();
    chunks.sort_unstable();
    chunks.dedup();
    let mut clean = 0usize;
    let mut chains: Vec<String> = Vec::new();
    for c in chunks {
        let evs: Vec<&FlightEvent> = events.iter().filter(|e| e.chunk == Some(c)).collect();
        let incident = evs.iter().any(|e| e.kind != "chunk_claimed");
        if !incident {
            clean += 1;
            continue;
        }
        let fate = if evs.iter().any(|e| e.kind == "chunk_failed") {
            "failed"
        } else if evs.iter().any(|e| e.kind == "chunk_abandoned") {
            "abandoned"
        } else {
            "recovered"
        };
        let steps: Vec<String> = evs
            .iter()
            .map(|e| match e.kind.as_str() {
                "chunk_claimed" => format!("claimed @{}", fmt_t(e.t_us)),
                "fault_fired" => format!(
                    "fault {} (attempt {})",
                    e.detail.as_deref().unwrap_or("?"),
                    e.attempt.unwrap_or(0)
                ),
                "backoff_slept" => format!("backoff {}us", e.n.unwrap_or(0)),
                "chunk_retried" => format!("retry #{}", e.attempt.unwrap_or(0)),
                "chunk_abandoned" => format!("abandoned (attempt {})", e.attempt.unwrap_or(0)),
                "chunk_failed" => format!("failed (attempt {})", e.attempt.unwrap_or(0)),
                k => format!("{k} @{}", fmt_t(e.t_us)),
            })
            .collect();
        chains.push(format!("  chunk {c}: {} -> {fate}", steps.join(" -> ")));
    }
    if !chains.is_empty() || clean > 0 {
        let _ = writeln!(out, "per-chunk causality:");
        for chain in &chains {
            let _ = writeln!(out, "{chain}");
        }
        let _ = writeln!(out, "  clean chunks: {clean} claimed without incident");
    }
    out
}

/// Renders the event-type histogram, most frequent first.
#[must_use]
pub fn render_histogram(events: &[FlightEvent]) -> String {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for ev in events {
        match counts.iter_mut().find(|(k, _)| *k == ev.kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((ev.kind.clone(), 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut out = String::new();
    let _ = writeln!(out, "event histogram ({} events):", events.len());
    for (kind, n) in counts {
        let _ = writeln!(out, "  {n:>6}  {kind}");
    }
    out
}

/// Renders the convergence trajectory: one row per `wave_decided`
/// event, trials vs RSE, with the stop decision.
#[must_use]
pub fn render_convergence(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    let waves: Vec<&FlightEvent> =
        events.iter().filter(|e| e.kind == "wave_decided").collect();
    if waves.is_empty() {
        let _ = writeln!(out, "convergence trajectory: no wave decisions recorded");
        return out;
    }
    let _ = writeln!(out, "convergence trajectory ({} waves):", waves.len());
    for (i, w) in waves.iter().enumerate() {
        let _ = writeln!(
            out,
            "  wave {:>3}: n={:<10} rse={:<12} {}",
            i + 1,
            w.n.unwrap_or(0),
            w.value.map_or_else(|| "?".to_owned(), |v| format!("{v:.4e}")),
            w.detail.as_deref().unwrap_or("")
        );
    }
    out
}

/// What [`diff_logs`] found comparing two event streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogDiff {
    /// Positions where the payload sequences disagree (plus any length
    /// difference). Zero means the runs computed identically.
    pub payload_divergences: usize,
    /// Payload events in each stream.
    pub payload_a: usize,
    /// Payload events in the second stream.
    pub payload_b: usize,
    /// Incident (non-payload) events in each stream.
    pub incidents_a: usize,
    /// Incident events in the second stream.
    pub incidents_b: usize,
    /// Human-readable descriptions of the first few divergences.
    pub first_divergences: Vec<String>,
}

/// Compares two flight logs — typically a chaos run against its
/// fault-free twin. Payload events ([`is_payload`]) are compared as an
/// ordered sequence with timestamps, thread ids, and sequence numbers
/// ignored; incident events are only counted. A recovered chaos run
/// diverges in zero payload positions.
#[must_use]
pub fn diff_logs(a: &[FlightEvent], b: &[FlightEvent]) -> LogDiff {
    // Everything except emission metadata: the deterministic payload.
    let key = |e: &FlightEvent| {
        (
            e.kind.clone(),
            e.chunk,
            e.attempt,
            e.n,
            e.value.map(f64::to_bits),
            e.detail.clone(),
        )
    };
    let pa: Vec<&FlightEvent> = a.iter().filter(|e| is_payload(e)).collect();
    let pb: Vec<&FlightEvent> = b.iter().filter(|e| is_payload(e)).collect();
    let mut divergences = pa.len().abs_diff(pb.len());
    let mut first: Vec<String> = Vec::new();
    for (i, (ea, eb)) in pa.iter().zip(&pb).enumerate() {
        if key(ea) != key(eb) {
            divergences += 1;
            if first.len() < 5 {
                first.push(format!(
                    "#{i}: {}{}  vs  {}{}",
                    ea.kind,
                    fmt_payload(ea),
                    eb.kind,
                    fmt_payload(eb)
                ));
            }
        }
    }
    if pa.len() != pb.len() && first.len() < 5 {
        first.push(format!(
            "payload lengths differ: {} vs {}",
            pa.len(),
            pb.len()
        ));
    }
    LogDiff {
        payload_divergences: divergences,
        payload_a: pa.len(),
        payload_b: pb.len(),
        incidents_a: a.len() - pa.len(),
        incidents_b: b.len() - pb.len(),
        first_divergences: first,
    }
}

/// What [`diff_trajectories`] found comparing two convergence
/// trajectories (the `wave_decided` sequences two logs or `/status`
/// captures recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryDiff {
    /// Waves in the first trajectory.
    pub waves_a: usize,
    /// Waves in the second trajectory.
    pub waves_b: usize,
    /// 1-based index of the first wave where the trajectories disagree
    /// (on trial count, RSE bits, or decision), counting a missing wave
    /// in the shorter trajectory as a divergence. `None` when identical.
    pub first_divergence: Option<usize>,
}

/// Compares the convergence trajectories of two event streams: the
/// ordered `wave_decided` sequences, keyed by trial count, RSE bits, and
/// stop decision. This is how a live `/status` capture is checked
/// against a post-hoc flight log: two bit-identical runs diverge at no
/// wave.
#[must_use]
pub fn diff_trajectories(a: &[FlightEvent], b: &[FlightEvent]) -> TrajectoryDiff {
    let waves = |evs: &[FlightEvent]| -> Vec<(Option<u64>, Option<u64>, Option<String>)> {
        evs.iter()
            .filter(|e| e.kind == "wave_decided")
            .map(|e| (e.n, e.value.map(f64::to_bits), e.detail.clone()))
            .collect()
    };
    let wa = waves(a);
    let wb = waves(b);
    let first_divergence = wa
        .iter()
        .zip(&wb)
        .position(|(x, y)| x != y)
        .or_else(|| (wa.len() != wb.len()).then(|| wa.len().min(wb.len())))
        .map(|i| i + 1);
    TrajectoryDiff {
        waves_a: wa.len(),
        waves_b: wb.len(),
        first_divergence,
    }
}

impl TrajectoryDiff {
    /// Renders the one-line trajectory verdict.
    #[must_use]
    pub fn render(&self) -> String {
        match self.first_divergence {
            None => format!(
                "convergence trajectories: identical ({} waves)\n",
                self.waves_a
            ),
            Some(i) => format!(
                "convergence trajectories: first divergence at wave {i} ({} vs {} waves)\n",
                self.waves_a, self.waves_b
            ),
        }
    }
}

impl LogDiff {
    /// Renders the diff summary (`payload divergence: 0` is the line a
    /// recovered chaos run must print against its twin).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "payload divergence: {} ({} vs {} payload events)",
            self.payload_divergences, self.payload_a, self.payload_b
        );
        let _ = writeln!(
            out,
            "incident events (informational): {} vs {}",
            self.incidents_a, self.incidents_b
        );
        for line in &self.first_divergences {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}

/// Renders a [`Dossier`] for the `inspect` command.
#[must_use]
pub fn render_dossier(d: &Dossier) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "crash dossier: {}", d.reason);
    if let Some(req) = &d.request {
        let _ = writeln!(out, "request: {req}");
    }
    if let Value::Object(fields) = &d.fault_delta {
        let nonzero: Vec<String> = fields
            .iter()
            .filter_map(|(k, v)| match v {
                Value::Number(n) if n.as_f64() != 0.0 => {
                    Some(format!("{k}={}", n.as_f64() as u64))
                }
                _ => None,
            })
            .collect();
        let _ = writeln!(
            out,
            "fault delta: {}",
            if nonzero.is_empty() {
                "none".to_owned()
            } else {
                nonzero.join(" ")
            }
        );
    }
    let _ = writeln!(
        out,
        "snapshot: {} counters, {} histograms, {} spans",
        d.snapshot.counters.len(),
        d.snapshot.histograms.len(),
        d.snapshot.spans.len()
    );
    out.push_str(&render_timeline(&d.events));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: &str) -> FlightEvent {
        FlightEvent {
            seq,
            t_us: seq * 100,
            tid: 1,
            kind: kind.to_owned(),
            chunk: None,
            attempt: None,
            n: None,
            value: None,
            detail: None,
        }
    }

    #[test]
    fn crc32_matches_the_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_and_parse_round_trip() {
        let event = FlightEvent {
            chunk: Some(7),
            attempt: Some(2),
            n: Some(4096),
            value: Some(0.031_25),
            detail: Some("panic".to_owned()),
            ..ev(3, "fault_fired")
        };
        let json = serde_json::to_string(&event).unwrap();
        let log = format!("{}{}", frame(&json), frame(&json));
        let parsed = parse_log(&log);
        assert!(!parsed.torn);
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.events[0], event);
        assert_eq!(parsed.events[0].value, Some(0.031_25));
    }

    #[test]
    fn torn_tail_truncates_to_valid_prefix() {
        let json = serde_json::to_string(&ev(1, "run_start")).unwrap();
        let good = frame(&json);
        // A partial final line (torn write) keeps the valid prefix.
        let torn = format!("{good}{}", &good[..good.len() / 2]);
        let parsed = parse_log(&torn);
        assert!(parsed.torn);
        assert_eq!(parsed.events.len(), 1);
        // A corrupt (bit-flipped) line also truncates.
        let mut corrupt = format!("{good}{good}");
        let flip = corrupt.len() - 10;
        corrupt.replace_range(flip..=flip, "X");
        let parsed = parse_log(&corrupt);
        assert!(parsed.torn);
        assert_eq!(parsed.events.len(), 1);
    }

    #[test]
    fn unknown_version_is_skipped_not_fatal() {
        let json = serde_json::to_string(&ev(1, "run_start")).unwrap();
        let future = format!("MMRE 9 {:08x} {json}\n", crc32(format!("9 {json}").as_bytes()));
        let log = format!("{future}{}", frame(&json));
        let parsed = parse_log(&log);
        assert!(!parsed.torn);
        assert_eq!(parsed.skipped, 1);
        assert_eq!(parsed.events.len(), 1);
    }

    #[test]
    fn empty_log_parses_clean() {
        let parsed = parse_log("");
        assert!(!parsed.torn);
        assert!(parsed.events.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn emit_records_into_ring_and_mirror() {
        let _guard = crate::test_ring_lock();
        let dir = std::env::temp_dir().join(format!("mmre-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emit.mmre");
        let _ = std::fs::remove_file(&path);
        crate::set_recording(true);
        set_flight_recording(true);
        mirror_to(&path).unwrap();
        event("chunk_claimed").chunk(11).emit();
        event("chunk_retried").chunk(11).attempt(2).emit();
        unmirror();
        let mine: Vec<FlightEvent> = events()
            .into_iter()
            .filter(|e| e.chunk == Some(11))
            .collect();
        assert!(mine.len() >= 2);
        let parsed = parse_log(&std::fs::read_to_string(&path).unwrap());
        assert!(!parsed.torn);
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.events[0].kind, "chunk_claimed");
        assert_eq!(parsed.events[1].attempt, Some(2));
        assert!(parsed.events[0].seq < parsed.events[1].seq);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn flight_switch_gates_emission() {
        let _guard = crate::test_ring_lock();
        crate::set_recording(true);
        set_flight_recording(false);
        let before = events().len();
        event("run_start").n(1).emit();
        assert_eq!(events().len(), before);
        set_flight_recording(true);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_records_nothing() {
        event("run_start").n(1).emit();
        assert!(events().is_empty());
    }

    #[test]
    fn dossier_round_trips_and_is_atomic() {
        let dir = std::env::temp_dir().join(format!("mmre-dossier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(write_dossier("unit", None, &[]).unwrap(), None);
        set_dossier_dir(&dir).unwrap();
        let path = write_dossier("unit test", Some("mmrk1|demo"), &[("injected_panics", 3)])
            .unwrap()
            .unwrap();
        clear_dossier_dir();
        let text = std::fs::read_to_string(&path).unwrap();
        let d: Dossier = serde_json::from_str(&text).unwrap();
        assert_eq!(d.reason, "unit test");
        assert_eq!(d.request.as_deref(), Some("mmrk1|demo"));
        let rendered = render_dossier(&d);
        assert!(rendered.contains("injected_panics=3"), "{rendered}");
        // No tmp file left behind.
        assert!(std::fs::read_dir(&dir).unwrap().all(|f| {
            !f.unwrap().file_name().to_string_lossy().ends_with(".tmp")
        }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeline_renders_causality_chains() {
        let events = vec![
            FlightEvent { chunk: Some(3), ..ev(1, "chunk_claimed") },
            FlightEvent { chunk: Some(4), ..ev(2, "chunk_claimed") },
            FlightEvent {
                chunk: Some(4),
                attempt: Some(1),
                detail: Some("panic".to_owned()),
                ..ev(3, "fault_fired")
            },
            FlightEvent { chunk: Some(4), attempt: Some(1), n: Some(800), ..ev(4, "backoff_slept") },
            FlightEvent { chunk: Some(4), attempt: Some(2), ..ev(5, "chunk_retried") },
        ];
        let text = render_timeline(&events);
        assert!(text.contains("chunk 4: claimed"), "{text}");
        assert!(text.contains("fault panic (attempt 1)"), "{text}");
        assert!(text.contains("retry #2 -> recovered"), "{text}");
        assert!(text.contains("clean chunks: 1"), "{text}");
        let hist = render_histogram(&events);
        assert!(hist.contains("2  chunk_claimed"), "{hist}");
    }

    #[test]
    fn convergence_lists_waves() {
        let events = vec![
            FlightEvent {
                n: Some(16384),
                value: Some(0.08),
                detail: Some("continue".to_owned()),
                ..ev(1, "wave_decided")
            },
            FlightEvent {
                n: Some(32768),
                value: Some(0.04),
                detail: Some("converged".to_owned()),
                ..ev(2, "wave_decided")
            },
        ];
        let text = render_convergence(&events);
        assert!(text.contains("2 waves"), "{text}");
        assert!(text.contains("n=16384"), "{text}");
        assert!(text.contains("converged"), "{text}");
        assert!(render_convergence(&[]).contains("no wave decisions"));
    }

    #[test]
    fn diff_ignores_timing_but_catches_payload_changes() {
        let a = vec![
            FlightEvent { n: Some(100), ..ev(1, "run_start") },
            FlightEvent { chunk: Some(0), ..ev(2, "chunk_claimed") },
            FlightEvent {
                chunk: Some(0),
                attempt: Some(1),
                detail: Some("panic".to_owned()),
                ..ev(3, "fault_fired")
            },
            FlightEvent { n: Some(100), detail: Some("ok".to_owned()), ..ev(4, "run_end") },
        ];
        // Twin: same payload, different timestamps/seq, no incidents.
        let b = vec![
            FlightEvent { n: Some(100), t_us: 999, tid: 7, ..ev(9, "run_start") },
            FlightEvent { n: Some(100), detail: Some("ok".to_owned()), t_us: 1_500, ..ev(10, "run_end") },
        ];
        let d = diff_logs(&a, &b);
        assert_eq!(d.payload_divergences, 0, "{:?}", d.first_divergences);
        assert_eq!((d.payload_a, d.payload_b), (2, 2));
        assert_eq!((d.incidents_a, d.incidents_b), (2, 0));
        assert!(d.render().contains("payload divergence: 0"));
        // A diverging payload is caught.
        let mut c = b.clone();
        c[1].n = Some(96);
        let d = diff_logs(&a, &c);
        assert_eq!(d.payload_divergences, 1);
        assert!(!d.first_divergences.is_empty());
    }
}
