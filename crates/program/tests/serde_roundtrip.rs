//! JSON round-trips for the data-structure types (C-SERDE): downstream
//! users persist generated programs and replay them bit-for-bit.

use memmodel::OpType::{Ld, St};
use progmodel::{Instruction, Location, Program, ProgramGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn program_round_trips_through_json() {
    let mut rng = SmallRng::seed_from_u64(3);
    let program = ProgramGenerator::new(24).generate(&mut rng);
    let json = serde_json::to_string(&program).expect("serializes");
    let back: Program = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(program, back);
    assert_eq!(back.critical_store_index(), program.critical_store_index());
}

#[test]
fn fenced_program_round_trips() {
    let program = Program::from_filler_types(&[St, Ld])
        .unwrap()
        .with_acquire_before_critical();
    let json = serde_json::to_string(&program).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(program, back);
    assert!(back[2].is_fence());
}

#[test]
fn instruction_and_location_wire_shape_is_stable() {
    let json = serde_json::to_string(&Instruction::critical_load()).unwrap();
    // The wire shape is part of the public contract; breaking it silently
    // would corrupt persisted corpora.
    assert!(json.contains("CriticalLoad"), "{json}");
    let loc_json = serde_json::to_string(&Location::filler(3)).unwrap();
    assert_eq!(loc_json, "4");
}

#[test]
fn memory_model_round_trips() {
    use memmodel::{MemoryModel, ReorderMatrix};
    for model in MemoryModel::NAMED {
        let json = serde_json::to_string(&model).unwrap();
        let back: MemoryModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
    let custom = MemoryModel::Custom(ReorderMatrix::new(true, false, true, false));
    let back: MemoryModel =
        serde_json::from_str(&serde_json::to_string(&custom).unwrap()).unwrap();
    assert_eq!(custom, back);
}

#[test]
fn corrupted_json_is_rejected() {
    // Type-level garbage.
    assert!(serde_json::from_str::<Program>("{\"instrs\": 3}").is_err());
    // Well-typed but invariant-violating: no critical pair.
    assert!(serde_json::from_str::<Program>("[]").is_err());
    // Reversed critical pair also fails validation on the way in.
    let st = serde_json::to_string(&Instruction::critical_store()).unwrap();
    let ld = serde_json::to_string(&Instruction::critical_load()).unwrap();
    let reversed = format!("[{st},{ld}]");
    assert!(serde_json::from_str::<Program>(&reversed).is_err());
}
