//! The probabilistic program model of §3.1.1 / Appendix A.1.
//!
//! A program is a sequence `x_1, …, x_m, x_{m+1}, x_{m+2}` of memory
//! operations. The first `m` are *filler* operations whose types are i.i.d.
//! (`Pr[ST] = p`), each accessing its own distinct location. The last two are
//! the **critical load** and **critical store** of the canonical atomicity
//! violation (§2.2) — the only two operations that access the same (shared)
//! location, and therefore the only pair that can never reorder with each
//! other.
//!
//! # Example
//!
//! ```
//! use progmodel::{Program, ProgramGenerator};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let prog = ProgramGenerator::new(16).generate(&mut rng);
//! assert_eq!(prog.len(), 18);
//! assert_eq!(prog.critical_load_index(), 16);
//! assert_eq!(prog.critical_store_index(), 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod instr;
mod location;
mod program;

pub use gen::ProgramGenerator;
pub use instr::{InstrKind, Instruction, Role};
pub use location::Location;
pub use program::{Program, ProgramError};
