//! Memory locations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory location identifier.
///
/// Appendix A.1: each filler instruction `x_i` accesses a location `X_i`
/// such that `X_i = X_j` only if `i = j`, and `X_i ≠ X` where `X` is the
/// shared location of the critical load/store pair.
///
/// [`Location::SHARED`] is the distinguished shared location `X`; filler
/// locations are produced by [`Location::filler`].
///
/// # Example
///
/// ```
/// use progmodel::Location;
///
/// assert!(Location::SHARED.is_shared());
/// assert_ne!(Location::filler(0), Location::SHARED);
/// assert_ne!(Location::filler(0), Location::filler(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(u32);

impl Location {
    /// The shared location `X` accessed by both critical instructions.
    pub const SHARED: Location = Location(0);

    /// The `i`-th distinct filler location (`X_{i+1}` in the paper, 0-based
    /// here). Always distinct from [`Location::SHARED`] and from every other
    /// filler index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= u32::MAX as usize`, which would collide with the
    /// shared location after wrapping.
    #[must_use]
    pub fn filler(i: usize) -> Location {
        let i = u32::try_from(i).expect("filler index fits in u32");
        assert!(i < u32::MAX, "filler index too large");
        Location(i + 1)
    }

    /// Whether this is the shared location `X`.
    #[must_use]
    pub const fn is_shared(self) -> bool {
        self.0 == 0
    }

    /// The raw numeric identifier (0 is the shared location).
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_shared() {
            f.write_str("X")
        } else {
            write!(f, "X{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_is_distinguished() {
        assert!(Location::SHARED.is_shared());
        assert_eq!(Location::SHARED.raw(), 0);
    }

    #[test]
    fn fillers_are_distinct_and_never_shared() {
        let locs: Vec<Location> = (0..100).map(Location::filler).collect();
        for (i, a) in locs.iter().enumerate() {
            assert!(!a.is_shared());
            for b in &locs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Location::SHARED.to_string(), "X");
        assert_eq!(Location::filler(0).to_string(), "X1");
        assert_eq!(Location::filler(41).to_string(), "X42");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn filler_rejects_wrapping_index() {
        let _ = Location::filler(u32::MAX as usize);
    }
}
