//! Whole-program construction and validation.

use crate::{InstrKind, Instruction, Location, Role};
use memmodel::fence::FenceKind;
use memmodel::OpType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// An initial program order `S_0` (Appendix A.1).
///
/// Invariants (checked on construction):
///
/// * exactly one [`Role::CriticalLoad`] and one [`Role::CriticalStore`],
///   with the load preceding the store;
/// * the two critical instructions are the only accesses to
///   [`Location::SHARED`];
/// * filler memory accesses use pairwise-distinct locations.
///
/// # Example
///
/// ```
/// use progmodel::Program;
/// use memmodel::OpType::{Ld, St};
///
/// let prog = Program::from_filler_types(&[St, Ld, St]).expect("valid program");
/// assert_eq!(prog.m(), 3);
/// assert_eq!(prog.len(), 5);
/// assert_eq!(prog[3].role(), progmodel::Role::CriticalLoad);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Instruction>", into = "Vec<Instruction>")]
pub struct Program {
    instrs: Vec<Instruction>,
}

impl TryFrom<Vec<Instruction>> for Program {
    type Error = ProgramError;

    /// Deserialization route: re-validates the model invariants, so a
    /// corrupted or hand-edited serialized program cannot bypass
    /// [`Program::new`].
    fn try_from(instrs: Vec<Instruction>) -> Result<Program, ProgramError> {
        Program::new(instrs)
    }
}

impl From<Program> for Vec<Instruction> {
    fn from(p: Program) -> Vec<Instruction> {
        p.instrs
    }
}

/// Error returned when a sequence of instructions violates the program-model
/// invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Not exactly one critical load / critical store, or out of order.
    MalformedCriticalPair,
    /// A non-critical instruction accesses the shared location.
    FillerTouchesShared {
        /// Index of the offending instruction.
        index: usize,
    },
    /// Two filler instructions share a location.
    DuplicateFillerLocation {
        /// Indices of the two clashing instructions.
        first: usize,
        /// Second clashing index.
        second: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::MalformedCriticalPair => f.write_str(
                "program must contain exactly one critical LD followed by one critical ST",
            ),
            ProgramError::FillerTouchesShared { index } => write!(
                f,
                "non-critical instruction at index {index} accesses the shared location"
            ),
            ProgramError::DuplicateFillerLocation { first, second } => write!(
                f,
                "filler instructions at indices {first} and {second} share a location"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Builds a program from raw instructions, validating the model
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violated invariant.
    pub fn new(instrs: Vec<Instruction>) -> Result<Program, ProgramError> {
        let loads: Vec<usize> = instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.role() == Role::CriticalLoad)
            .map(|(idx, _)| idx)
            .collect();
        let stores: Vec<usize> = instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.role() == Role::CriticalStore)
            .map(|(idx, _)| idx)
            .collect();
        if loads.len() != 1 || stores.len() != 1 || loads[0] >= stores[0] {
            return Err(ProgramError::MalformedCriticalPair);
        }

        let mut seen: Vec<(Location, usize)> = Vec::new();
        for (idx, ins) in instrs.iter().enumerate() {
            if ins.is_critical() {
                continue;
            }
            if let Some(loc) = ins.loc() {
                if loc.is_shared() {
                    return Err(ProgramError::FillerTouchesShared { index: idx });
                }
                if let Some(&(_, first)) = seen.iter().find(|(l, _)| *l == loc) {
                    return Err(ProgramError::DuplicateFillerLocation { first, second: idx });
                }
                seen.push((loc, idx));
            }
        }
        Ok(Program { instrs })
    }

    /// The canonical program shape of Appendix A.1: `m` filler operations of
    /// the given types (assigned distinct locations in order), followed by
    /// the critical load and critical store.
    ///
    /// # Errors
    ///
    /// Never fails for this constructor's inputs in practice; the `Result`
    /// mirrors [`Program::new`] for uniformity.
    pub fn from_filler_types(types: &[OpType]) -> Result<Program, ProgramError> {
        let mut instrs: Vec<Instruction> = types
            .iter()
            .enumerate()
            .map(|(i, &t)| Instruction::mem(t, Location::filler(i)))
            .collect();
        instrs.push(Instruction::critical_load());
        instrs.push(Instruction::critical_store());
        Program::new(instrs)
    }

    /// Number of filler instructions `m`.
    ///
    /// For canonical programs (critical pair at the end, no fences) this is
    /// `len() - 2`; in general it counts non-critical instructions.
    #[must_use]
    pub fn m(&self) -> usize {
        self.instrs.iter().filter(|i| !i.is_critical()).count()
    }

    /// Total number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true for valid
    /// programs, which contain the critical pair).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Index of the critical load in initial program order.
    ///
    /// # Panics
    ///
    /// Never panics for programs built through the validated constructors.
    #[must_use]
    pub fn critical_load_index(&self) -> usize {
        self.instrs
            .iter()
            .position(|i| i.role() == Role::CriticalLoad)
            .expect("validated program contains a critical load")
    }

    /// Index of the critical store in initial program order.
    ///
    /// # Panics
    ///
    /// Never panics for programs built through the validated constructors.
    #[must_use]
    pub fn critical_store_index(&self) -> usize {
        self.instrs
            .iter()
            .position(|i| i.role() == Role::CriticalStore)
            .expect("validated program contains a critical store")
    }

    /// The instructions in initial program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Mutable access for in-place regeneration. Crate-internal: callers
    /// must preserve the validated invariants (roles, locations, critical
    /// pair), which type-redrawing does by construction.
    pub(crate) fn instrs_mut(&mut self) -> &mut [Instruction] {
        &mut self.instrs
    }

    /// Iterates over the instructions in initial program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// Returns a copy of the program with `fence` inserted at `pos`
    /// (subsequent instructions shift down by one).
    ///
    /// This supports the §7 fence extension: e.g. inserting an
    /// [`FenceKind::Acquire`] immediately before the critical load prevents
    /// the load from settling upward at all.
    ///
    /// # Panics
    ///
    /// Panics if `pos > len()`.
    #[must_use]
    pub fn with_fence_at(&self, pos: usize, fence: FenceKind) -> Program {
        assert!(pos <= self.len(), "fence position {pos} out of bounds");
        let mut instrs = self.instrs.clone();
        instrs.insert(pos, Instruction::fence(fence));
        Program { instrs }
    }

    /// Returns a copy with an acquire fence just before the critical load —
    /// the minimal synchronisation that pins the critical window to its SC
    /// size under any memory model.
    #[must_use]
    pub fn with_acquire_before_critical(&self) -> Program {
        self.with_fence_at(self.critical_load_index(), FenceKind::Acquire)
    }

    /// The sequence of filler operation types, in program order.
    #[must_use]
    pub fn filler_types(&self) -> Vec<OpType> {
        self.instrs
            .iter()
            .filter(|i| !i.is_critical())
            .filter_map(|i| i.op_type())
            .collect()
    }

    /// Number of stores among the filler instructions.
    #[must_use]
    pub fn filler_store_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| !i.is_critical())
            .filter(|i| matches!(i.kind(), InstrKind::Mem(OpType::St)))
            .count()
    }
}

impl Index<usize> for Program {
    type Output = Instruction;

    fn index(&self, index: usize) -> &Instruction {
        &self.instrs[index]
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ins) in self.instrs.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{ins}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use OpType::{Ld, St};

    #[test]
    fn from_filler_types_builds_canonical_shape() {
        let p = Program::from_filler_types(&[St, Ld, St, St]).unwrap();
        assert_eq!(p.m(), 4);
        assert_eq!(p.len(), 6);
        assert_eq!(p.critical_load_index(), 4);
        assert_eq!(p.critical_store_index(), 5);
        assert_eq!(p.filler_types(), vec![St, Ld, St, St]);
        assert_eq!(p.filler_store_count(), 3);
    }

    #[test]
    fn empty_filler_is_allowed() {
        let p = Program::from_filler_types(&[]).unwrap();
        assert_eq!(p.m(), 0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn rejects_missing_critical_pair() {
        let err = Program::new(vec![Instruction::mem(Ld, Location::filler(0))]).unwrap_err();
        assert_eq!(err, ProgramError::MalformedCriticalPair);
    }

    #[test]
    fn rejects_reversed_critical_pair() {
        let err = Program::new(vec![
            Instruction::critical_store(),
            Instruction::critical_load(),
        ])
        .unwrap_err();
        assert_eq!(err, ProgramError::MalformedCriticalPair);
    }

    #[test]
    fn rejects_duplicate_criticals() {
        let err = Program::new(vec![
            Instruction::critical_load(),
            Instruction::critical_load(),
            Instruction::critical_store(),
        ])
        .unwrap_err();
        assert_eq!(err, ProgramError::MalformedCriticalPair);
    }

    #[test]
    fn rejects_filler_on_shared_location() {
        let err = Program::new(vec![
            Instruction::mem(St, Location::SHARED),
            Instruction::critical_load(),
            Instruction::critical_store(),
        ])
        .unwrap_err();
        assert_eq!(err, ProgramError::FillerTouchesShared { index: 0 });
    }

    #[test]
    fn rejects_duplicate_filler_locations() {
        let err = Program::new(vec![
            Instruction::mem(St, Location::filler(7)),
            Instruction::mem(Ld, Location::filler(7)),
            Instruction::critical_load(),
            Instruction::critical_store(),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            ProgramError::DuplicateFillerLocation {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn fence_insertion_shifts_criticals() {
        let p = Program::from_filler_types(&[St, St]).unwrap();
        let fenced = p.with_acquire_before_critical();
        assert_eq!(fenced.len(), 5);
        assert!(fenced[2].is_fence());
        assert_eq!(fenced.critical_load_index(), 3);
        assert_eq!(fenced.critical_store_index(), 4);
        // m counts non-critical instructions, including the fence.
        assert_eq!(fenced.m(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn fence_position_is_bounds_checked() {
        let p = Program::from_filler_types(&[]).unwrap();
        let _ = p.with_fence_at(3, FenceKind::Full);
    }

    #[test]
    fn display_joins_instructions() {
        let p = Program::from_filler_types(&[St]).unwrap();
        assert_eq!(p.to_string(), "ST X1; LD X*; ST X*");
    }

    #[test]
    fn indexing_and_iteration_agree() {
        let p = Program::from_filler_types(&[Ld, St]).unwrap();
        let collected: Vec<Instruction> = p.iter().copied().collect();
        for (i, ins) in collected.iter().enumerate() {
            assert_eq!(&p[i], ins);
        }
        assert_eq!((&p).into_iter().count(), p.len());
    }
}
