//! Random program generation (§3.1.1).

use crate::{Program, ProgramError};
use memmodel::{OpType, CANONICAL_P};
use rand::Rng;
use std::fmt;

/// Generator of random initial program orders.
///
/// Produces programs of `m` i.i.d. filler operations (`Pr[ST] = p`,
/// `Pr[LD] = 1 − p`) followed by the critical load/store pair — the random
/// process of §3.1.1. The paper's analysis sets `p = 1/2` and lets `m → ∞`;
/// in simulation `m` is finite and the truncation error of every
/// window-related quantity decays geometrically in `m` (each extra filler
/// instruction is reachable by the critical load only through one more
/// successful swap).
///
/// # Example
///
/// ```
/// use progmodel::ProgramGenerator;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(42);
/// let gen = ProgramGenerator::new(32).with_store_probability(0.25).unwrap();
/// let prog = gen.generate(&mut rng);
/// assert_eq!(prog.m(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramGenerator {
    m: usize,
    p: f64,
}

impl ProgramGenerator {
    /// A generator of programs with `m` filler operations and the canonical
    /// store probability `p = 1/2`.
    #[must_use]
    pub fn new(m: usize) -> ProgramGenerator {
        ProgramGenerator { m, p: CANONICAL_P }
    }

    /// Replaces the store probability `p`.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `p` is not in `[0, 1]`.
    pub fn with_store_probability(mut self, p: f64) -> Result<ProgramGenerator, f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(p);
        }
        self.p = p;
        Ok(self)
    }

    /// The number of filler operations `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The store probability `p`.
    #[must_use]
    pub fn store_probability(&self) -> f64 {
        self.p
    }

    /// Draws a random initial program order `S_0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        let types: Vec<OpType> = (0..self.m)
            .map(|_| {
                if rng.gen_bool(self.p) {
                    OpType::St
                } else {
                    OpType::Ld
                }
            })
            .collect();
        Program::from_filler_types(&types).expect("generated programs satisfy the model invariants")
    }

    /// Draws only the filler type sequence (no allocation of locations);
    /// useful for analytic code that needs the type string alone.
    pub fn generate_types<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<OpType> {
        (0..self.m)
            .map(|_| {
                if rng.gen_bool(self.p) {
                    OpType::St
                } else {
                    OpType::Ld
                }
            })
            .collect()
    }

    /// The all-stores program of size `m` (a deterministic worst case for
    /// TSO window growth: the critical load sits below a run of stores).
    ///
    /// # Errors
    ///
    /// Mirrors [`Program::from_filler_types`].
    pub fn all_stores(m: usize) -> Result<Program, ProgramError> {
        Program::from_filler_types(&vec![OpType::St; m])
    }

    /// The all-loads program of size `m` (TSO window growth is impossible:
    /// the critical load stops immediately).
    ///
    /// # Errors
    ///
    /// Mirrors [`Program::from_filler_types`].
    pub fn all_loads(m: usize) -> Result<Program, ProgramError> {
        Program::from_filler_types(&vec![OpType::Ld; m])
    }
}

impl fmt::Display for ProgramGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgramGenerator(m={}, p={})", self.m, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        for m in [0, 1, 5, 64] {
            let p = ProgramGenerator::new(m).generate(&mut rng);
            assert_eq!(p.m(), m);
            assert_eq!(p.len(), m + 2);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ProgramGenerator::new(32).generate(&mut SmallRng::seed_from_u64(9));
        let b = ProgramGenerator::new(32).generate(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn extreme_store_probabilities() {
        let mut rng = SmallRng::seed_from_u64(2);
        let all_st = ProgramGenerator::new(50)
            .with_store_probability(1.0)
            .unwrap()
            .generate(&mut rng);
        assert_eq!(all_st.filler_store_count(), 50);
        let all_ld = ProgramGenerator::new(50)
            .with_store_probability(0.0)
            .unwrap()
            .generate(&mut rng);
        assert_eq!(all_ld.filler_store_count(), 0);
    }

    #[test]
    fn store_fraction_close_to_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gen = ProgramGenerator::new(10_000)
            .with_store_probability(0.3)
            .unwrap();
        let p = gen.generate(&mut rng);
        let frac = p.filler_store_count() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "store fraction {frac} far from 0.3");
    }

    #[test]
    fn rejects_invalid_probability() {
        assert_eq!(
            ProgramGenerator::new(4).with_store_probability(1.5),
            Err(1.5)
        );
    }

    #[test]
    fn deterministic_patterns() {
        assert_eq!(
            ProgramGenerator::all_stores(3).unwrap().filler_store_count(),
            3
        );
        assert_eq!(
            ProgramGenerator::all_loads(3).unwrap().filler_store_count(),
            0
        );
    }

    #[test]
    fn generate_types_matches_length() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(ProgramGenerator::new(17).generate_types(&mut rng).len(), 17);
    }
}
