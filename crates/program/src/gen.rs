//! Random program generation (§3.1.1).

use crate::{Program, ProgramError};
use memmodel::{OpType, CANONICAL_P};
use rand::Rng;
use std::fmt;

/// Generator of random initial program orders.
///
/// Produces programs of `m` i.i.d. filler operations (`Pr[ST] = p`,
/// `Pr[LD] = 1 − p`) followed by the critical load/store pair — the random
/// process of §3.1.1. The paper's analysis sets `p = 1/2` and lets `m → ∞`;
/// in simulation `m` is finite and the truncation error of every
/// window-related quantity decays geometrically in `m` (each extra filler
/// instruction is reachable by the critical load only through one more
/// successful swap).
///
/// # Example
///
/// ```
/// use progmodel::ProgramGenerator;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(42);
/// let gen = ProgramGenerator::new(32).with_store_probability(0.25).unwrap();
/// let prog = gen.generate(&mut rng);
/// assert_eq!(prog.m(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramGenerator {
    m: usize,
    p: f64,
}

impl ProgramGenerator {
    /// A generator of programs with `m` filler operations and the canonical
    /// store probability `p = 1/2`.
    #[must_use]
    pub fn new(m: usize) -> ProgramGenerator {
        ProgramGenerator { m, p: CANONICAL_P }
    }

    /// Replaces the store probability `p`.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `p` is not in `[0, 1]`.
    pub fn with_store_probability(mut self, p: f64) -> Result<ProgramGenerator, f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(p);
        }
        self.p = p;
        Ok(self)
    }

    /// The number of filler operations `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The store probability `p`.
    #[must_use]
    pub fn store_probability(&self) -> f64 {
        self.p
    }

    /// Draws a random initial program order `S_0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        let types: Vec<OpType> = (0..self.m)
            .map(|_| {
                if rng.gen_bool(self.p) {
                    OpType::St
                } else {
                    OpType::Ld
                }
            })
            .collect();
        Program::from_filler_types(&types).expect("generated programs satisfy the model invariants")
    }

    /// Redraws a program's filler operation types in place — the
    /// allocation-free counterpart of [`generate`](ProgramGenerator::generate).
    ///
    /// Locations and roles are fixed across draws of the §3.1.1 process (only
    /// the LD/ST types are random), so regeneration rewrites each filler
    /// memory access with a fresh type and touches nothing else. The draw
    /// sequence is identical to `generate` — `m` Bernoulli draws in program
    /// order — so a seeded RNG ends in the same state whichever route built
    /// the program. Fences and the critical pair consume no draws and are
    /// left untouched, so fenced programs keep draw-count parity too.
    ///
    /// # Panics
    ///
    /// Panics if the program's filler memory-access count differs from this
    /// generator's `m` (the draw sequences would not correspond).
    pub fn regenerate<R: Rng + ?Sized>(&self, program: &mut Program, rng: &mut R) {
        let mut drawn = 0;
        for ins in program.instrs_mut() {
            if ins.is_critical() || ins.is_fence() {
                continue;
            }
            let ty = if rng.gen_bool(self.p) {
                OpType::St
            } else {
                OpType::Ld
            };
            ins.set_mem_op(ty);
            drawn += 1;
        }
        assert_eq!(
            drawn, self.m,
            "program has {drawn} filler memory accesses but the generator draws {}",
            self.m
        );
    }

    /// Draws only the filler type sequence (no allocation of locations);
    /// useful for analytic code that needs the type string alone.
    pub fn generate_types<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<OpType> {
        (0..self.m)
            .map(|_| {
                if rng.gen_bool(self.p) {
                    OpType::St
                } else {
                    OpType::Ld
                }
            })
            .collect()
    }

    /// The all-stores program of size `m` (a deterministic worst case for
    /// TSO window growth: the critical load sits below a run of stores).
    ///
    /// # Errors
    ///
    /// Mirrors [`Program::from_filler_types`].
    pub fn all_stores(m: usize) -> Result<Program, ProgramError> {
        Program::from_filler_types(&vec![OpType::St; m])
    }

    /// The all-loads program of size `m` (TSO window growth is impossible:
    /// the critical load stops immediately).
    ///
    /// # Errors
    ///
    /// Mirrors [`Program::from_filler_types`].
    pub fn all_loads(m: usize) -> Result<Program, ProgramError> {
        Program::from_filler_types(&vec![OpType::Ld; m])
    }
}

impl fmt::Display for ProgramGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgramGenerator(m={}, p={})", self.m, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        for m in [0, 1, 5, 64] {
            let p = ProgramGenerator::new(m).generate(&mut rng);
            assert_eq!(p.m(), m);
            assert_eq!(p.len(), m + 2);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ProgramGenerator::new(32).generate(&mut SmallRng::seed_from_u64(9));
        let b = ProgramGenerator::new(32).generate(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn extreme_store_probabilities() {
        let mut rng = SmallRng::seed_from_u64(2);
        let all_st = ProgramGenerator::new(50)
            .with_store_probability(1.0)
            .unwrap()
            .generate(&mut rng);
        assert_eq!(all_st.filler_store_count(), 50);
        let all_ld = ProgramGenerator::new(50)
            .with_store_probability(0.0)
            .unwrap()
            .generate(&mut rng);
        assert_eq!(all_ld.filler_store_count(), 0);
    }

    #[test]
    fn store_fraction_close_to_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gen = ProgramGenerator::new(10_000)
            .with_store_probability(0.3)
            .unwrap();
        let p = gen.generate(&mut rng);
        let frac = p.filler_store_count() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "store fraction {frac} far from 0.3");
    }

    #[test]
    fn rejects_invalid_probability() {
        assert_eq!(
            ProgramGenerator::new(4).with_store_probability(1.5),
            Err(1.5)
        );
    }

    #[test]
    fn deterministic_patterns() {
        assert_eq!(
            ProgramGenerator::all_stores(3).unwrap().filler_store_count(),
            3
        );
        assert_eq!(
            ProgramGenerator::all_loads(3).unwrap().filler_store_count(),
            0
        );
    }

    #[test]
    fn regenerate_matches_generate_bit_for_bit() {
        // Same seed through either route must yield the same program AND
        // leave the RNG in the same state (identical draw sequence).
        let gen = ProgramGenerator::new(48).with_store_probability(0.35).unwrap();
        let mut scratch = gen.generate(&mut SmallRng::seed_from_u64(999));
        for seed in 0..30 {
            let mut fresh_rng = SmallRng::seed_from_u64(seed);
            let mut reused_rng = fresh_rng.clone();
            let fresh = gen.generate(&mut fresh_rng);
            gen.regenerate(&mut scratch, &mut reused_rng);
            assert_eq!(fresh, scratch, "programs diverged at seed {seed}");
            assert_eq!(fresh_rng, reused_rng, "RNG streams diverged at seed {seed}");
        }
    }

    #[test]
    fn regenerate_skips_fences_and_keeps_draw_parity() {
        let gen = ProgramGenerator::new(16);
        let mut fenced = gen
            .generate(&mut SmallRng::seed_from_u64(5))
            .with_acquire_before_critical();
        let mut a = SmallRng::seed_from_u64(6);
        let mut b = a.clone();
        gen.regenerate(&mut fenced, &mut a);
        let reference = gen.generate(&mut b);
        // Fence survives in place, filler types match the plain draw, and
        // the fence consumed no RNG draws.
        assert!(fenced[fenced.critical_load_index() - 1].is_fence());
        assert_eq!(fenced.filler_types(), reference.filler_types());
        assert_eq!(a, b);
    }

    #[test]
    fn regenerate_preserves_locations_and_roles() {
        let gen = ProgramGenerator::new(8);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = gen.generate(&mut rng);
        let locs: Vec<_> = p.iter().map(|i| i.loc()).collect();
        let roles: Vec<_> = p.iter().map(|i| i.role()).collect();
        gen.regenerate(&mut p, &mut rng);
        assert_eq!(p.iter().map(|i| i.loc()).collect::<Vec<_>>(), locs);
        assert_eq!(p.iter().map(|i| i.role()).collect::<Vec<_>>(), roles);
    }

    #[test]
    #[should_panic(expected = "filler memory accesses")]
    fn regenerate_rejects_size_mismatch() {
        let gen = ProgramGenerator::new(4);
        let mut wrong = ProgramGenerator::new(5).generate(&mut SmallRng::seed_from_u64(8));
        gen.regenerate(&mut wrong, &mut SmallRng::seed_from_u64(9));
    }

    #[test]
    fn generate_types_matches_length() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(ProgramGenerator::new(17).generate_types(&mut rng).len(), 17);
    }
}
