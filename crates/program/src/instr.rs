//! Instructions of the program model.

use crate::Location;
use memmodel::fence::FenceKind;
use memmodel::OpType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an instruction does: a memory access or a fence (§7 extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// A load or store to [`Instruction::loc`].
    Mem(OpType),
    /// A fence; fences access no location and never settle.
    Fence(FenceKind),
}

impl InstrKind {
    /// The memory-operation type, if this is a memory access.
    #[must_use]
    pub const fn op_type(self) -> Option<OpType> {
        match self {
            InstrKind::Mem(t) => Some(t),
            InstrKind::Fence(_) => None,
        }
    }

    /// Whether this is a fence.
    #[must_use]
    pub const fn is_fence(self) -> bool {
        matches!(self, InstrKind::Fence(_))
    }
}

/// The role an instruction plays in the canonical atomicity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// One of the `m` i.i.d. filler operations `x_1 … x_m`.
    Filler,
    /// The critical load `x_{m+1}` (Line 1 of the §2.2 bug).
    CriticalLoad,
    /// The critical store `x_{m+2}` (Line 3 of the §2.2 bug).
    CriticalStore,
    /// A fence inserted by the §7 extension.
    Synchronization,
}

impl Role {
    /// Whether this is one of the two critical instructions.
    #[must_use]
    pub const fn is_critical(self) -> bool {
        matches!(self, Role::CriticalLoad | Role::CriticalStore)
    }
}

/// A single instruction: kind, accessed location, and bug role.
///
/// # Example
///
/// ```
/// use progmodel::{Instruction, Location, Role};
/// use memmodel::OpType;
///
/// let i = Instruction::mem(OpType::Ld, Location::filler(3));
/// assert_eq!(i.op_type(), Some(OpType::Ld));
/// assert_eq!(i.role(), Role::Filler);
/// assert!(!i.is_critical());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    kind: InstrKind,
    /// The accessed location; fences carry `None`.
    loc: Option<Location>,
    role: Role,
}

impl Instruction {
    /// A filler memory access of type `ty` to `loc`.
    #[must_use]
    pub const fn mem(ty: OpType, loc: Location) -> Instruction {
        Instruction {
            kind: InstrKind::Mem(ty),
            loc: Some(loc),
            role: Role::Filler,
        }
    }

    /// Replaces the operation type of a memory access in place, keeping
    /// the location and role (the regeneration fast path).
    pub(crate) fn set_mem_op(&mut self, op: OpType) {
        debug_assert!(matches!(self.kind, InstrKind::Mem(_)));
        self.kind = InstrKind::Mem(op);
    }

    /// The critical load `x_{m+1}` (reads the shared location `X`).
    #[must_use]
    pub const fn critical_load() -> Instruction {
        Instruction {
            kind: InstrKind::Mem(OpType::Ld),
            loc: Some(Location::SHARED),
            role: Role::CriticalLoad,
        }
    }

    /// The critical store `x_{m+2}` (writes the shared location `X`).
    #[must_use]
    pub const fn critical_store() -> Instruction {
        Instruction {
            kind: InstrKind::Mem(OpType::St),
            loc: Some(Location::SHARED),
            role: Role::CriticalStore,
        }
    }

    /// A fence instruction of the given kind.
    #[must_use]
    pub const fn fence(kind: FenceKind) -> Instruction {
        Instruction {
            kind: InstrKind::Fence(kind),
            loc: None,
            role: Role::Synchronization,
        }
    }

    /// The instruction kind.
    #[must_use]
    pub const fn kind(&self) -> InstrKind {
        self.kind
    }

    /// The memory-operation type, if this is a memory access.
    #[must_use]
    pub const fn op_type(&self) -> Option<OpType> {
        self.kind.op_type()
    }

    /// The accessed location (`None` for fences).
    #[must_use]
    pub const fn loc(&self) -> Option<Location> {
        self.loc
    }

    /// The instruction's role in the canonical bug.
    #[must_use]
    pub const fn role(&self) -> Role {
        self.role
    }

    /// Whether this is the critical load or the critical store.
    #[must_use]
    pub const fn is_critical(&self) -> bool {
        self.role.is_critical()
    }

    /// Whether this is a fence.
    #[must_use]
    pub const fn is_fence(&self) -> bool {
        self.kind.is_fence()
    }

    /// Whether two instructions access the same memory location.
    ///
    /// Data-dependent instructions can never reorder ("If two instructions
    /// access the same location, they cannot reorder", §3.1.1 fn. 2).
    /// Fences conflict with nothing by this definition — their ordering
    /// constraints are directional and handled separately.
    #[must_use]
    pub fn conflicts_with(&self, other: &Instruction) -> bool {
        match (self.loc, other.loc) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.kind, self.loc) {
            (InstrKind::Mem(t), Some(loc)) => {
                write!(f, "{t} {loc}")?;
                if self.is_critical() {
                    f.write_str("*")?;
                }
                Ok(())
            }
            (InstrKind::Fence(k), _) => write!(f, "{k}"),
            (InstrKind::Mem(t), None) => write!(f, "{t} ?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_pair_shares_the_shared_location() {
        let ld = Instruction::critical_load();
        let st = Instruction::critical_store();
        assert_eq!(ld.loc(), Some(Location::SHARED));
        assert_eq!(st.loc(), Some(Location::SHARED));
        assert!(ld.conflicts_with(&st));
        assert_eq!(ld.op_type(), Some(OpType::Ld));
        assert_eq!(st.op_type(), Some(OpType::St));
        assert!(ld.is_critical() && st.is_critical());
    }

    #[test]
    fn fillers_do_not_conflict_with_criticals() {
        let f = Instruction::mem(OpType::St, Location::filler(0));
        assert!(!f.conflicts_with(&Instruction::critical_load()));
        assert!(!f.is_critical());
        assert_eq!(f.role(), Role::Filler);
    }

    #[test]
    fn conflict_is_symmetric_and_reflexive_for_mem_ops() {
        let a = Instruction::mem(OpType::Ld, Location::filler(1));
        let b = Instruction::mem(OpType::St, Location::filler(1));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(a.conflicts_with(&a));
    }

    #[test]
    fn fences_conflict_with_nothing() {
        let fence = Instruction::fence(FenceKind::Full);
        assert!(!fence.conflicts_with(&fence));
        assert!(!fence.conflicts_with(&Instruction::critical_load()));
        assert!(fence.is_fence());
        assert_eq!(fence.op_type(), None);
        assert_eq!(fence.loc(), None);
        assert_eq!(fence.role(), Role::Synchronization);
    }

    #[test]
    fn display_marks_critical_instructions() {
        assert_eq!(Instruction::critical_load().to_string(), "LD X*");
        assert_eq!(Instruction::critical_store().to_string(), "ST X*");
        assert_eq!(
            Instruction::mem(OpType::St, Location::filler(1)).to_string(),
            "ST X2"
        );
        assert_eq!(Instruction::fence(FenceKind::Acquire).to_string(), "ACQ");
    }
}
