//! Statistical validation of Theorem 5.1: Monte-Carlo disjointness
//! frequencies must match the exact permutation-sum probabilities.

use montecarlo::{chi_square_gof, Histogram, Runner, Seed};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use shiftproc::{exact, ShiftProcess};

// Debug builds still need enough trials for the 99.9% CI check to have
// power on the rarest events tested here (Pr ~ 1e-6): at 40k trials a
// single lucky hit puts the Wilson interval entirely above the exact
// value, and typical-seed noise sits within one interval width of it.
const TRIALS: u64 = if cfg!(debug_assertions) { 200_000 } else { 300_000 };

fn check(lengths: &'static [u64], seed: u64) {
    let expect = exact::pr_disjoint(lengths);
    let proc = ShiftProcess::canonical();
    let est = Runner::new(Seed(seed))
        .bernoulli(TRIALS, move |rng| proc.simulate_disjoint(lengths, rng));
    assert!(
        est.covers(expect, 0.999),
        "γ̄={lengths:?}: exact {expect}, observed {est}"
    );
}

#[test]
fn theorem_51_two_segments() {
    check(&[2, 2], 301);
    check(&[2, 5], 302);
    check(&[0, 0], 303);
}

#[test]
fn theorem_51_three_segments() {
    check(&[2, 2, 2], 304);
    check(&[1, 3, 5], 305);
}

#[test]
fn theorem_51_four_to_six_segments() {
    check(&[2, 2, 2, 2], 306);
    check(&[0, 1, 2, 3, 4], 307);
    check(&[1, 1, 1, 1, 1, 1], 308);
}

#[test]
fn heterogeneous_vs_homogeneous_at_equal_total_length() {
    // With total length fixed, spreading length unevenly helps: the short
    // segments are easy to tuck into gaps. Verify the exact ordering and
    // that MC agrees on the direction.
    let hetero = exact::pr_disjoint(&[0, 4]);
    let homo = exact::pr_disjoint(&[2, 2]);
    assert!(hetero > homo);
    let proc = ShiftProcess::canonical();
    let h = Runner::new(Seed(309)).bernoulli(TRIALS, move |rng| {
        proc.simulate_disjoint(&[0, 4], rng)
    });
    let m = Runner::new(Seed(310)).bernoulli(TRIALS, move |rng| {
        proc.simulate_disjoint(&[2, 2], rng)
    });
    assert!(h.point() > m.point());
}

#[test]
fn fast_geometric_sampler_fits_exact_law() {
    // The trailing_zeros sampler must produce *exactly* the canonical
    // geometric law Pr[s = k] = 2^-(k+1): chi-squared goodness-of-fit
    // against the exact pmf, tail pooled at expected count ≥ 5.
    let proc = ShiftProcess::canonical();
    let mut rng = SmallRng::seed_from_u64(777);
    let h: Histogram = (0..TRIALS).map(|_| proc.sample_shift_fast(&mut rng)).collect();
    let gof = chi_square_gof(&h, |k| 2f64.powi(-(k as i32) - 1), 5.0);
    assert!(
        gof.consistent_at(0.001),
        "fast sampler rejected against 2^-(k+1): p = {}, chi2 = {} over {} bins",
        gof.p_value,
        gof.statistic,
        gof.bins
    );
    // Enough unpooled support to make the test meaningful.
    assert!(gof.bins >= 10, "only {} bins", gof.bins);
}

#[test]
fn fast_geometric_sampler_general_q_fits_exact_law() {
    // The general-q fallback path of the fast sampler, against q(1-q)^k.
    let q = 0.3;
    let proc = ShiftProcess::with_q(q).expect("valid q");
    let mut rng = SmallRng::seed_from_u64(778);
    let h: Histogram = (0..TRIALS).map(|_| proc.sample_shift_fast(&mut rng)).collect();
    let gof = chi_square_gof(&h, |k| q * (1.0 - q).powi(k as i32), 5.0);
    assert!(
        gof.consistent_at(0.001),
        "fallback sampler rejected against q(1-q)^k: p = {}",
        gof.p_value
    );
}

#[test]
fn general_q_formula_matches_simulation() {
    for q in [0.25f64, 0.7] {
        let lengths: &[u64] = &[2, 3, 2];
        let expect = exact::pr_disjoint_with_q(lengths, q);
        let proc = ShiftProcess::with_q(q).expect("valid q");
        let est = Runner::new(Seed(900 + (q * 100.0) as u64))
            .bernoulli(TRIALS, move |rng| proc.simulate_disjoint(lengths, rng));
        assert!(
            est.covers(expect, 0.999),
            "q={q}: exact {expect}, observed {est}"
        );
    }
}
