//! Monte-Carlo simulation of the shift process.

use crate::Segment;
use rand::Rng;
use std::fmt;

/// The shift process: i.i.d. geometric translations of segments.
///
/// The canonical process uses success probability `1/2`
/// (`Pr[s = k] = 2^-(k+1)`), matching Appendix A.3's per-thread shift
/// distribution.
///
/// # Example
///
/// ```
/// use shiftproc::ShiftProcess;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(9);
/// let proc = ShiftProcess::canonical();
/// let segments = proc.shift(&[2, 2, 3], &mut rng);
/// assert_eq!(segments.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftProcess {
    q: f64,
}

impl ShiftProcess {
    /// The paper's canonical process (`q = 1/2`).
    #[must_use]
    pub fn canonical() -> ShiftProcess {
        ShiftProcess { q: 0.5 }
    }

    /// A process with geometric success probability `q ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `q` is outside `(0, 1]`.
    pub fn with_q(q: f64) -> Result<ShiftProcess, f64> {
        if q > 0.0 && q <= 1.0 {
            Ok(ShiftProcess { q })
        } else {
            Err(q)
        }
    }

    /// The geometric success probability.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Draws one geometric shift (`Pr[s = k] = q(1−q)^k`), one Bernoulli
    /// flip (one RNG draw) per trial.
    ///
    /// This is the *stream-defining* sampler: every seeded result in the
    /// workspace is expressed in terms of its draw sequence. Use
    /// [`sample_shift_fast`](ShiftProcess::sample_shift_fast) where raw
    /// throughput matters and stream compatibility does not.
    pub fn sample_shift<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut k = 0;
        while !rng.gen_bool(self.q) {
            k += 1;
        }
        k
    }

    /// Draws one geometric shift using one `u64` per ~64 flips.
    ///
    /// For the canonical `q = 1/2`, a uniform `u64` encodes 64 i.i.d. fair
    /// coin flips; the number of failures before the first success is its
    /// count of trailing zero bits (`Pr[tz = k] = 2^-(k+1)`), and an
    /// all-zero word (probability `2^-64`) means 64 failures and counting —
    /// draw again. One RNG draw replaces an expected two `gen_bool` draws
    /// *and* their float conversions. For general `q` this falls back to
    /// the flip loop.
    ///
    /// The sampled distribution is exactly that of [`sample_shift`]
    /// (ShiftProcess::sample_shift) — validated by a chi-squared
    /// goodness-of-fit test — but the RNG *draw count* differs, so the two
    /// samplers are not interchangeable mid-stream of a seeded run.
    pub fn sample_shift_fast<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.q != 0.5 {
            return self.sample_shift(rng);
        }
        let mut base = 0u64;
        loop {
            let word = rng.next_u64();
            if word != 0 {
                return base + u64::from(word.trailing_zeros());
            }
            base += 64;
        }
    }

    /// Shifts segments of the given lengths, returning them in input order.
    pub fn shift<R: Rng + ?Sized>(&self, lengths: &[u64], rng: &mut R) -> Vec<Segment> {
        let mut out = Vec::new();
        self.shift_into(lengths, &mut out, rng);
        out
    }

    /// [`shift`](ShiftProcess::shift) into a caller-provided buffer, which
    /// is cleared and refilled (allocation-free once grown).
    pub fn shift_into<R: Rng + ?Sized>(
        &self,
        lengths: &[u64],
        out: &mut Vec<Segment>,
        rng: &mut R,
    ) {
        out.clear();
        out.extend(
            lengths
                .iter()
                .map(|&len| Segment::new(self.sample_shift(rng), len)),
        );
    }

    /// Simulates one realisation of the disjointness event `A(γ̄)`.
    pub fn simulate_disjoint<R: Rng + ?Sized>(&self, lengths: &[u64], rng: &mut R) -> bool {
        let mut scratch = ShiftScratch::with_capacity(lengths.len());
        self.simulate_disjoint_into(lengths, &mut scratch, rng)
    }

    /// [`simulate_disjoint`](ShiftProcess::simulate_disjoint) with
    /// caller-provided scratch: the steady-state allocation-free kernel.
    ///
    /// Draw-for-draw identical to `simulate_disjoint`, including the early
    /// exit: on the first overlap the trial returns `false` *without*
    /// consuming the remaining shifts. The early exit is sound on both
    /// counts that matter:
    ///
    /// * **unbiasedness** — the undrawn shifts are independent of the
    ///   shifts already drawn, so skipping them cannot tilt the estimate of
    ///   `Pr[A]`;
    /// * **determinism** — each trial's draw count is a function of the
    ///   draws themselves, never of scratch contents or of which kernel
    ///   (scratch or allocating) ran, so seeded streams across trials stay
    ///   aligned between the two routes (asserted by the equivalence
    ///   regression tests).
    pub fn simulate_disjoint_into<R: Rng + ?Sized>(
        &self,
        lengths: &[u64],
        scratch: &mut ShiftScratch,
        rng: &mut R,
    ) -> bool {
        // Incremental check: test each new segment against all previous
        // (n is small in practice).
        let placed = &mut scratch.placed;
        placed.clear();
        for &len in lengths {
            let seg = Segment::new(self.sample_shift(rng), len);
            if placed.iter().any(|p| p.overlaps(&seg)) {
                return false;
            }
            placed.push(seg);
        }
        true
    }

    /// Batch-lane disjointness kernel: evaluates the event `A(γ̄)` for
    /// `out.len()` independent trials from pre-drawn shift words.
    ///
    /// `lengths` and `draws` are window-major with `stride` lanes per row:
    /// trial `l`'s `i`-th window length is `lengths[i * stride + l]` and
    /// its shift word `draws[i * stride + l]`. The shift is the word's
    /// trailing-zero count — the canonical `q = 1/2` geometric, exactly as
    /// [`sample_shift_fast`](ShiftProcess::sample_shift_fast) decodes it,
    /// except that an all-zero word (probability `2^-64` per window) is
    /// truncated to shift 64 instead of drawing again, keeping the lane
    /// draw count fixed at one word per window.
    ///
    /// Unlike the scalar kernel there is no early exit in the *stream* —
    /// the caller has already drawn all `n` words per lane in bulk — so
    /// per-lane short-circuiting here affects neither determinism nor
    /// unbiasedness.
    ///
    /// # Panics
    ///
    /// Panics if `q != 1/2` (the lane path exists for the canonical
    /// process only), if `out.len() > stride`, or if `lengths`/`draws`
    /// hold fewer than `n` rows of `stride`.
    pub fn disjoint_lanes(
        &self,
        lengths: &[u64],
        draws: &[u64],
        n: usize,
        stride: usize,
        out: &mut [bool],
    ) {
        assert!(
            self.q == 0.5,
            "disjoint_lanes supports the canonical q = 1/2 only (q = {})",
            self.q
        );
        assert!(out.len() <= stride, "lane width exceeds stride");
        assert!(lengths.len() >= n * stride, "lengths buffer too short");
        assert!(draws.len() >= n * stride, "draws buffer too short");
        for (l, slot) in out.iter_mut().enumerate() {
            let seg = |i: usize| {
                let s = u64::from(draws[i * stride + l].trailing_zeros());
                (s, s + lengths[i * stride + l])
            };
            let mut disjoint = true;
            'windows: for i in 1..n {
                let (si, ei) = seg(i);
                for j in 0..i {
                    let (sj, ej) = seg(j);
                    if si <= ej && sj <= ei {
                        disjoint = false;
                        break 'windows;
                    }
                }
            }
            *slot = disjoint;
        }
    }
}

/// Reusable buffers for the in-place shift kernels.
///
/// One scratch serves segment vectors of any size: the buffer grows to the
/// largest vector seen and is reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct ShiftScratch {
    /// Segments placed so far in the current trial.
    placed: Vec<Segment>,
}

impl ShiftScratch {
    /// An empty scratch; the first simulation sizes it.
    #[must_use]
    pub fn new() -> ShiftScratch {
        ShiftScratch { placed: Vec::new() }
    }

    /// A scratch pre-sized for `n` segments, so even the first simulation
    /// allocates nothing afterwards.
    #[must_use]
    pub fn with_capacity(n: usize) -> ShiftScratch {
        ShiftScratch {
            placed: Vec::with_capacity(n),
        }
    }
}

impl Default for ShiftProcess {
    fn default() -> ShiftProcess {
        ShiftProcess::canonical()
    }
}

impl fmt::Display for ShiftProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShiftProcess(q={})", self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_q() {
        assert!(ShiftProcess::with_q(0.0).is_err());
        assert!(ShiftProcess::with_q(1.1).is_err());
        assert!(ShiftProcess::with_q(1.0).is_ok());
    }

    #[test]
    fn q_one_never_shifts() {
        let p = ShiftProcess::with_q(1.0).unwrap();
        let mut r = rng(0);
        for _ in 0..50 {
            assert_eq!(p.sample_shift(&mut r), 0);
        }
        // All segments at origin: always overlapping for n ≥ 2.
        assert!(!p.simulate_disjoint(&[2, 2], &mut r));
    }

    #[test]
    fn shift_distribution_matches_geometric() {
        let p = ShiftProcess::canonical();
        let mut r = rng(1);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            let s = p.sample_shift(&mut r);
            if (s as usize) < counts.len() {
                counts[s as usize] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = 2f64.powi(-(k as i32) - 1);
            let got = c as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "k={k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn single_segment_always_disjoint() {
        let p = ShiftProcess::canonical();
        let mut r = rng(2);
        for _ in 0..100 {
            assert!(p.simulate_disjoint(&[5], &mut r));
            assert!(p.simulate_disjoint(&[], &mut r));
        }
    }

    #[test]
    fn shift_preserves_lengths_and_order() {
        let p = ShiftProcess::canonical();
        let segs = p.shift(&[1, 2, 3], &mut rng(3));
        assert_eq!(segs.iter().map(Segment::len).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn scratch_disjoint_is_bit_for_bit_identical() {
        // Equivalence regression: the scratch kernel must return the same
        // outcomes AND consume the RNG identically (same draw count), so
        // downstream draws of a seeded pipeline stay aligned whichever
        // route ran. Mixed lengths exercise the early exit on both sides.
        let p = ShiftProcess::canonical();
        let mut scratch = ShiftScratch::new();
        for seed in 0..20 {
            let mut old_rng = rng(seed);
            let mut new_rng = old_rng.clone();
            for lengths in [&[2u64, 2][..], &[3, 2, 4], &[0, 0, 0, 0], &[5], &[]] {
                for _ in 0..50 {
                    let old = p.simulate_disjoint(lengths, &mut old_rng);
                    let new = p.simulate_disjoint_into(lengths, &mut scratch, &mut new_rng);
                    assert_eq!(old, new, "outcome diverged on {lengths:?}");
                }
                assert_eq!(old_rng, new_rng, "RNG streams diverged on {lengths:?}");
            }
        }
    }

    #[test]
    fn shift_into_matches_shift() {
        let p = ShiftProcess::canonical();
        let mut a = rng(6);
        let mut b = a.clone();
        let mut buf = Vec::new();
        for _ in 0..100 {
            let owned = p.shift(&[1, 2, 3], &mut a);
            p.shift_into(&[1, 2, 3], &mut buf, &mut b);
            assert_eq!(owned, buf);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn fast_sampler_general_q_falls_back_to_flip_loop() {
        // For q != 1/2 the fast sampler IS the flip loop: identical values
        // and identical RNG consumption.
        let p = ShiftProcess::with_q(0.3).unwrap();
        let mut a = rng(7);
        let mut b = a.clone();
        for _ in 0..200 {
            assert_eq!(p.sample_shift(&mut a), p.sample_shift_fast(&mut b));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn fast_sampler_draws_one_word_per_64_flips() {
        // At q = 1/2 the fast sampler consumes exactly one u64 per draw
        // (an all-zero word has probability 2^-64 — unobservable here).
        let p = ShiftProcess::canonical();
        let mut counting = rng(8);
        let mut reference = counting.clone();
        for _ in 0..1_000 {
            let _ = p.sample_shift_fast(&mut counting);
            let _ = reference.next_u64();
        }
        assert_eq!(counting, reference);
    }

    #[test]
    fn disjoint_lanes_matches_segment_semantics() {
        // Hand-built draws: trailing zeros give the shifts; compare each
        // lane against the Segment reference on the same decoded shifts.
        let p = ShiftProcess::canonical();
        let stride = 4;
        let n = 3;
        let mut r = rng(11);
        for _ in 0..200 {
            let lengths: Vec<u64> = (0..n * stride).map(|_| r.next_u64() % 5 + 2).collect();
            let draws: Vec<u64> = (0..n * stride).map(|_| r.next_u64()).collect();
            let mut out = [false; 4];
            p.disjoint_lanes(&lengths, &draws, n, stride, &mut out);
            for (l, &got) in out.iter().enumerate() {
                let segs: Vec<Segment> = (0..n)
                    .map(|i| {
                        Segment::new(
                            u64::from(draws[i * stride + l].trailing_zeros()),
                            lengths[i * stride + l],
                        )
                    })
                    .collect();
                assert_eq!(got, Segment::all_disjoint(&segs), "lane {l}");
            }
        }
    }

    #[test]
    fn disjoint_lanes_agrees_with_scalar_statistically() {
        // Same distribution as the scalar kernel: survival frequency over
        // many trials matches within Monte-Carlo noise.
        let p = ShiftProcess::canonical();
        let lengths_per_trial = [3u64, 2, 5];
        let trials = 40_000usize;
        let mut scalar_rng = rng(21);
        let scalar_hits = (0..trials)
            .filter(|_| p.simulate_disjoint(&lengths_per_trial, &mut scalar_rng))
            .count();
        let stride = 8;
        let mut lane_rng = rng(22);
        let mut lane_hits = 0usize;
        let mut lengths = vec![0u64; 3 * stride];
        let mut draws = vec![0u64; 3 * stride];
        let mut out = [false; 8];
        for _ in 0..trials / stride {
            for i in 0..3 {
                for l in 0..stride {
                    lengths[i * stride + l] = lengths_per_trial[i];
                    draws[i * stride + l] = lane_rng.next_u64();
                }
            }
            p.disjoint_lanes(&lengths, &draws, 3, stride, &mut out);
            lane_hits += out.iter().filter(|&&b| b).count();
        }
        let a = scalar_hits as f64 / trials as f64;
        let b = lane_hits as f64 / trials as f64;
        assert!((a - b).abs() < 0.02, "scalar {a:.4} vs lanes {b:.4}");
    }

    #[test]
    #[should_panic(expected = "canonical q = 1/2 only")]
    fn disjoint_lanes_rejects_general_q() {
        let p = ShiftProcess::with_q(0.3).unwrap();
        p.disjoint_lanes(&[2], &[1], 1, 1, &mut [false]);
    }

    #[test]
    fn longer_segments_are_less_likely_disjoint() {
        let p = ShiftProcess::canonical();
        let trials = 100_000;
        let count = |lens: &[u64], seed: u64| {
            let mut r = rng(seed);
            (0..trials).filter(|_| p.simulate_disjoint(lens, &mut r)).count()
        };
        let short = count(&[2, 2], 4);
        let long = count(&[6, 6], 5);
        assert!(long < short, "long {long} >= short {short}");
    }
}
