//! Monte-Carlo simulation of the shift process.

use crate::Segment;
use rand::Rng;
use std::fmt;

/// The shift process: i.i.d. geometric translations of segments.
///
/// The canonical process uses success probability `1/2`
/// (`Pr[s = k] = 2^-(k+1)`), matching Appendix A.3's per-thread shift
/// distribution.
///
/// # Example
///
/// ```
/// use shiftproc::ShiftProcess;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(9);
/// let proc = ShiftProcess::canonical();
/// let segments = proc.shift(&[2, 2, 3], &mut rng);
/// assert_eq!(segments.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftProcess {
    q: f64,
}

impl ShiftProcess {
    /// The paper's canonical process (`q = 1/2`).
    #[must_use]
    pub fn canonical() -> ShiftProcess {
        ShiftProcess { q: 0.5 }
    }

    /// A process with geometric success probability `q ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `q` is outside `(0, 1]`.
    pub fn with_q(q: f64) -> Result<ShiftProcess, f64> {
        if q > 0.0 && q <= 1.0 {
            Ok(ShiftProcess { q })
        } else {
            Err(q)
        }
    }

    /// The geometric success probability.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Draws one geometric shift (`Pr[s = k] = q(1−q)^k`).
    pub fn sample_shift<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut k = 0;
        while !rng.gen_bool(self.q) {
            k += 1;
        }
        k
    }

    /// Shifts segments of the given lengths, returning them in input order.
    pub fn shift<R: Rng + ?Sized>(&self, lengths: &[u64], rng: &mut R) -> Vec<Segment> {
        lengths
            .iter()
            .map(|&len| Segment::new(self.sample_shift(rng), len))
            .collect()
    }

    /// Simulates one realisation of the disjointness event `A(γ̄)`.
    pub fn simulate_disjoint<R: Rng + ?Sized>(&self, lengths: &[u64], rng: &mut R) -> bool {
        // Incremental check: keep shifted segments sorted insertion-free by
        // testing against all previous (n is small in practice).
        let mut placed: Vec<Segment> = Vec::with_capacity(lengths.len());
        for &len in lengths {
            let seg = Segment::new(self.sample_shift(rng), len);
            if placed.iter().any(|p| p.overlaps(&seg)) {
                // Still consume the remaining shifts? Not needed for the
                // event; early exit keeps the estimator unbiased because
                // remaining shifts are independent of the outcome.
                return false;
            }
            placed.push(seg);
        }
        true
    }
}

impl Default for ShiftProcess {
    fn default() -> ShiftProcess {
        ShiftProcess::canonical()
    }
}

impl fmt::Display for ShiftProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShiftProcess(q={})", self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_q() {
        assert!(ShiftProcess::with_q(0.0).is_err());
        assert!(ShiftProcess::with_q(1.1).is_err());
        assert!(ShiftProcess::with_q(1.0).is_ok());
    }

    #[test]
    fn q_one_never_shifts() {
        let p = ShiftProcess::with_q(1.0).unwrap();
        let mut r = rng(0);
        for _ in 0..50 {
            assert_eq!(p.sample_shift(&mut r), 0);
        }
        // All segments at origin: always overlapping for n ≥ 2.
        assert!(!p.simulate_disjoint(&[2, 2], &mut r));
    }

    #[test]
    fn shift_distribution_matches_geometric() {
        let p = ShiftProcess::canonical();
        let mut r = rng(1);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            let s = p.sample_shift(&mut r);
            if (s as usize) < counts.len() {
                counts[s as usize] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = 2f64.powi(-(k as i32) - 1);
            let got = c as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "k={k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn single_segment_always_disjoint() {
        let p = ShiftProcess::canonical();
        let mut r = rng(2);
        for _ in 0..100 {
            assert!(p.simulate_disjoint(&[5], &mut r));
            assert!(p.simulate_disjoint(&[], &mut r));
        }
    }

    #[test]
    fn shift_preserves_lengths_and_order() {
        let p = ShiftProcess::canonical();
        let segs = p.shift(&[1, 2, 3], &mut rng(3));
        assert_eq!(segs.iter().map(Segment::len).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn longer_segments_are_less_likely_disjoint() {
        let p = ShiftProcess::canonical();
        let trials = 100_000;
        let count = |lens: &[u64], seed: u64| {
            let mut r = rng(seed);
            (0..trials).filter(|_| p.simulate_disjoint(lens, &mut r)).count()
        };
        let short = count(&[2, 2], 4);
        let long = count(&[6, 6], 5);
        assert!(long < short, "long {long} >= short {short}");
    }
}
