//! Shifted line segments.

use std::fmt;

/// A closed integer segment `[start, start + len]` on the (reversed-time)
/// number line — one thread's critical window after shifting.
///
/// # Example
///
/// ```
/// use shiftproc::Segment;
///
/// let a = Segment::new(0, 2); // covers {0, 1, 2}
/// let b = Segment::new(2, 3); // covers {2, 3, 4, 5}
/// assert!(a.overlaps(&b));    // they share the point 2
/// assert!(!a.overlaps(&Segment::new(3, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    start: u64,
    len: u64,
}

impl Segment {
    /// A segment covering `[start, start + len]` (that is, `len + 1` integer
    /// points; the paper's "segment of length γ").
    #[must_use]
    pub const fn new(start: u64, len: u64) -> Segment {
        Segment { start, len }
    }

    /// The left endpoint (the shift `s_i`).
    #[must_use]
    pub const fn start(&self) -> u64 {
        self.start
    }

    /// The segment length `γ_i`.
    #[must_use]
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// `true` only for the degenerate zero-length segment, which still
    /// covers one point — kept for API symmetry, always `false` in the
    /// joined model where lengths are at least 2.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// The right endpoint `start + len` (inclusive).
    #[must_use]
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether two closed segments share at least one integer point.
    #[must_use]
    pub const fn overlaps(&self, other: &Segment) -> bool {
        self.start <= other.end() && other.start <= self.end()
    }

    /// Whether every segment in the slice is pairwise disjoint — the event
    /// `A(γ̄)` after shifting.
    #[must_use]
    pub fn all_disjoint(segments: &[Segment]) -> bool {
        for (i, a) in segments.iter().enumerate() {
            for b in &segments[i + 1..] {
                if a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn endpoints() {
        let s = Segment::new(3, 5);
        assert_eq!(s.start(), 3);
        assert_eq!(s.end(), 8);
        assert_eq!(s.len(), 5);
        assert_eq!(s.to_string(), "[3, 8]");
    }

    #[test]
    fn touching_counts_as_overlap() {
        let a = Segment::new(0, 3);
        assert!(a.overlaps(&Segment::new(3, 2)));
        assert!(!a.overlaps(&Segment::new(4, 2)));
    }

    #[test]
    fn zero_length_segment_is_a_point() {
        let p = Segment::new(5, 0);
        assert!(p.overlaps(&Segment::new(5, 0)));
        assert!(p.overlaps(&Segment::new(3, 2)));
        assert!(!p.overlaps(&Segment::new(6, 0)));
        assert!(!p.is_empty());
    }

    #[test]
    fn figure_2_instantiation() {
        // Figure 2: γ̄ = (3, 2, 5). Under Definition 1's closed-interval
        // convention (which all the paper's constants use), the drawn shift
        // (8, 0, 2) leaves segments 2 and 3 touching at point 2 — an
        // overlap; one more step of separation restores disjointness.
        let drawn = [Segment::new(8, 3), Segment::new(0, 2), Segment::new(2, 5)];
        assert!(!Segment::all_disjoint(&drawn));
        let separated = [Segment::new(8, 3), Segment::new(0, 2), Segment::new(3, 5)];
        assert!(!Segment::all_disjoint(&separated)); // [3,8] still touches [8,11]
        let fully = [Segment::new(9, 3), Segment::new(0, 2), Segment::new(3, 5)];
        assert!(Segment::all_disjoint(&fully));
    }

    #[test]
    fn all_disjoint_detects_any_pairwise_overlap() {
        let segs = [Segment::new(0, 2), Segment::new(10, 2), Segment::new(11, 1)];
        assert!(!Segment::all_disjoint(&segs));
        assert!(Segment::all_disjoint(&segs[..2]));
        assert!(Segment::all_disjoint(&[]));
        assert!(Segment::all_disjoint(&segs[..1]));
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(a in 0u64..50, la in 0u64..10, b in 0u64..50, lb in 0u64..10) {
            let (x, y) = (Segment::new(a, la), Segment::new(b, lb));
            prop_assert_eq!(x.overlaps(&y), y.overlaps(&x));
        }

        #[test]
        fn overlap_matches_point_set_intersection(
            a in 0u64..30, la in 0u64..8, b in 0u64..30, lb in 0u64..8,
        ) {
            let (x, y) = (Segment::new(a, la), Segment::new(b, lb));
            let brute = (x.start()..=x.end()).any(|p| (y.start()..=y.end()).contains(&p));
            prop_assert_eq!(x.overlaps(&y), brute);
        }
    }
}
