//! The shift process (§3.2, §5, Appendix A.3): geometric translations of
//! line segments and the mutual-disjointness event `A(γ̄)`.
//!
//! `n` segments originate at 0 with integer lengths `γ̄ = γ_1 … γ_n`; each is
//! translated by an i.i.d. geometric shift (`Pr[s = k] = 2^-(k+1)`). The
//! event of interest, `A(γ̄)`, is that the shifted closed segments
//! `[s_i, s_i + γ_i]` are pairwise disjoint.
//!
//! In the joined model the segment lengths are the critical-window lengths
//! `Γ = γ + 2` of the reordered threads. Note the paper's convention (which
//! all its constants follow): a segment of length `Γ` occupies `Γ + 1`
//! integer points, so two windows whose endpoints merely touch *overlap* —
//! consistent with §3.2's semantics, where a load observing a value
//! "simultaneous to" the other thread's accesses already manifests the bug.
//!
//! Three independent evaluations of `Pr[A(γ̄)]` are provided and
//! cross-checked:
//!
//! * [`exact::pr_disjoint_perm_sum`] — the literal Theorem 5.1 sum over
//!   `Sym_n` (exponential; `n ≤ 10`);
//! * [`exact::pr_disjoint`] — an `O(2ⁿ·n)` subset dynamic program;
//! * [`ShiftProcess::simulate_disjoint`] — direct Monte-Carlo simulation
//!   (with [`ShiftProcess::simulate_disjoint_into`] as its allocation-free
//!   kernel over a caller-held [`ShiftScratch`]).
//!
//! # Example
//!
//! ```
//! use shiftproc::exact;
//!
//! // Two SC windows (length 2 each): Pr[A] = 1/6 (Theorem 6.2).
//! let p = exact::pr_disjoint(&[2, 2]);
//! assert!((p - 1.0 / 6.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod exchangeable;
mod process;
mod segment;

pub use process::{ShiftProcess, ShiftScratch};
pub use segment::Segment;
