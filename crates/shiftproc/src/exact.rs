//! Exact evaluation of `Pr[A(γ̄)]` (Theorem 5.1).
//!
//! The theorem factors the disjointness probability as
//! `prefactor(n) · T(γ̄)` where
//! `T(γ̄) = Σ_{σ∈Sym_n} Π_{i=1}^{n-1} 2^{-(n-i)·γ_{σ(i)}}`
//! is the permanent of the matrix `w[i][j] = 2^{-(n-i)γ_j}` (the `i = n`
//! factor is 1, so the product may run to `n`). Three evaluators:
//!
//! * [`pr_disjoint_perm_sum`] — literal `n!` enumeration (cross-check);
//! * [`pr_disjoint`] / [`log2_pr_disjoint`] — `O(2ⁿ·n)` subset DP with
//!   magnitude scaling, usable to `n = 22`;
//! * [`pr_disjoint_exact`] — the same DP over exact rationals.

use analytic::bigq::BigRational;
use analytic::shift_law::{log2_prefactor, prefactor_exact, triangle};

/// Largest `n` accepted by the subset-DP evaluators (memory `O(2ⁿ)`).
pub const MAX_SUBSET_N: usize = 22;

/// Largest `n` accepted by the permutation-sum evaluator (time `O(n!·n)`).
pub const MAX_PERM_N: usize = 10;

/// `Pr[A(γ̄)]` by literal enumeration of `Sym_n`.
///
/// # Panics
///
/// Panics if `γ̄` has more than [`MAX_PERM_N`] segments.
#[must_use]
pub fn pr_disjoint_perm_sum(lengths: &[u64]) -> f64 {
    let n = lengths.len();
    assert!(n <= MAX_PERM_N, "permutation sum limited to n <= {MAX_PERM_N}");
    if n <= 1 {
        return 1.0;
    }
    let mut indices: Vec<usize> = (0..n).collect();
    let mut total = 0.0;
    permute(&mut indices, 0, &mut |perm| {
        let mut prod = 1.0;
        for (i, &j) in perm.iter().enumerate() {
            // Position i (0-based) holds the (i+1)-th largest shift; its
            // exponent weight is n - (i+1).
            let weight = (n - 1 - i) as f64;
            prod *= 2f64.powf(-weight * lengths[j] as f64);
        }
        total += prod;
    });
    let prefactor = 2f64.powf(log2_prefactor(n as u32));
    prefactor * total
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// The permanent `T(γ̄)` with lengths reduced by `base` (`γ_j − base`), via
/// the subset dynamic program. Reducing by the minimum length keeps every
/// weight in `[0, 1]` and the accumulator within `n!`, far inside `f64`
/// range.
fn scaled_permanent(lengths: &[u64], base: u64) -> f64 {
    let n = lengths.len();
    let mut f = vec![0.0f64; 1 << n];
    f[0] = 1.0;
    for mask in 1usize..(1 << n) {
        let filled = mask.count_ones() as usize; // position being assigned
        let weight_exp = (n - filled) as f64;
        let mut acc = 0.0;
        for j in 0..n {
            if mask & (1 << j) != 0 {
                let e = (lengths[j] - base) as f64;
                acc += f[mask ^ (1 << j)] * 2f64.powf(-weight_exp * e);
            }
        }
        f[mask] = acc;
    }
    f[(1 << n) - 1]
}

/// `log2 Pr[A(γ̄)]`, stable for probabilities far below `f64`'s smallest
/// positive value.
///
/// # Panics
///
/// Panics if `γ̄` has more than [`MAX_SUBSET_N`] segments.
#[must_use]
pub fn log2_pr_disjoint(lengths: &[u64]) -> f64 {
    let n = lengths.len();
    assert!(n <= MAX_SUBSET_N, "subset DP limited to n <= {MAX_SUBSET_N}");
    if n <= 1 {
        return 0.0;
    }
    let base = *lengths.iter().min().expect("nonempty");
    let pairs = (triangle(n as u64) - n as u64) as f64; // C(n, 2)
    log2_prefactor(n as u32) - base as f64 * pairs + scaled_permanent(lengths, base).log2()
}

/// `Pr[A(γ̄)]` via the subset DP.
///
/// # Panics
///
/// Panics if `γ̄` has more than [`MAX_SUBSET_N`] segments.
#[must_use]
pub fn pr_disjoint(lengths: &[u64]) -> f64 {
    2f64.powf(log2_pr_disjoint(lengths))
}

/// `Pr[A(γ̄)]` as an exact rational.
///
/// # Panics
///
/// Panics if `γ̄` has more than 14 segments (the exact DP is `O(2ⁿ)` big
/// rational operations) or if any length exceeds `i32::MAX`.
#[must_use]
pub fn pr_disjoint_exact(lengths: &[u64]) -> BigRational {
    let n = lengths.len();
    assert!(n <= 14, "exact DP limited to n <= 14");
    if n <= 1 {
        return BigRational::one();
    }
    let mut f = vec![BigRational::zero(); 1 << n];
    f[0] = BigRational::one();
    for mask in 1usize..(1 << n) {
        let filled = mask.count_ones() as usize;
        let weight = (n - filled) as i64;
        let mut acc = BigRational::zero();
        for j in 0..n {
            if mask & (1 << j) != 0 {
                let e = i32::try_from(weight * lengths[j] as i64).expect("exponent fits i32");
                let term = &f[mask ^ (1 << j)] * &BigRational::pow2(-e);
                acc = &acc + &term;
            }
        }
        f[mask] = acc;
    }
    &prefactor_exact(n as u32) * &f[(1 << n) - 1]
}

/// `Pr[A(γ̄)]` for a general geometric shift parameter `q` — Theorem 5.1
/// rerun with `Pr[s = k] = q(1−q)^k`. Writing `r = 1 − q`, the same
/// memorylessness argument gives
///
/// ```text
/// Pr[A(γ̄)] = Π_{i=1}^{n-1} [ q·r^{n-i} / (1 − r^{n+1-i}) ]
///            · Σ_{σ∈Sym_n} Π_{i=1}^{n-1} r^{(n-i)·γ_{σ(i)}}
/// ```
///
/// which reduces to the paper's formula at `q = 1/2`.
///
/// # Panics
///
/// Panics if `q ∉ (0, 1]` or `γ̄` has more than [`MAX_SUBSET_N`] segments.
#[must_use]
pub fn pr_disjoint_with_q(lengths: &[u64], q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
    let n = lengths.len();
    assert!(n <= MAX_SUBSET_N, "subset DP limited to n <= {MAX_SUBSET_N}");
    if n <= 1 {
        return 1.0;
    }
    let r = 1.0 - q;
    if r == 0.0 {
        // Every shift is 0: segments all start at the origin and overlap.
        return 0.0;
    }
    let mut prefactor = 1.0;
    for i in 1..n {
        let w = (n - i) as i32;
        prefactor *= q * r.powi(w) / (1.0 - r.powi(w + 1));
    }
    // Permanent of w[i][j] = r^{(n-i)·γ_j}, by the same subset DP.
    let mut f = vec![0.0f64; 1 << n];
    f[0] = 1.0;
    for mask in 1usize..(1 << n) {
        let filled = mask.count_ones() as usize;
        let weight = (n - filled) as f64;
        let mut acc = 0.0;
        for j in 0..n {
            if mask & (1 << j) != 0 {
                acc += f[mask ^ (1 << j)] * r.powf(weight * lengths[j] as f64);
            }
        }
        f[mask] = acc;
    }
    prefactor * f[(1 << n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytic::bigq::BigRational;
    use proptest::prelude::*;

    #[test]
    fn trivial_cases_are_certain() {
        assert_eq!(pr_disjoint(&[]), 1.0);
        assert_eq!(pr_disjoint(&[7]), 1.0);
        assert_eq!(pr_disjoint_perm_sum(&[7]), 1.0);
        assert_eq!(pr_disjoint_exact(&[7]), BigRational::one());
    }

    #[test]
    fn two_segments_closed_form() {
        // Pr[A(γ1, γ2)] = (1/3)(2^-γ1 + 2^-γ2) (Theorem 6.2's derivation).
        for (g1, g2) in [(2u64, 2u64), (2, 5), (3, 3), (0, 4)] {
            let expect = (2f64.powi(-(g1 as i32)) + 2f64.powi(-(g2 as i32))) / 3.0;
            assert!(
                (pr_disjoint(&[g1, g2]) - expect).abs() < 1e-12,
                "({g1},{g2})"
            );
        }
    }

    #[test]
    fn sc_two_threads_is_one_sixth() {
        assert!((pr_disjoint(&[2, 2]) - 1.0 / 6.0).abs() < 1e-12);
        let exact = pr_disjoint_exact(&[2, 2]);
        assert_eq!(exact, BigRational::ratio(1, 6));
    }

    #[test]
    fn all_evaluators_agree() {
        let cases: &[&[u64]] = &[
            &[2, 2],
            &[2, 3, 4],
            &[0, 0, 0],
            &[5, 1, 3, 2],
            &[2, 2, 2, 2, 2],
            &[1, 6, 2, 4, 3, 5],
        ];
        for lengths in cases {
            let a = pr_disjoint_perm_sum(lengths);
            let b = pr_disjoint(lengths);
            let c = pr_disjoint_exact(lengths).to_f64();
            assert!((a - b).abs() < 1e-10, "{lengths:?}: perm {a} vs dp {b}");
            assert!((b - c).abs() < 1e-10, "{lengths:?}: dp {b} vs exact {c}");
        }
    }

    #[test]
    fn probability_decreases_in_each_length() {
        let mut prev = pr_disjoint(&[2, 2, 2]);
        for g in 3..10u64 {
            let cur = pr_disjoint(&[g, 2, 2]);
            assert!(cur < prev);
            prev = cur;
        }
    }

    #[test]
    fn log_space_survives_huge_lengths() {
        let lengths = vec![1000u64; 12];
        let lp = log2_pr_disjoint(&lengths);
        assert!(lp < -60_000.0);
        assert!(lp.is_finite());
    }

    #[test]
    fn log_space_matches_linear_where_representable() {
        let lengths = [2u64, 3, 5, 2, 4];
        let lin = pr_disjoint(&lengths);
        assert!((log2_pr_disjoint(&lengths) - lin.log2()).abs() < 1e-9);
    }

    #[test]
    fn sc_n_threads_matches_shift_law() {
        use analytic::shift_law::survival_identical_segments_exact;
        for n in 2..=10u32 {
            let lengths = vec![2u64; n as usize];
            let dp = log2_pr_disjoint(&lengths);
            let exact = survival_identical_segments_exact(n, 2).log2_abs();
            assert!((dp - exact).abs() < 1e-8, "n={n}: {dp} vs {exact}");
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn perm_sum_guards_n() {
        let _ = pr_disjoint_perm_sum(&[1; 11]);
    }

    #[test]
    fn general_q_reduces_to_canonical_at_half() {
        for lengths in [&[2u64, 2][..], &[2, 3, 4], &[0, 1, 5, 2]] {
            let canonical = pr_disjoint(lengths);
            let general = pr_disjoint_with_q(lengths, 0.5);
            assert!(
                (canonical - general).abs() < 1e-12,
                "{lengths:?}: {canonical} vs {general}"
            );
        }
    }

    #[test]
    fn general_q_two_segments_closed_form() {
        // Pr[A] = (1-q)/(2-q) · ((1-q)^γ1 + (1-q)^γ2).
        for q in [0.2f64, 0.5, 0.8] {
            let r = 1.0 - q;
            for (g1, g2) in [(2u64, 2u64), (1, 4)] {
                let expect = r / (2.0 - q) * (r.powi(g1 as i32) + r.powi(g2 as i32));
                let got = pr_disjoint_with_q(&[g1, g2], q);
                assert!((got - expect).abs() < 1e-12, "q={q} ({g1},{g2})");
            }
        }
    }

    #[test]
    fn general_q_degenerate_ends() {
        // q = 1: all shifts zero, everything collides.
        assert_eq!(pr_disjoint_with_q(&[2, 2], 1.0), 0.0);
        // One segment is always fine.
        assert_eq!(pr_disjoint_with_q(&[7], 0.3), 1.0);
        // Small q spreads segments out: survival increases as q decreases.
        let mut prev = 0.0;
        for q in [0.9, 0.6, 0.3, 0.1] {
            let cur = pr_disjoint_with_q(&[2, 2, 2], q);
            assert!(cur > prev, "q={q}");
            prev = cur;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn dp_matches_perm_sum(lengths in proptest::collection::vec(0u64..8, 2..7)) {
            let a = pr_disjoint_perm_sum(&lengths);
            let b = pr_disjoint(&lengths);
            prop_assert!((a - b).abs() < 1e-10);
        }

        #[test]
        fn exact_matches_dp(lengths in proptest::collection::vec(0u64..8, 2..6)) {
            let a = pr_disjoint_exact(&lengths).to_f64();
            let b = pr_disjoint(&lengths);
            prop_assert!((a - b).abs() < 1e-10);
        }

        #[test]
        fn permutation_invariance(mut lengths in proptest::collection::vec(0u64..8, 2..7)) {
            let a = pr_disjoint(&lengths);
            lengths.rotate_left(1);
            prop_assert!((pr_disjoint(&lengths) - a).abs() < 1e-12);
        }

        #[test]
        fn is_a_probability(lengths in proptest::collection::vec(0u64..10, 2..7)) {
            let p = pr_disjoint(&lengths);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }
}
