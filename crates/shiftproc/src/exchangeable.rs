//! The Theorem 6.1 exchangeable-lengths estimator.
//!
//! When the segment lengths `Γ̄` are identically distributed (they needn't be
//! independent — the joined model's windows share one random program),
//! Theorem 6.1 collapses the permutation sum:
//!
//! ```text
//! Pr[A(Γ̄)] = c(n) · 2^{-C(n+1,2)} · n! · E[Π_{i=1}^{n-1} 2^{-i·Γ_i}]
//! ```
//!
//! This yields a *Rao-Blackwellised* survival estimator: sample window
//! vectors `Γ̄` by Monte Carlo (cheap), evaluate the per-sample factor in
//! `O(n)`, and fold the enormous deterministic prefactor in log space. A
//! direct simulation of the event `A` would need `e^{+Θ(n²)}` samples to see
//! a single success; this estimator needs only enough samples to pin down
//! `E[Π 2^{-iΓ′_i}]`, a bounded quantity.

use analytic::binom::ln_factorial;
use analytic::shift_law::{log2_prefactor, triangle};

/// The per-sample factor `Π_{i=1}^{n-1} 2^{-(n-i)(Γ_i − base)}`, with the
/// deterministic `2^{-base·C(n,2)}` part factored out so the result stays in
/// `(0, 1]` for any window vector with `Γ_i ≥ base`.
///
/// Positions are weighted `n−1, n−2, …, 1, 0` in input order — valid because
/// exchangeability makes every assignment of weights to threads equal in
/// expectation (that is Theorem 6.1's content).
///
/// # Panics
///
/// Panics if some length is below `base`.
#[must_use]
pub fn sample_factor(lengths: &[u64], base: u64) -> f64 {
    let n = lengths.len();
    let mut log2_sum = 0.0;
    for (i, &g) in lengths.iter().enumerate() {
        assert!(g >= base, "length {g} below baseline {base}");
        let weight = (n - 1 - i) as f64;
        log2_sum -= weight * (g - base) as f64;
    }
    2f64.powf(log2_sum)
}

/// Assembles `log2 Pr[A]` from the empirical mean of [`sample_factor`]
/// values.
///
/// # Panics
///
/// Panics if `n == 0` or `mean_factor` is not positive.
#[must_use]
pub fn log2_survival(n: u32, base: u64, mean_factor: f64) -> f64 {
    assert!(n >= 1, "need at least one thread");
    assert!(mean_factor > 0.0, "mean factor must be positive");
    let ln2 = std::f64::consts::LN_2;
    let pairs = (triangle(u64::from(n)) - u64::from(n)) as f64; // C(n, 2)
    log2_prefactor(n) + ln_factorial(u64::from(n)) / ln2 - base as f64 * pairs
        + mean_factor.log2()
}

/// The fully deterministic special case: every window has length `base`
/// exactly (Sequential Consistency with `base = 2`).
#[must_use]
pub fn log2_survival_deterministic(n: u32, base: u64) -> f64 {
    log2_survival(n, base, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn factor_is_one_for_baseline_vector() {
        assert_eq!(sample_factor(&[2, 2, 2], 2), 1.0);
        assert_eq!(sample_factor(&[5], 5), 1.0);
    }

    #[test]
    fn factor_weights_by_position() {
        // n = 3: weights 2, 1, 0.
        let f = sample_factor(&[3, 4, 9], 2);
        assert!((f - 2f64.powi(-4)).abs() < 1e-15); // weights 2*1 + 1*2
        // The last position never contributes.
        assert_eq!(sample_factor(&[2, 2, 100], 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "below baseline")]
    fn factor_rejects_sub_baseline() {
        let _ = sample_factor(&[1, 2], 2);
    }

    #[test]
    fn deterministic_matches_exact_dp() {
        for n in 2..=10u32 {
            let lengths = vec![2u64; n as usize];
            let a = log2_survival_deterministic(n, 2);
            let b = exact::log2_pr_disjoint(&lengths);
            assert!((a - b).abs() < 1e-8, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn estimator_agrees_with_exact_on_random_exchangeable_lengths() {
        // Theorem 6.1 check: sample iid geometric-plus-2 lengths; compare
        // (a) the mean of exact Pr[A(γ̄)] over samples with
        // (b) the exchangeable estimator from the same samples.
        let n = 4usize;
        let mut rng = SmallRng::seed_from_u64(21);
        let samples = 200_000;
        let mut exact_mean = 0.0;
        let mut factor_mean = 0.0;
        for _ in 0..samples {
            let lengths: Vec<u64> = (0..n)
                .map(|_| {
                    let mut k = 2;
                    while rng.gen_bool(0.5) {
                        k += 1;
                    }
                    k
                })
                .collect();
            exact_mean += exact::pr_disjoint(&lengths);
            factor_mean += sample_factor(&lengths, 2);
        }
        exact_mean /= samples as f64;
        factor_mean /= samples as f64;
        let estimated = 2f64.powf(log2_survival(n as u32, 2, factor_mean));
        let rel = (estimated - exact_mean).abs() / exact_mean;
        assert!(
            rel < 0.02,
            "Theorem 6.1 estimator off by {rel}: {estimated} vs {exact_mean}"
        );
    }

    #[test]
    fn survival_shrinks_superexponentially_in_n() {
        let mut prev = 0.0;
        for n in 2..=16u32 {
            let cur = log2_survival_deterministic(n, 2);
            assert!(cur < prev - 2.5, "n={n}");
            prev = cur;
        }
    }
}
