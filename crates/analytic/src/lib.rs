//! Exact mathematics for the PODC 2011 memory-model reliability analysis.
//!
//! This crate is pure math — no randomness, no I/O. It provides:
//!
//! * [`bigq`] — arbitrary-precision unsigned integers, signed integers, and
//!   rationals (`BigUint`, `BigInt`, `BigRational`). The paper's Theorem 5.1
//!   prefactor contains `2^-binom(n+1,2)`, which overflows `i128` by
//!   `n ≈ 16`; exact rationals keep every reported constant exact.
//! * [`binom`] — binomial coefficients (exact and floating point).
//! * [`partitions`] — the bounded partition count `φ(x, y, z)` of Claim 4.4.
//! * [`geom`] — the geometric shift distribution `Pr[s = k] = 2^-(k+1)`.
//! * [`general`] — every law generalised to arbitrary `(p, s, q)` (the §7
//!   robustness programme).
//! * [`recurrence`] — Claim 4.3's steady-state bottom-of-program store
//!   fraction.
//! * [`window_law`] — Theorem 4.1: the critical-window laws for SC, WO, TSO
//!   (bounds and partition series) and the PSO extension.
//! * [`lemma42`] — Lemma 4.2: bounds and series for `Pr[L_µ]`.
//! * [`shift_law`] — Theorem 5.1 / Corollary 5.2 closed forms (`c(n)` etc.).
//! * [`thm62`] — the headline two-thread survival constants.
//! * [`thm63`] — the large-`n` asymptotics `Pr[A] = e^{-n²(1+o(1))}`.
//! * [`special`] — `ln Γ`, regularised incomplete gamma, chi-square CDF.
//!
//! # Example
//!
//! ```
//! use analytic::thm62;
//!
//! // Theorem 6.2: survival probabilities for n = 2 threads.
//! assert!((thm62::sc_survival().to_f64() - 1.0 / 6.0).abs() < 1e-15);
//! assert!((thm62::wo_survival().to_f64() - 7.0 / 54.0).abs() < 1e-15);
//! let (lo, hi) = thm62::tso_survival_bounds();
//! assert!(lo.to_f64() > 0.1315 && hi.to_f64() < 0.1369);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigq;
pub mod binom;
pub mod general;
pub mod geom;
pub mod lemma42;
pub mod partitions;
pub mod recurrence;
pub mod shift_law;
pub mod special;
pub mod thm62;
pub mod thm63;
pub mod window_law;

pub use bigq::{BigInt, BigRational, BigUint};
