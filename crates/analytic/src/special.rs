//! Special functions: `ln Γ`, incomplete gamma, chi-square and normal CDFs.
//!
//! These support the statistical machinery in the `montecarlo` crate
//! (chi-square goodness-of-fit of simulated window histograms against the
//! Theorem 4.1 laws; normal-approximation confidence intervals).

/// `ln Γ(x)` for `x > 0`, via the Lanczos approximation (g = 7, n = 9).
///
/// Absolute error below `1e-13` over the range used here.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// ```
/// // Γ(5) = 4! = 24.
/// assert!((analytic::special::ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7 (quoted at full published precision).
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the power series for `x < a + 1` and the Lentz continued fraction
/// for the complement otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularised upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    // Modified Lentz algorithm for the continued fraction
    // Q(a,x) = e^{-x} x^a / Γ(a) · 1/(x+1-a- 1·(1-a)/(x+3-a- …)).
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// CDF of the chi-square distribution with `k` degrees of freedom.
///
/// ```
/// // Median of chi-square(2) is 2 ln 2.
/// let med = analytic::special::chi_square_cdf(2.0 * 2f64.ln(), 2);
/// assert!((med - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `k == 0` or `x < 0`.
#[must_use]
pub fn chi_square_cdf(x: f64, k: u64) -> f64 {
    assert!(k > 0, "chi-square needs at least one degree of freedom");
    gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Survival function `Pr[X > x]` of the chi-square distribution with `k`
/// degrees of freedom (the goodness-of-fit p-value).
#[must_use]
pub fn chi_square_sf(x: f64, k: u64) -> f64 {
    assert!(k > 0, "chi-square needs at least one degree of freedom");
    gamma_q(k as f64 / 2.0, x / 2.0)
}

/// The error function `erf(x)`, via `P(1/2, x²)` with sign.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal CDF `Φ(x)`.
///
/// ```
/// assert!((analytic::special::normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((analytic::special::normal_cdf(1.959963984540054) - 0.975).abs() < 1e-9);
/// ```
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-11,
                "Γ({n}) mismatch"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_q_complement() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            for x in [0.1, 1.0, 5.0, 20.0] {
                let (p, q) = (gamma_p(a, x), gamma_q(a, x));
                assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.0, 0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_known_quantiles() {
        // Pr[χ²₁ > 3.841] ≈ 0.05.
        assert!((chi_square_sf(3.841_458_820_694_124, 1) - 0.05).abs() < 1e-9);
        // Pr[χ²₅ > 11.0705] ≈ 0.05.
        assert!((chi_square_sf(11.070_497_693_516_35, 5) - 0.05).abs() < 1e-9);
        // CDF and SF are complementary.
        assert!((chi_square_cdf(4.2, 3) + chi_square_sf(4.2, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_symmetry_and_known_value() {
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        for x in [0.3, 1.1, 2.4] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_monotone() {
        let xs = [-3.0, -1.0, 0.0, 0.5, 2.0, 4.0];
        let mut prev = 0.0;
        for &x in &xs {
            let v = normal_cdf(x);
            assert!(v > prev);
            prev = v;
        }
        assert!((normal_cdf(-1.0) + normal_cdf(1.0) - 1.0).abs() < 1e-12);
    }
}
