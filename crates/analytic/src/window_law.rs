//! Theorem 4.1: the critical-window growth laws `Pr[B_γ]`.
//!
//! `B_γ` is the event that settling leaves exactly `γ` instructions strictly
//! between the critical LD and the critical ST. The paper proves:
//!
//! * **SC** — `Pr[B_0] = 1`;
//! * **WO** — `Pr[B_0] = 2/3`, `Pr[B_γ] = 2^-γ/3` for `γ > 0`;
//! * **TSO** — `Pr[B_0] = 2/3`,
//!   `Pr[B_γ] = (6/7)·4^-γ + R(γ)·2^-γ` with `0 ≤ R(γ) ≤ 2/21` for `γ > 0`.
//!
//! Beyond the paper's bounds, [`TsoLaw`] evaluates the TSO law with the
//! exact partition series for `Pr[L_µ]` (see [`crate::lemma42`]), and
//! [`PsoLaw`] extends the analysis to Partial Store Order (the result the
//! paper's footnote 4 omits "for brevity"): under PSO the type string
//! evolves exactly as under TSO (ST/ST swaps permute equal symbols), and the
//! critical ST afterwards climbs back through the `j` stores the critical LD
//! had passed, shrinking the window.

use crate::lemma42::{pr_l_mu_series_all, DEFAULT_Q_MAX};
use memmodel::MemoryModel;

/// Default truncation depth for the `µ`-sums of the TSO/PSO series.
/// Truncation error is below `2^-µ_max`.
pub const DEFAULT_MU_MAX: u32 = 96;

/// Sequential Consistency: the window never grows.
#[must_use]
pub fn sc_pmf(gamma: u64) -> f64 {
    f64::from(u8::from(gamma == 0))
}

/// Weak Ordering: `2/3` at zero, `2^-γ/3` beyond.
#[must_use]
pub fn wo_pmf(gamma: u64) -> f64 {
    if gamma == 0 {
        2.0 / 3.0
    } else {
        2f64.powi(-(gamma as i32)) / 3.0
    }
}

/// Total Store Order: the paper's `(lower, upper)` bounds
/// `(6/7)4^-γ ≤ Pr[B_γ] ≤ (6/7)4^-γ + (2/21)2^-γ` (exact `2/3` at zero).
#[must_use]
pub fn tso_pmf_bounds(gamma: u64) -> (f64, f64) {
    if gamma == 0 {
        return (2.0 / 3.0, 2.0 / 3.0);
    }
    let four = 4f64.powi(-(gamma as i32));
    let two = 2f64.powi(-(gamma as i32));
    let main = (6.0 / 7.0) * four;
    (main, main + (2.0 / 21.0) * two)
}

/// `Pr[B_γ | L_µ]` under TSO: the critical LD must pass `γ` contiguous STs
/// and then stop.
///
/// * `µ < γ`: impossible (`0`);
/// * `µ = γ`: `2^-γ` (after the `γ`-th ST the next instruction is a LD, so
///   the climb stops automatically);
/// * `µ > γ`: `2^-(γ+1)` (the instruction above the `γ`-th ST is another ST,
///   so stopping costs one failed swap).
///
/// The `γ = 0, µ = 0` case is `1`.
#[must_use]
pub fn tso_b_given_l(gamma: u64, mu: u64) -> f64 {
    if mu < gamma {
        0.0
    } else if mu == gamma {
        2f64.powi(-(gamma as i32))
    } else {
        2f64.powi(-(gamma as i32) - 1)
    }
}

/// The TSO critical-window law, evaluated once via the partition series and
/// cached: `Pr[B_γ] = Σ_{µ≥γ} Pr[B_γ|L_µ]·Pr[L_µ]`.
///
/// # Example
///
/// ```
/// use analytic::window_law::TsoLaw;
///
/// let law = TsoLaw::new();
/// assert!((law.pmf(0) - 2.0 / 3.0).abs() < 1e-10);
/// let (lo, hi) = analytic::window_law::tso_pmf_bounds(3);
/// assert!(law.pmf(3) >= lo && law.pmf(3) <= hi);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TsoLaw {
    /// `Pr[L_µ]` for `µ = 0..=mu_max`.
    l: Vec<f64>,
}

impl TsoLaw {
    /// The law at default truncation depths (accurate to ~`2^-96`).
    #[must_use]
    pub fn new() -> TsoLaw {
        TsoLaw::with_depth(DEFAULT_MU_MAX, DEFAULT_Q_MAX)
    }

    /// The law with explicit series truncation depths.
    #[must_use]
    pub fn with_depth(mu_max: u32, q_max: u32) -> TsoLaw {
        TsoLaw {
            l: pr_l_mu_series_all(mu_max, q_max),
        }
    }

    /// The cached `Pr[L_µ]` values.
    #[must_use]
    pub fn pr_l(&self) -> &[f64] {
        &self.l
    }

    /// `Pr[B_γ]`.
    #[must_use]
    pub fn pmf(&self, gamma: u64) -> f64 {
        (gamma..self.l.len() as u64)
            .map(|mu| tso_b_given_l(gamma, mu) * self.l[mu as usize])
            .sum()
    }
}

impl Default for TsoLaw {
    fn default() -> TsoLaw {
        TsoLaw::new()
    }
}

/// The probability that the critical ST, climbing back under PSO through the
/// `j` stores the critical LD passed, passes exactly `k` of them.
///
/// The climb stops at the first failed swap, or automatically at the
/// critical LD (same address): `2^-(k+1)` for `k < j`, `2^-j` for `k = j`.
#[must_use]
pub fn pso_climbback_pmf(passed: u64, j: u64) -> f64 {
    if passed > j {
        0.0
    } else if passed == j {
        2f64.powi(-(j as i32))
    } else {
        2f64.powi(-(passed as i32) - 1)
    }
}

/// The PSO critical-window law: the TSO law convolved with the critical
/// store's climb-back,
/// `Pr[B_γ^PSO] = Σ_{j≥γ} Pr[B_j^TSO] · Pr[climb back j − γ | j]`.
///
/// This is the result the paper's footnote 4 omits. PSO's extra ST/ST
/// relaxation cannot change the LD/ST *type string* during settling (swapping
/// two STs is a no-op on the string), so the critical LD's climb is
/// distributed exactly as under TSO; the new effect is the critical store
/// climbing back up through the passed stores.
#[derive(Debug, Clone, PartialEq)]
pub struct PsoLaw {
    /// Cached `Pr[B_γ^PSO]` for `γ = 0..=mu_max`.
    pmf: Vec<f64>,
}

impl PsoLaw {
    /// The law at default truncation depths.
    #[must_use]
    pub fn new() -> PsoLaw {
        PsoLaw::from_tso(&TsoLaw::new())
    }

    /// Builds the PSO law from a (possibly custom-depth) TSO law.
    #[must_use]
    pub fn from_tso(tso: &TsoLaw) -> PsoLaw {
        let depth = tso.pr_l().len() as u64;
        let tso_pmf: Vec<f64> = (0..depth).map(|g| tso.pmf(g)).collect();
        let pmf = (0..depth)
            .map(|gamma| {
                (gamma..depth)
                    .map(|j| tso_pmf[j as usize] * pso_climbback_pmf(j - gamma, j))
                    .sum()
            })
            .collect();
        PsoLaw { pmf }
    }

    /// `Pr[B_γ^PSO]`.
    #[must_use]
    pub fn pmf(&self, gamma: u64) -> f64 {
        usize::try_from(gamma)
            .ok()
            .and_then(|g| self.pmf.get(g))
            .copied()
            .unwrap_or(0.0)
    }
}

impl Default for PsoLaw {
    fn default() -> PsoLaw {
        PsoLaw::new()
    }
}

/// A cached window law for every named memory model.
///
/// Building one [`WindowLaws`] costs one partition-series evaluation; all
/// subsequent pmf queries are O(depth) at worst.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowLaws {
    tso: TsoLaw,
    pso: PsoLaw,
}

impl WindowLaws {
    /// Laws at default truncation depths.
    #[must_use]
    pub fn new() -> WindowLaws {
        let tso = TsoLaw::new();
        let pso = PsoLaw::from_tso(&tso);
        WindowLaws { tso, pso }
    }

    /// `Pr[B_γ]` under `model`; `None` for custom models (no closed form —
    /// use Monte-Carlo estimation from the `settle` crate).
    #[must_use]
    pub fn pmf(&self, model: MemoryModel, gamma: u64) -> Option<f64> {
        match model {
            MemoryModel::Sc => Some(sc_pmf(gamma)),
            MemoryModel::Wo => Some(wo_pmf(gamma)),
            MemoryModel::Tso => Some(self.tso.pmf(gamma)),
            MemoryModel::Pso => Some(self.pso.pmf(gamma)),
            MemoryModel::Custom(_) => None,
        }
    }

    /// `E[2^-Γ]` where `Γ = γ + 2` is the full critical-window length (both
    /// critical instructions included) — the quantity Theorem 6.2 needs:
    /// `Pr[A] = (2/3)·E[2^-Γ]` for two threads.
    #[must_use]
    pub fn expected_two_pow_neg_window(&self, model: MemoryModel, gamma_max: u64) -> Option<f64> {
        let mut total = 0.0;
        for gamma in 0..=gamma_max {
            total += self.pmf(model, gamma)? * 2f64.powi(-(gamma as i32) - 2);
        }
        Some(total)
    }

    /// The underlying TSO law.
    #[must_use]
    pub fn tso(&self) -> &TsoLaw {
        &self.tso
    }

    /// The underlying PSO law.
    #[must_use]
    pub fn pso(&self) -> &PsoLaw {
        &self.pso
    }
}

impl Default for WindowLaws {
    fn default() -> WindowLaws {
        WindowLaws::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws() -> WindowLaws {
        WindowLaws::new()
    }

    #[test]
    fn sc_is_a_point_mass() {
        assert_eq!(sc_pmf(0), 1.0);
        for g in 1..10 {
            assert_eq!(sc_pmf(g), 0.0);
        }
    }

    #[test]
    fn wo_normalises_and_matches_theorem() {
        let total: f64 = (0..200).map(wo_pmf).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((wo_pmf(0) - 2.0 / 3.0).abs() < 1e-15);
        assert!((wo_pmf(1) - 1.0 / 6.0).abs() < 1e-15);
        assert!((wo_pmf(3) - 1.0 / 24.0).abs() < 1e-15);
    }

    #[test]
    fn tso_series_within_paper_bounds() {
        let law = TsoLaw::new();
        for gamma in 0..25u64 {
            let v = law.pmf(gamma);
            let (lo, hi) = tso_pmf_bounds(gamma);
            assert!(
                v >= lo - 1e-10 && v <= hi + 1e-10,
                "γ={gamma}: {v} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn tso_series_normalises() {
        let law = TsoLaw::new();
        let total: f64 = (0..96).map(|g| law.pmf(g)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn tso_zero_is_two_thirds() {
        assert!((TsoLaw::new().pmf(0) - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn pso_normalises() {
        let law = PsoLaw::new();
        let total: f64 = (0..96).map(|g| law.pmf(g)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn pso_concentrates_more_than_tso_at_zero() {
        // The climb-back can only shrink windows, so PSO puts more mass on
        // γ = 0 than TSO and less on every large γ.
        let l = laws();
        let (tso, pso) = (l.tso(), l.pso());
        assert!(pso.pmf(0) > tso.pmf(0));
        for gamma in 3..20u64 {
            assert!(
                pso.pmf(gamma) < tso.pmf(gamma),
                "γ={gamma}: PSO {} vs TSO {}",
                pso.pmf(gamma),
                tso.pmf(gamma)
            );
        }
    }

    #[test]
    fn climbback_is_a_distribution() {
        for j in 0..12u64 {
            let total: f64 = (0..=j).map(|k| pso_climbback_pmf(k, j)).sum();
            assert!((total - 1.0).abs() < 1e-12, "j={j}");
        }
        assert_eq!(pso_climbback_pmf(3, 2), 0.0);
    }

    #[test]
    fn stochastic_ordering_of_window_tails() {
        // Window tails order as SC ≤ PSO ≤ TSO ≤ WO. PSO sits *below* TSO
        // despite being the weaker model, because its extra ST/ST relaxation
        // lets the critical store climb back and shrink the window.
        let l = laws();
        let tail = |model: MemoryModel, g0: u64| -> f64 {
            (g0..96).map(|g| l.pmf(model, g).unwrap()).sum()
        };
        for g0 in 1..15u64 {
            let sc = tail(MemoryModel::Sc, g0);
            let tso = tail(MemoryModel::Tso, g0);
            let pso = tail(MemoryModel::Pso, g0);
            let wo = tail(MemoryModel::Wo, g0);
            assert!(sc <= pso + 1e-12, "γ≥{g0}");
            assert!(pso <= tso + 1e-12, "γ≥{g0}");
            assert!(tso <= wo + 1e-12, "γ≥{g0}");
        }
    }

    #[test]
    fn pmf_dispatch_covers_named_models() {
        let l = laws();
        for model in MemoryModel::NAMED {
            assert!(l.pmf(model, 0).is_some());
        }
        assert!(l
            .pmf(MemoryModel::Custom(memmodel::ReorderMatrix::all()), 0)
            .is_none());
    }

    #[test]
    fn expected_window_terms_match_theorem_62() {
        let l = laws();
        // SC: E[2^-Γ] = 1/4; WO: 7/36; TSO ∈ (1/6 + 3/98, 1/6 + 3/98 + 1/126).
        let sc = l.expected_two_pow_neg_window(MemoryModel::Sc, 90).unwrap();
        assert!((sc - 0.25).abs() < 1e-12);
        let wo = l.expected_two_pow_neg_window(MemoryModel::Wo, 90).unwrap();
        assert!((wo - 7.0 / 36.0).abs() < 1e-12);
        let tso = l.expected_two_pow_neg_window(MemoryModel::Tso, 90).unwrap();
        assert!(tso > 1.0 / 6.0 + 3.0 / 98.0 - 1e-10);
        assert!(tso < 1.0 / 6.0 + 3.0 / 98.0 + 1.0 / 126.0 + 1e-10);
    }

    #[test]
    fn truncation_depth_is_converged() {
        let coarse = TsoLaw::with_depth(48, 48);
        let fine = TsoLaw::with_depth(128, 96);
        for gamma in 0..6u64 {
            assert!(
                (coarse.pmf(gamma) - fine.pmf(gamma)).abs() < 1e-10,
                "γ={gamma}"
            );
        }
    }
}
