//! Theorem 6.2: survival probabilities for two threads.
//!
//! For `n = 2` the disjointness probability collapses to
//! `Pr[A] = (2/3)·E[2^-Γ]` where `Γ = γ + 2` is the critical-window length.
//! The paper derives:
//!
//! | model | `Pr[A]` |
//! |---|---|
//! | Sequential Consistency | `1/6 ≈ 0.1666` |
//! | Total Store Order | `(58/441, 58/441 + 1/189) ⊂ (0.1315, 0.1369)` |
//! | Weak Ordering | `7/54 ≈ 0.1296` |

use crate::bigq::BigRational;
use crate::window_law;
use memmodel::MemoryModel;

/// SC two-thread survival: `1/6` exactly.
#[must_use]
pub fn sc_survival() -> BigRational {
    BigRational::ratio(1, 6)
}

/// WO two-thread survival: `7/54` exactly.
#[must_use]
pub fn wo_survival() -> BigRational {
    BigRational::ratio(7, 54)
}

/// TSO two-thread survival bounds: `(58/441, 58/441 + 1/189)` exactly.
#[must_use]
pub fn tso_survival_bounds() -> (BigRational, BigRational) {
    let lo = BigRational::ratio(58, 441);
    let hi = &lo + &BigRational::ratio(1, 189);
    (lo, hi)
}

/// SC's `E[2^-Γ]`: `1/4` (the window is always exactly the two critical
/// instructions).
#[must_use]
pub fn sc_expected_window_term() -> BigRational {
    BigRational::ratio(1, 4)
}

/// WO's `E[2^-Γ]`: `7/36`.
#[must_use]
pub fn wo_expected_window_term() -> BigRational {
    BigRational::ratio(7, 36)
}

/// TSO's `E[2^-Γ]` bounds: `(1/6 + 3/98, 1/6 + 3/98 + 1/126)`.
#[must_use]
pub fn tso_expected_window_term_bounds() -> (BigRational, BigRational) {
    let lo = &BigRational::ratio(1, 6) + &BigRational::ratio(3, 98);
    let hi = &lo + &BigRational::ratio(1, 126);
    (lo, hi)
}

/// Survival bounds `(lo, hi)` for any named model; `lo == hi` where the
/// paper's value is exact. Returns `None` for custom models.
#[must_use]
pub fn survival_bounds(model: MemoryModel) -> Option<(BigRational, BigRational)> {
    match model {
        MemoryModel::Sc => Some((sc_survival(), sc_survival())),
        MemoryModel::Wo => Some((wo_survival(), wo_survival())),
        MemoryModel::Tso => Some(tso_survival_bounds()),
        MemoryModel::Pso => {
            // Derived numerically from the PSO window series (footnote 4's
            // omitted result); widen by the series truncation error.
            let v = survival_from_window_series(MemoryModel::Pso)?;
            let eps = 1e-9;
            Some((
                BigRational::ratio(((v - eps) * 1e12) as i64, 1_000_000_000_000),
                BigRational::ratio(((v + eps) * 1e12) as i64, 1_000_000_000_000),
            ))
        }
        MemoryModel::Custom(_) => None,
    }
}

/// `Pr[A] = (2/3)·E[2^-Γ]` computed from the window-law series — an
/// independent cross-check of the exact constants (and the only analytic
/// route for PSO).
///
/// Builds a fresh [`window_law::WindowLaws`]; callers evaluating many models
/// should build one and use
/// [`window_law::WindowLaws::expected_two_pow_neg_window`] directly.
#[must_use]
pub fn survival_from_window_series(model: MemoryModel) -> Option<f64> {
    let laws = window_law::WindowLaws::new();
    let e = laws.expected_two_pow_neg_window(model, 90)?;
    Some(e * 2.0 / 3.0)
}

/// The paper's headline comparison: survival ratio SC / WO = `9/7`
/// ("correct behavior is somewhat more likely than under sequential
/// consistency").
#[must_use]
pub fn sc_over_wo_ratio() -> BigRational {
    &sc_survival() / &wo_survival()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_constants() {
        assert!((sc_survival().to_f64() - 0.166_666_666_666).abs() < 1e-9);
        assert!((wo_survival().to_f64() - 0.129_629_629_629).abs() < 1e-9);
        let (lo, hi) = tso_survival_bounds();
        assert!(lo.to_f64() > 0.1315);
        assert!(hi.to_f64() < 0.1369);
        assert!(lo < hi);
    }

    #[test]
    fn survival_is_two_thirds_of_window_term() {
        let two_thirds = BigRational::ratio(2, 3);
        assert_eq!(&two_thirds * &sc_expected_window_term(), sc_survival());
        assert_eq!(&two_thirds * &wo_expected_window_term(), wo_survival());
        let (elo, ehi) = tso_expected_window_term_bounds();
        let (slo, shi) = tso_survival_bounds();
        assert_eq!(&two_thirds * &elo, slo);
        assert_eq!(&two_thirds * &ehi, shi);
    }

    #[test]
    fn series_reproduces_exact_constants() {
        let sc = survival_from_window_series(MemoryModel::Sc).unwrap();
        assert!((sc - 1.0 / 6.0).abs() < 1e-12);
        let wo = survival_from_window_series(MemoryModel::Wo).unwrap();
        assert!((wo - 7.0 / 54.0).abs() < 1e-12);
        let tso = survival_from_window_series(MemoryModel::Tso).unwrap();
        let (lo, hi) = tso_survival_bounds();
        assert!(tso > lo.to_f64() - 1e-10 && tso < hi.to_f64() + 1e-10);
    }

    #[test]
    fn ordering_sc_pso_tso_wo() {
        // Survival: SC > PSO > TSO > WO. (PSO beats TSO because its window
        // shrinks back; both sit between SC and WO.)
        let sc = survival_from_window_series(MemoryModel::Sc).unwrap();
        let pso = survival_from_window_series(MemoryModel::Pso).unwrap();
        let tso = survival_from_window_series(MemoryModel::Tso).unwrap();
        let wo = survival_from_window_series(MemoryModel::Wo).unwrap();
        assert!(sc > pso && pso > tso && tso > wo, "{sc} {pso} {tso} {wo}");
    }

    #[test]
    fn tso_closer_to_wo_than_sc() {
        // The paper's observation: TSO's reliability is substantially closer
        // to WO's than to SC's.
        let tso = survival_from_window_series(MemoryModel::Tso).unwrap();
        let sc = sc_survival().to_f64();
        let wo = wo_survival().to_f64();
        assert!((tso - wo).abs() < (tso - sc).abs());
    }

    #[test]
    fn ratio_nine_sevenths() {
        assert_eq!(sc_over_wo_ratio(), BigRational::ratio(9, 7));
    }

    #[test]
    fn bounds_cover_all_named_models() {
        for model in MemoryModel::NAMED {
            let (lo, hi) = survival_bounds(model).unwrap();
            assert!(lo <= hi);
            assert!(lo.to_f64() > 0.12 && hi.to_f64() < 0.17, "{model}");
        }
        assert!(survival_bounds(MemoryModel::Custom(memmodel::ReorderMatrix::all())).is_none());
    }
}
