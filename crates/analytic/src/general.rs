//! Generalised laws for arbitrary model parameters — the §7 robustness
//! programme.
//!
//! The paper fixes `p = s = 1/2` "for ease of exposition" and notes that
//! "as long as `s` and `p` are constant, the key theorems and conclusions
//! derived in this paper remain fundamentally the same (though some of the
//! numerical values change somewhat)" (§3.1.2), and §7 conjectures the
//! results are robust to model changes. This module generalises every law:
//!
//! * store probability `p` (program model),
//! * swap probability `s` (settling model, footnote 3's uniform case),
//! * geometric shift parameter `q` (interleaving model).
//!
//! Closed forms (derivations parallel the paper's proofs):
//!
//! * **WO window law**: `Pr[B_0] = 1/(1+s)`,
//!   `Pr[B_γ] = s^γ (1−s)/(1+s)` for `γ > 0` — the `p` drops out, exactly
//!   as at the canonical parameters.
//! * **Claim 4.3 limit**: `L(p,s) = p / (1 − (1−p)s)`.
//! * **TSO partition series**:
//!   `Pr[L_µ] = p^µ · Σ_q (1−p)^q G_µ(q; s) (1 − L(p,s) s^q)` with
//!   `G_µ(q; x) = Σ_δ φ(δ,q,µ) x^δ`, and `Pr[L_0] = 1 − L(p,s)`;
//!   `Pr[B_γ|L_µ]` is `s^γ` at `µ = γ`, `s^γ(1−s)` beyond.
//! * **PSO climb-back**: `s^k(1−s)` for `k < j`, `s^j` at `k = j`.
//! * **two-thread survival** with shift parameter `q`:
//!   `Pr[A] = 2(1−q)/(2−q) · E[(1−q)^Γ]`.

use crate::window_law::tso_pmf_bounds;
use memmodel::MemoryModel;

/// Generalised model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Store probability of the program model (`Pr[ST] = p`).
    pub p: f64,
    /// Swap-success probability of the settling process.
    pub s: f64,
    /// Success probability of the geometric shift distribution.
    pub q: f64,
}

impl Params {
    /// The paper's canonical `p = s = q = 1/2`.
    #[must_use]
    pub fn canonical() -> Params {
        Params {
            p: 0.5,
            s: 0.5,
            q: 0.5,
        }
    }

    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns the offending value if `p ∉ [0,1]`, `s ∉ [0,1)`, or
    /// `q ∉ (0,1]` (degenerate corners where the laws lose meaning).
    pub fn new(p: f64, s: f64, q: f64) -> Result<Params, f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(p);
        }
        if !(0.0..1.0).contains(&s) {
            return Err(s);
        }
        if !(q > 0.0 && q <= 1.0) {
            return Err(q);
        }
        Ok(Params { p, s, q })
    }
}

impl Default for Params {
    fn default() -> Params {
        Params::canonical()
    }
}

/// Generalised WO window law.
#[must_use]
pub fn wo_pmf(gamma: u64, s: f64) -> f64 {
    if gamma == 0 {
        1.0 / (1.0 + s)
    } else {
        s.powi(gamma as i32) * (1.0 - s) / (1.0 + s)
    }
}

/// Generalised Claim 4.3 limit `L(p, s) = p / (1 − (1−p)s)`.
#[must_use]
pub fn bottom_store_limit(p: f64, s: f64) -> f64 {
    crate::recurrence::bottom_store_fraction_limit(p, s)
}

/// `G_µ(q; x) = Σ_δ φ(δ, q, µ)·x^δ` for all `m ≤ µ`, `j ≤ q` at once.
fn weighted_phi_table(mu: u32, q: u32, x: f64) -> Vec<Vec<f64>> {
    let (m, qq) = (mu as usize, q as usize);
    let mut g = vec![vec![0.0f64; qq + 1]; m + 1];
    for row in g.iter_mut() {
        row[0] = 1.0;
    }
    for cur_mu in 1..=m {
        let xpow = x.powi(cur_mu as i32);
        for cur_q in 1..=qq {
            g[cur_mu][cur_q] = g[cur_mu - 1][cur_q] + xpow * g[cur_mu][cur_q - 1];
        }
    }
    g
}

/// Generalised `Pr[L_µ]` for every `µ ≤ mu_max`.
#[must_use]
pub fn pr_l_mu_all(mu_max: u32, q_max: u32, p: f64, s: f64) -> Vec<f64> {
    let limit = bottom_store_limit(p, s);
    let g = weighted_phi_table(mu_max, q_max, s);
    let mut out = Vec::with_capacity(mu_max as usize + 1);
    out.push(1.0 - limit);
    for mu in 1..=mu_max {
        let mut total = 0.0;
        for q in 0..=q_max {
            let lq = (1.0 - p).powi(q as i32);
            total += lq * g[mu as usize][q as usize] * (1.0 - limit * s.powi(q as i32));
        }
        out.push(total * p.powi(mu as i32));
    }
    out
}

/// A generalised critical-window law for every named model at parameters
/// `(p, s)`, precomputed once.
///
/// # Example
///
/// ```
/// use analytic::general::{GeneralWindowLaws, Params};
/// use memmodel::MemoryModel;
///
/// let canonical = GeneralWindowLaws::new(Params::canonical());
/// // At the canonical parameters the general law collapses to Theorem 4.1.
/// assert!((canonical.pmf(MemoryModel::Wo, 0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralWindowLaws {
    params: Params,
    tso_pmf: Vec<f64>,
    pso_pmf: Vec<f64>,
}

/// Series depth used by [`GeneralWindowLaws`]. The `Pr[L_µ]` tail decays
/// like `L(p,s)^µ`, so 256 keeps truncation error below ~1e-9 across the
/// tested parameter grid (worst case `L ≈ 0.92`).
const DEPTH: u32 = 256;

impl GeneralWindowLaws {
    /// Builds the laws at the given parameters.
    #[must_use]
    pub fn new(params: Params) -> GeneralWindowLaws {
        let (p, s) = (params.p, params.s);
        let l = pr_l_mu_all(DEPTH, DEPTH, p, s);
        let depth = u64::from(DEPTH);
        // TSO: Pr[B_γ] = Σ_{µ≥γ} b(γ|µ)·Pr[L_µ].
        let b_given_l = |gamma: u64, mu: u64| -> f64 {
            if mu < gamma {
                0.0
            } else if mu == gamma {
                s.powi(gamma as i32)
            } else {
                s.powi(gamma as i32) * (1.0 - s)
            }
        };
        let tso_pmf: Vec<f64> = (0..=depth)
            .map(|gamma| {
                (gamma..=depth)
                    .map(|mu| b_given_l(gamma, mu) * l[mu as usize])
                    .sum()
            })
            .collect();
        // PSO: convolve with the generalised climb-back.
        let climb = |passed: u64, j: u64| -> f64 {
            if passed > j {
                0.0
            } else if passed == j {
                s.powi(j as i32)
            } else {
                s.powi(passed as i32) * (1.0 - s)
            }
        };
        let pso_pmf: Vec<f64> = (0..=depth)
            .map(|gamma| {
                (gamma..=depth)
                    .map(|j| tso_pmf[j as usize] * climb(j - gamma, j))
                    .sum()
            })
            .collect();
        GeneralWindowLaws {
            params,
            tso_pmf,
            pso_pmf,
        }
    }

    /// The parameters in force.
    #[must_use]
    pub fn params(&self) -> Params {
        self.params
    }

    /// `Pr[B_γ]` under `model` at these parameters; `None` for custom
    /// models.
    #[must_use]
    pub fn pmf(&self, model: MemoryModel, gamma: u64) -> Option<f64> {
        let at = |v: &Vec<f64>| v.get(gamma as usize).copied().unwrap_or(0.0);
        match model {
            MemoryModel::Sc => Some(f64::from(u8::from(gamma == 0))),
            MemoryModel::Wo => Some(wo_pmf(gamma, self.params.s)),
            MemoryModel::Tso => Some(at(&self.tso_pmf)),
            MemoryModel::Pso => Some(at(&self.pso_pmf)),
            MemoryModel::Custom(_) => None,
        }
    }

    /// Generalised two-thread survival:
    /// `Pr[A] = 2(1−q)/(2−q) · E[(1−q)^Γ]` with `Γ = γ + 2`.
    #[must_use]
    pub fn two_thread_survival(&self, model: MemoryModel) -> Option<f64> {
        let q = self.params.q;
        let base = 1.0 - q;
        let e: f64 = (0..=u64::from(DEPTH))
            .map(|gamma| {
                self.pmf(model, gamma).map(|p| p * base.powi(gamma as i32 + 2))
            })
            .sum::<Option<f64>>()?;
        Some(2.0 * base / (2.0 - q) * e)
    }
}

/// Spot check helper: at the canonical parameters the generalised TSO law
/// must sit inside the paper's Theorem 4.1 bounds.
#[must_use]
pub fn canonical_tso_within_bounds(laws: &GeneralWindowLaws, gamma_max: u64) -> bool {
    (0..=gamma_max).all(|gamma| {
        let v = laws
            .pmf(MemoryModel::Tso, gamma)
            .expect("named model");
        let (lo, hi) = tso_pmf_bounds(gamma);
        v >= lo - 1e-9 && v <= hi + 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thm62;
    use crate::window_law::WindowLaws;

    #[test]
    fn params_validation() {
        assert!(Params::new(0.5, 0.5, 0.5).is_ok());
        assert!(Params::new(-0.1, 0.5, 0.5).is_err());
        assert!(Params::new(0.5, 1.0, 0.5).is_err()); // s = 1 degenerate
        assert!(Params::new(0.5, 0.5, 0.0).is_err()); // q = 0 degenerate
        assert!(Params::new(0.5, 0.5, 1.0).is_ok());
    }

    #[test]
    fn wo_general_law_normalises() {
        for s in [0.1, 0.5, 0.9] {
            let total: f64 = (0..2000).map(|g| wo_pmf(g, s)).sum();
            assert!((total - 1.0).abs() < 1e-9, "s={s}: {total}");
        }
    }

    #[test]
    fn canonical_collapses_to_theorem_41() {
        let general = GeneralWindowLaws::new(Params::canonical());
        let paper = WindowLaws::new();
        for model in MemoryModel::NAMED {
            for gamma in 0..=12u64 {
                let g = general.pmf(model, gamma).unwrap();
                let p = paper.pmf(model, gamma).unwrap();
                assert!(
                    (g - p).abs() < 1e-9,
                    "{model} γ={gamma}: general {g} vs paper {p}"
                );
            }
        }
        assert!(canonical_tso_within_bounds(&general, 20));
    }

    #[test]
    fn general_laws_normalise() {
        for (p, s) in [(0.3, 0.6), (0.7, 0.4), (0.5, 0.8), (0.9, 0.2)] {
            let laws = GeneralWindowLaws::new(Params::new(p, s, 0.5).unwrap());
            for model in MemoryModel::NAMED {
                let total: f64 = (0..=u64::from(DEPTH))
                    .map(|g| laws.pmf(model, g).unwrap())
                    .sum();
                assert!(
                    (total - 1.0).abs() < 1e-6,
                    "{model} p={p} s={s}: total {total}"
                );
            }
        }
    }

    #[test]
    fn canonical_survival_matches_theorem_62() {
        let laws = GeneralWindowLaws::new(Params::canonical());
        let sc = laws.two_thread_survival(MemoryModel::Sc).unwrap();
        assert!((sc - thm62::sc_survival().to_f64()).abs() < 1e-12);
        let wo = laws.two_thread_survival(MemoryModel::Wo).unwrap();
        assert!((wo - thm62::wo_survival().to_f64()).abs() < 1e-12);
        let tso = laws.two_thread_survival(MemoryModel::Tso).unwrap();
        let (lo, hi) = thm62::tso_survival_bounds();
        assert!(tso > lo.to_f64() - 1e-9 && tso < hi.to_f64() + 1e-9);
    }

    #[test]
    fn robust_orderings_hold_across_the_grid() {
        // What of the §7 conjecture actually survives a parameter sweep:
        // SC dominates every relaxed model, and PSO dominates TSO (the
        // climb-back can only shrink windows). The TSO-vs-WO ordering is
        // NOT robust — see `tso_wo_ordering_flips_at_high_s`.
        for p in [0.2, 0.5, 0.8] {
            for s in [0.2, 0.5, 0.8] {
                for q in [0.3, 0.5, 0.7] {
                    let laws = GeneralWindowLaws::new(Params::new(p, s, q).unwrap());
                    let v = |m| laws.two_thread_survival(m).unwrap();
                    let sc = v(MemoryModel::Sc);
                    for m in [MemoryModel::Pso, MemoryModel::Tso, MemoryModel::Wo] {
                        assert!(
                            sc >= v(m) - 1e-9,
                            "SC beaten by {m} at p={p} s={s} q={q}"
                        );
                    }
                    assert!(
                        v(MemoryModel::Pso) >= v(MemoryModel::Tso) - 1e-9,
                        "PSO below TSO at p={p} s={s} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn tso_wo_ordering_flips_at_high_s() {
        // A reproduction finding: the paper's TSO > WO survival ordering
        // holds at the canonical parameters but INVERTS when the swap
        // probability is high. Under WO the critical store chases the
        // critical load upward (the same mechanism that makes PSO beat TSO),
        // and at s = 0.8 that chase concentrates WO's window at gamma = 0
        // harder than TSO's law does: Pr[B_0] is 1/(1+s) ~ 0.556 for WO vs
        // 1 - s.L(p,s) ~ 0.524 for TSO. At s = 1/2 the two happen to tie at
        // exactly 2/3, which is why the canonical ordering is so close.
        let canonical = GeneralWindowLaws::new(Params::canonical());
        assert!(
            canonical.two_thread_survival(MemoryModel::Tso).unwrap()
                > canonical.two_thread_survival(MemoryModel::Wo).unwrap()
        );
        let high_s = GeneralWindowLaws::new(Params::new(0.5, 0.8, 0.3).unwrap());
        assert!(
            high_s.two_thread_survival(MemoryModel::Wo).unwrap()
                > high_s.two_thread_survival(MemoryModel::Tso).unwrap(),
            "expected the WO/TSO inversion at s = 0.8"
        );
        // The B_0 comparison that drives it.
        assert!(
            high_s.pmf(MemoryModel::Wo, 0).unwrap()
                > high_s.pmf(MemoryModel::Tso, 0).unwrap()
        );
        assert!(
            (canonical.pmf(MemoryModel::Wo, 0).unwrap()
                - canonical.pmf(MemoryModel::Tso, 0).unwrap())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn extreme_parameters_degenerate_sensibly() {
        // s → 0: every model behaves like SC.
        let laws = GeneralWindowLaws::new(Params::new(0.5, 0.0, 0.5).unwrap());
        for model in MemoryModel::NAMED {
            assert!((laws.pmf(model, 0).unwrap() - 1.0).abs() < 1e-12, "{model}");
        }
        // p → 1 (all stores): TSO's climb is unobstructed, so the window
        // law approaches the pure geometric s^gamma (1-s).
        let laws = GeneralWindowLaws::new(Params::new(0.95, 0.5, 0.5).unwrap());
        for gamma in 0..=5u64 {
            let tso = laws.pmf(MemoryModel::Tso, gamma).unwrap();
            let pure = 0.5f64.powi(gamma as i32) * 0.5;
            assert!((tso - pure).abs() < 0.03, "γ={gamma}: {tso} vs {pure}");
        }
        // p → 0 (all loads): TSO collapses to SC.
        let laws = GeneralWindowLaws::new(Params::new(0.001, 0.5, 0.5).unwrap());
        assert!(laws.pmf(MemoryModel::Tso, 0).unwrap() > 0.999);
    }

    #[test]
    fn q_controls_overall_survival_level() {
        // Larger q = tighter shifts = more collisions = lower survival.
        let mut prev = 1.0;
        for q in [0.2, 0.5, 0.8] {
            let laws = GeneralWindowLaws::new(Params::new(0.5, 0.5, q).unwrap());
            let sc = laws.two_thread_survival(MemoryModel::Sc).unwrap();
            assert!(sc < prev, "q={q}");
            prev = sc;
        }
    }
}
