//! Arbitrary-precision unsigned integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Shl, Shr, Sub};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs
/// (zero is the empty limb vector). Arithmetic is schoolbook — quadratic
/// multiplication and shift-subtract division — which is ample for the
/// few-thousand-bit numbers this workspace manipulates.
///
/// # Example
///
/// ```
/// use analytic::BigUint;
///
/// let a = BigUint::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    #[must_use]
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    #[must_use]
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// `2^k`.
    #[must_use]
    pub fn two_pow(k: usize) -> BigUint {
        let mut limbs = vec![0u64; k / 64 + 1];
        limbs[k / 64] = 1u64 << (k % 64);
        BigUint { limbs }.normalized()
    }

    /// Whether the value is 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is 1.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    fn normalized(mut self) -> BigUint {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        self
    }

    /// Number of significant bits (0 for the value 0).
    #[must_use]
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (little-endian).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|&l| (l >> (i % 64)) & 1 == 1)
    }

    /// `self - other`, or `None` if it would underflow.
    #[must_use]
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint { limbs }.normalized())
    }

    /// Euclidean division: returns `(self / divisor, self % divisor)`.
    ///
    /// Uses shift-subtract long division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        let bits = self.bit_length();
        let mut quotient = BigUint {
            limbs: vec![0; self.limbs.len()],
        };
        let mut remainder = BigUint::zero();
        for i in (0..bits).rev() {
            remainder = &remainder << 1;
            if self.bit(i) {
                remainder = &remainder + &BigUint::one();
            }
            if let Some(r) = remainder.checked_sub(divisor) {
                remainder = r;
                quotient.limbs[i / 64] |= 1u64 << (i % 64);
            }
        }
        (quotient.normalized(), remainder)
    }

    /// Division by a single limb; returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero u64");
        let mut limbs = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            limbs[i] = (cur / u128::from(divisor)) as u64;
            rem = cur % u128::from(divisor);
        }
        (BigUint { limbs }.normalized(), rem as u64)
    }

    /// Greatest common divisor (Stein's binary algorithm).
    #[must_use]
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let shift = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a after swap");
            if b.is_zero() {
                return &a << shift;
            }
            b = &b >> b.trailing_zeros();
        }
    }

    /// Number of trailing zero bits (0 for the value 0).
    #[must_use]
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// `self^exp` by binary exponentiation.
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Nearest `f64` (may overflow to `f64::INFINITY` beyond ~2¹⁰²⁴).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_length();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.limbs[0] as f64;
        }
        // Take the top 64 bits as a mantissa and scale.
        let shift = bits - 64;
        let top = (self >> shift).limbs[0];
        (top as f64) * 2f64.powi(shift as i32)
    }

    /// Base-2 logarithm, accurate to f64 precision even when the value
    /// itself would overflow `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn log2(&self) -> f64 {
        let bits = self.bit_length();
        assert!(bits > 0, "log2 of zero");
        if bits <= 64 {
            return (self.limbs[0] as f64).log2();
        }
        let shift = bits - 64;
        let top = (self >> shift).limbs[0];
        (top as f64).log2() + shift as f64
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> BigUint {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> BigUint {
        BigUint {
            limbs: vec![v as u64, (v >> 64) as u64],
        }
        .normalized()
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &BigUint) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ne => return ne,
                    }
                }
                Ordering::Equal
            }
            ne => ne,
        }
    }
}

impl Add for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let rhs_limb = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = long.limbs[i].overflowing_add(rhs_limb);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint { limbs }
    }
}

impl Sub for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = u128::from(limbs[i + j]) + u128::from(a) * u128::from(b) + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = u128::from(limbs[k]) + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint { limbs }.normalized()
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint { limbs }.normalized()
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint { limbs }.normalized()
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().expect("nonzero value").to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

/// Error returned when parsing a [`BigUint`] from a decimal string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    /// The character that is not a decimal digit, if any; `None` means the
    /// input was empty.
    pub offending: Option<char>,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offending {
            Some(c) => write!(f, "invalid decimal digit {c:?}"),
            None => f.write_str("empty string"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<BigUint, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError { offending: None });
        }
        let ten = BigUint::from(10u64);
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or(ParseBigUintError { offending: Some(c) })?;
            acc = &(&acc * &ten) + &BigUint::from(u64::from(d));
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(BigUint::one().bit_length(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn two_pow_structure() {
        assert_eq!(BigUint::two_pow(0), BigUint::one());
        assert_eq!(BigUint::two_pow(64), big(1u128 << 64));
        assert_eq!(BigUint::two_pow(200).bit_length(), 201);
        assert!(BigUint::two_pow(200).bit(200));
        assert!(!BigUint::two_pow(200).bit(199));
    }

    #[test]
    fn display_small_and_large() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(big(12345).to_string(), "12345");
        assert_eq!(
            big(u128::MAX).to_string(),
            "340282366920938463463374607431768211455"
        );
    }

    #[test]
    fn parse_round_trips() {
        for s in ["0", "1", "999999999999999999999999999999999999"] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
    }

    #[test]
    fn subtraction_underflow_is_checked() {
        assert_eq!(big(5).checked_sub(&big(7)), None);
        assert_eq!(big(7).checked_sub(&big(5)), Some(big(2)));
    }

    #[test]
    fn division_by_zero_panics() {
        let r = std::panic::catch_unwind(|| big(1).div_rem(&BigUint::zero()));
        assert!(r.is_err());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let three = big(3);
        let mut expect = BigUint::one();
        for e in 0..40u32 {
            assert_eq!(three.pow(e), expect);
            expect = &expect * &three;
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(1).gcd(&big(9)), big(1));
        let huge = BigUint::two_pow(300);
        assert_eq!(huge.gcd(&BigUint::two_pow(200)), BigUint::two_pow(200));
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(BigUint::zero().to_f64(), 0.0);
        assert_eq!(big(1u128 << 100).to_f64(), 2f64.powi(100));
        let v = BigUint::two_pow(2000);
        assert_eq!(v.to_f64(), f64::INFINITY);
        assert_eq!(v.log2(), 2000.0);
    }

    #[test]
    fn log2_of_products() {
        let a = BigUint::two_pow(700);
        let b = big(3);
        let prod = &a * &b;
        assert!((prod.log2() - (700.0 + 3f64.log2())).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u128..=u128::MAX / 2, b in 0u128..=u128::MAX / 2) {
            prop_assert_eq!(&big(a) + &big(b), big(a + b));
        }

        #[test]
        fn mul_matches_u128(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
            prop_assert_eq!(&big(u128::from(a)) * &big(u128::from(b)),
                            big(u128::from(a) * u128::from(b)));
        }

        #[test]
        fn sub_matches_u128(a in 0u128..=u128::MAX, b in 0u128..=u128::MAX) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(&big(hi) - &big(lo), big(hi - lo));
        }

        #[test]
        fn div_rem_matches_u128(a in 0u128..=u128::MAX, b in 1u128..=u128::MAX) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q, big(a / b));
            prop_assert_eq!(r, big(a % b));
        }

        #[test]
        fn div_rem_reconstructs(a in 0u128..=u128::MAX, b in 1u128..=u128::MAX) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(&(&q * &big(b)) + &r, big(a));
            prop_assert!(r < big(b));
        }

        #[test]
        fn shifts_match_u128(a in 0u128..=u128::MAX, s in 0usize..64) {
            prop_assert_eq!(&big(a) >> s, big(a >> s));
            prop_assert_eq!(&(&big(a) << s) >> s, big(a));
        }

        #[test]
        fn gcd_matches_euclid(a in 1u64..=u64::MAX, b in 1u64..=u64::MAX) {
            fn euclid(mut a: u64, mut b: u64) -> u64 {
                while b != 0 { let t = a % b; a = b; b = t; }
                a
            }
            prop_assert_eq!(big(u128::from(a)).gcd(&big(u128::from(b))),
                            big(u128::from(euclid(a, b))));
        }

        #[test]
        fn ordering_matches_u128(a in 0u128..=u128::MAX, b in 0u128..=u128::MAX) {
            prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
        }

        #[test]
        fn display_matches_u128(a in 0u128..=u128::MAX) {
            prop_assert_eq!(big(a).to_string(), a.to_string());
        }

        #[test]
        fn to_f64_relative_error(a in 1u128..=u128::MAX) {
            let exact = big(a).to_f64();
            let reference = a as f64;
            prop_assert!((exact - reference).abs() <= reference * 1e-15);
        }
    }
}
