//! Arbitrary-precision integers and rationals.
//!
//! A minimal, dependency-free bignum stack sized for this workspace's needs:
//! exact binomials, partition counts, and the Theorem 5.1 / 6.3 constants,
//! whose magnitudes reach `2^binom(n+1,2)` (≈ 2⁲⁰⁰⁰ at `n = 64`). The
//! offline dependency allowlist has no `num` crate, so we carry our own (see
//! DESIGN.md §2).
//!
//! * [`BigUint`] — unsigned magnitude, little-endian `u64` limbs.
//! * [`BigInt`] — sign + magnitude.
//! * [`BigRational`] — always-reduced `BigInt / BigUint` fractions.
//!
//! # Example
//!
//! ```
//! use analytic::bigq::BigRational;
//!
//! let third = BigRational::ratio(1, 3);
//! let sixth = BigRational::ratio(1, 6);
//! assert_eq!(&third - &sixth, sixth);
//! assert_eq!(BigRational::pow2(-3).to_f64(), 0.125);
//! ```

mod int;
mod ratio;
mod uint;

pub use int::{BigInt, Sign};
pub use ratio::BigRational;
pub use uint::{BigUint, ParseBigUintError};
