//! Signed arbitrary-precision integers.

use super::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer (sign + magnitude).
///
/// # Example
///
/// ```
/// use analytic::BigInt;
///
/// let a = BigInt::from(-3i64);
/// let b = BigInt::from(5i64);
/// assert_eq!((&a + &b).to_string(), "2");
/// assert_eq!((&a * &b).to_string(), "-15");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value 0.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value 1.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude (normalises zero magnitude to
    /// [`Sign::Zero`]).
    #[must_use]
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> BigInt {
        if mag.is_zero() || sign == Sign::Zero {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    #[must_use]
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// The absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.mag.clone(),
        )
    }

    /// Nearest `f64` (signed).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -m,
            Sign::Zero => 0.0,
            Sign::Positive => m,
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        match v.cmp(&0) {
            Ordering::Less => BigInt::from_sign_mag(Sign::Negative, BigUint::from(v.unsigned_abs())),
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Positive, BigUint::from(v as u64)),
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> BigInt {
        BigInt::from_sign_mag(Sign::Positive, mag)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Negative => 0,
            Sign::Zero => 1,
            Sign::Positive => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.mag.cmp(&self.mag),
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
            },
            ne => ne,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        BigInt::from_sign_mag(self.sign.flip(), self.mag.clone())
    }
}

impl Add for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &rhs.mag),
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;

    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;

    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_mag(self.sign.mul(rhs.sign), &self.mag * &rhs.mag)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            f.write_str("-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_normalisation() {
        assert!(b(0).is_zero());
        assert_eq!(BigInt::from_sign_mag(Sign::Negative, BigUint::zero()), b(0));
        assert_eq!(-&b(0), b(0));
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(b(-42).to_string(), "-42");
        assert_eq!(b(42).to_string(), "42");
        assert_eq!(b(0).to_string(), "0");
    }

    #[test]
    fn abs_and_neg() {
        assert_eq!(b(-7).abs(), b(7));
        assert_eq!(b(7).abs(), b(7));
        assert_eq!(-&b(7), b(-7));
    }

    #[test]
    fn i64_min_round_trip() {
        let v = BigInt::from(i64::MIN);
        assert_eq!(v.to_string(), i64::MIN.to_string());
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(b(-5).to_f64(), -5.0);
        assert_eq!(b(0).to_f64(), 0.0);
    }

    proptest! {
        #[test]
        fn add_matches_i64(a in -(1i64 << 62)..(1i64 << 62), c in -(1i64 << 62)..(1i64 << 62)) {
            prop_assert_eq!(&b(a) + &b(c), b(a + c));
        }

        #[test]
        fn sub_matches_i64(a in -(1i64 << 62)..(1i64 << 62), c in -(1i64 << 62)..(1i64 << 62)) {
            prop_assert_eq!(&b(a) - &b(c), b(a - c));
        }

        #[test]
        fn mul_matches_i64(a in -(1i64 << 31)..(1i64 << 31), c in -(1i64 << 31)..(1i64 << 31)) {
            prop_assert_eq!(&b(a) * &b(c), b(a * c));
        }

        #[test]
        fn ordering_matches_i64(a in i64::MIN + 1..i64::MAX, c in i64::MIN + 1..i64::MAX) {
            prop_assert_eq!(b(a).cmp(&b(c)), a.cmp(&c));
        }

        #[test]
        fn add_neg_is_sub(a in -(1i64 << 62)..(1i64 << 62), c in -(1i64 << 62)..(1i64 << 62)) {
            prop_assert_eq!(&b(a) + &(-&b(c)), &b(a) - &b(c));
        }
    }
}
