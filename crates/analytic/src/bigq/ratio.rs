//! Arbitrary-precision rationals.

use super::int::Sign;
use super::{BigInt, BigUint};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An always-reduced arbitrary-precision rational number.
///
/// Invariants: the denominator is strictly positive and
/// `gcd(|num|, den) = 1`; zero is represented as `0/1`.
///
/// # Example
///
/// ```
/// use analytic::BigRational;
///
/// // The Theorem 6.2 TSO lower bound, 58/441.
/// let lo = BigRational::ratio(58, 441);
/// assert_eq!(lo.to_string(), "58/441");
/// assert!(lo.to_f64() > 0.1315);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigUint,
}

impl BigRational {
    /// The value 0.
    #[must_use]
    pub fn zero() -> BigRational {
        BigRational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value 1.
    #[must_use]
    pub fn one() -> BigRational {
        BigRational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn ratio(num: i64, den: i64) -> BigRational {
        assert!(den != 0, "zero denominator");
        let sign_flip = den < 0;
        let num = if sign_flip {
            -&BigInt::from(num)
        } else {
            BigInt::from(num)
        };
        BigRational::new(num, BigUint::from(den.unsigned_abs()))
    }

    /// `num / den` from big integers, reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: BigInt, den: BigUint) -> BigRational {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (nm, _) = num.magnitude().div_rem(&g);
        let (dm, _) = den.div_rem(&g);
        BigRational {
            num: BigInt::from_sign_mag(num.sign(), nm),
            den: dm,
        }
    }

    /// `2^k` for any integer `k` (negative exponents give dyadic fractions).
    #[must_use]
    pub fn pow2(k: i32) -> BigRational {
        if k >= 0 {
            BigRational {
                num: BigInt::from(BigUint::two_pow(k as usize)),
                den: BigUint::one(),
            }
        } else {
            BigRational {
                num: BigInt::one(),
                den: BigUint::two_pow((-k) as usize),
            }
        }
    }

    /// The numerator (signed, reduced).
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (positive, reduced).
    #[must_use]
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational {
            num: BigInt::from_sign_mag(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// `self^exp` for a machine-word exponent.
    #[must_use]
    pub fn pow(&self, exp: u32) -> BigRational {
        let sign = if self.is_negative() && exp % 2 == 1 {
            Sign::Negative
        } else if self.is_zero() && exp > 0 {
            Sign::Zero
        } else {
            Sign::Positive
        };
        BigRational {
            num: BigInt::from_sign_mag(sign, self.num.magnitude().pow(exp)),
            den: self.den.pow(exp),
        }
    }

    /// Nearest `f64`, stable even when numerator and denominator separately
    /// overflow `f64`'s range.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let sign = if self.is_negative() { -1.0 } else { 1.0 };
        sign * 2f64.powf(self.log2_abs())
    }

    /// `log2 |self|`, accurate to f64 precision for values far outside
    /// `f64`'s exponent range.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn log2_abs(&self) -> f64 {
        assert!(!self.is_zero(), "log2 of zero");
        self.num.magnitude().log2() - self.den.log2()
    }
}

impl Default for BigRational {
    fn default() -> BigRational {
        BigRational::zero()
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> BigRational {
        BigRational {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> BigRational {
        BigRational {
            num: v,
            den: BigUint::one(),
        }
    }
}

impl Add for &BigRational {
    type Output = BigRational;

    fn add(self, rhs: &BigRational) -> BigRational {
        let num = &(&self.num * &BigInt::from(rhs.den.clone()))
            + &(&rhs.num * &BigInt::from(self.den.clone()));
        BigRational::new(num, &self.den * &rhs.den)
    }
}

impl Sub for &BigRational {
    type Output = BigRational;

    fn sub(self, rhs: &BigRational) -> BigRational {
        self + &(-rhs)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;

    fn mul(self, rhs: &BigRational) -> BigRational {
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division by multiplying with the reciprocal
    fn div(self, rhs: &BigRational) -> BigRational {
        self * &rhs.recip()
    }
}

impl Neg for &BigRational {
    type Output = BigRational;

    fn neg(self) -> BigRational {
        BigRational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &BigRational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &BigRational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0).
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i64, d: i64) -> BigRational {
        BigRational::ratio(n, d)
    }

    #[test]
    fn reduction_to_lowest_terms() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(2, 4).to_string(), "1/2");
        assert_eq!(r(-6, 9).to_string(), "-2/3");
        assert_eq!(r(6, -9).to_string(), "-2/3");
        assert_eq!(r(-6, -9).to_string(), "2/3");
        assert_eq!(r(0, 5), BigRational::zero());
    }

    #[test]
    fn integer_display_omits_denominator() {
        assert_eq!(r(8, 4).to_string(), "2");
        assert_eq!(BigRational::from(-3i64).to_string(), "-3");
    }

    #[test]
    fn field_identities() {
        let x = r(3, 7);
        assert_eq!(&x + &BigRational::zero(), x);
        assert_eq!(&x * &BigRational::one(), x);
        assert_eq!(&x * &x.recip(), BigRational::one());
        assert_eq!(&x - &x, BigRational::zero());
        assert_eq!(&x / &x, BigRational::one());
    }

    #[test]
    fn pow2_both_signs() {
        assert_eq!(BigRational::pow2(3), BigRational::from(8));
        assert_eq!(BigRational::pow2(-3), r(1, 8));
        assert_eq!(BigRational::pow2(0), BigRational::one());
        // Far outside f64 range, log2 stays exact.
        assert_eq!(BigRational::pow2(-5000).log2_abs(), -5000.0);
    }

    #[test]
    fn pow_with_negative_base() {
        assert_eq!(r(-1, 2).pow(2), r(1, 4));
        assert_eq!(r(-1, 2).pow(3), r(-1, 8));
        assert_eq!(r(5, 3).pow(0), BigRational::one());
        assert_eq!(BigRational::zero().pow(5), BigRational::zero());
    }

    #[test]
    fn to_f64_basics() {
        assert_eq!(r(1, 4).to_f64(), 0.25);
        assert_eq!(r(-3, 2).to_f64(), -1.5);
        assert_eq!(BigRational::zero().to_f64(), 0.0);
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn paper_constant_58_441() {
        // Theorem 6.2: 2/3 * (1/6 + 3/98) = 58/441.
        let v = &r(2, 3) * &(&r(1, 6) + &r(3, 98));
        assert_eq!(v, r(58, 441));
        assert!(v.to_f64() > 0.1315 && v.to_f64() < 0.1316);
    }

    #[test]
    fn recip_of_zero_panics() {
        assert!(std::panic::catch_unwind(|| BigRational::zero().recip()).is_err());
    }

    proptest! {
        #[test]
        fn add_matches_i128_rationals(
            an in -1000i64..1000, ad in 1i64..1000,
            bn in -1000i64..1000, bd in 1i64..1000,
        ) {
            let sum = &r(an, ad) + &r(bn, bd);
            let expect = r(an * bd + bn * ad, ad * bd);
            prop_assert_eq!(sum, expect);
        }

        #[test]
        fn mul_matches_i128_rationals(
            an in -1000i64..1000, ad in 1i64..1000,
            bn in -1000i64..1000, bd in 1i64..1000,
        ) {
            prop_assert_eq!(&r(an, ad) * &r(bn, bd), r(an * bn, ad * bd));
        }

        #[test]
        fn ordering_matches_f64(
            an in -1000i64..1000, ad in 1i64..1000,
            bn in -1000i64..1000, bd in 1i64..1000,
        ) {
            let (a, b) = (r(an, ad), r(bn, bd));
            let (fa, fb) = (an as f64 / ad as f64, bn as f64 / bd as f64);
            if (fa - fb).abs() > 1e-9 {
                prop_assert_eq!(a.cmp(&b), fa.partial_cmp(&fb).unwrap());
            }
        }

        #[test]
        fn to_f64_close(an in -10_000i64..10_000, ad in 1i64..10_000) {
            let v = r(an, ad).to_f64();
            let expect = an as f64 / ad as f64;
            prop_assert!((v - expect).abs() <= expect.abs() * 1e-12 + 1e-300);
        }

        #[test]
        fn sub_then_add_round_trips(
            an in -1000i64..1000, ad in 1i64..1000,
            bn in -1000i64..1000, bd in 1i64..1000,
        ) {
            let (a, b) = (r(an, ad), r(bn, bd));
            prop_assert_eq!(&(&a - &b) + &b, a);
        }
    }
}
