//! Theorem 5.1 / Corollary 5.2 constants for the shift process.
//!
//! Theorem 5.1 factors the disjointness probability as
//!
//! ```text
//! Pr[A(γ̄)] = prefactor(n) · Σ_{σ∈Sym_n} Π_{i=1}^{n-1} 2^{-(n-i)γ_{σ(i)}}
//! ```
//!
//! with `prefactor(n) = 2^{-(C(n+1,2)-1)} / Π_{i=1}^{n-1}(1 − 2^{-(n+1-i)})`.
//! Corollary 5.2 rewrites the prefactor as `c(n)·2^{-C(n+1,2)}` and shows
//! `c(n) ∈ [2, 4]`, with `c(2) = 8/3` exactly. The permutation-sum
//! algorithms themselves live in the `shiftproc` crate; this module provides
//! the exact constants.

use crate::bigq::{BigInt, BigRational, BigUint};

/// `C(n+1, 2) = n(n+1)/2` as a `u64`.
///
/// # Panics
///
/// Panics if the product overflows `u64` (requires `n > ~6·10⁹`).
#[must_use]
pub fn triangle(n: u64) -> u64 {
    n.checked_mul(n + 1).expect("triangle number overflow") / 2
}

/// `c(n) = 2 / Π_{i=2}^{n} (1 − 2^-i)` exactly (Corollary 5.2).
///
/// ```
/// use analytic::shift_law::c_n_exact;
/// use analytic::BigRational;
/// assert_eq!(c_n_exact(2), BigRational::ratio(8, 3));
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn c_n_exact(n: u32) -> BigRational {
    assert!(n >= 1, "c(n) is defined for n >= 1");
    let mut denom = BigRational::one();
    for i in 2..=n {
        let factor = &BigRational::one() - &BigRational::pow2(-(i as i32));
        denom = &denom * &factor;
    }
    &BigRational::from(2) / &denom
}

/// `c(n)` as an `f64`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn c_n(n: u32) -> f64 {
    assert!(n >= 1, "c(n) is defined for n >= 1");
    let mut denom = 1.0;
    for i in 2..=n {
        denom *= 1.0 - 2f64.powi(-(i as i32));
    }
    2.0 / denom
}

/// The limit `c(∞) = 2 / Π_{i≥2}(1 − 2^-i) ≈ 3.462746619…`.
#[must_use]
pub fn c_infinity() -> f64 {
    c_n(80)
}

/// The exact Theorem 5.1 prefactor `c(n)·2^{-C(n+1,2)}`.
///
/// # Panics
///
/// Panics if `n == 0` or `C(n+1,2)` exceeds `i32` (n beyond ~65000).
#[must_use]
pub fn prefactor_exact(n: u32) -> BigRational {
    let t = i32::try_from(triangle(u64::from(n))).expect("triangle fits i32");
    &c_n_exact(n) * &BigRational::pow2(-t)
}

/// `log2` of the Theorem 5.1 prefactor, stable for large `n` where the
/// prefactor underflows `f64`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn log2_prefactor(n: u32) -> f64 {
    c_n(n).log2() - triangle(u64::from(n)) as f64
}

/// `n!` exactly, re-exported here for the Theorem 6.1 estimator.
#[must_use]
pub fn factorial(n: u32) -> BigUint {
    crate::binom::factorial_big(u64::from(n))
}

/// The exact survival probability for `n` *deterministic* unit segments of
/// length `γ` each (every thread has the same window):
/// `c(n)·2^{-C(n+1,2)}·n!·2^{-γ·C(n,2)}`.
///
/// With `γ = 2` this is the Sequential Consistency survival probability of
/// Theorem 6.3.
///
/// # Panics
///
/// Panics if `n == 0` or the exponents exceed `i32`.
#[must_use]
pub fn survival_identical_segments_exact(n: u32, gamma: u32) -> BigRational {
    let pairs = i32::try_from(triangle(u64::from(n)) - u64::from(n)).expect("C(n,2) fits i32");
    let gamma_term = BigRational::pow2(
        -(i32::try_from(u64::from(gamma) * pairs as u64).expect("exponent fits i32")),
    );
    let nf = BigRational::from(BigInt::from(factorial(n)));
    &(&prefactor_exact(n) * &nf) * &gamma_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_numbers() {
        assert_eq!(triangle(1), 1);
        assert_eq!(triangle(2), 3);
        assert_eq!(triangle(3), 6);
        assert_eq!(triangle(10), 55);
    }

    #[test]
    fn c2_is_eight_thirds() {
        assert_eq!(c_n_exact(2), BigRational::ratio(8, 3));
        assert!((c_n(2) - 8.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn corollary_52_range() {
        // c(n) ∈ [2, 4] for all n; increasing in n.
        let mut prev = 0.0;
        for n in 1..=64u32 {
            let c = c_n(n);
            assert!((2.0..=4.0).contains(&c), "c({n}) = {c}");
            assert!(c >= prev);
            prev = c;
        }
        // The limit is comfortably below the paper's upper bound 4.
        assert!(c_infinity() < 3.4628);
        assert!(c_infinity() > 3.4627);
    }

    #[test]
    fn exact_matches_float() {
        for n in 1..=20u32 {
            assert!((c_n_exact(n).to_f64() - c_n(n)).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn prefactor_log2_matches_exact() {
        for n in [2u32, 3, 5, 10, 30] {
            let exact = prefactor_exact(n).log2_abs();
            assert!(
                (log2_prefactor(n) - exact).abs() < 1e-9,
                "n={n}: {} vs {exact}",
                log2_prefactor(n)
            );
        }
    }

    #[test]
    fn prefactor_survives_large_n() {
        // At n = 64 the prefactor is ~2^-2078 — far below f64 range but fine
        // exactly and in log space.
        let lp = log2_prefactor(64);
        assert!(lp < -2000.0);
        assert!((prefactor_exact(64).log2_abs() - lp).abs() < 1e-6);
    }

    #[test]
    fn one_segment_always_survives() {
        // n = 1: a single segment is trivially disjoint.
        assert_eq!(
            survival_identical_segments_exact(1, 5),
            &prefactor_exact(1) * &BigRational::one()
        );
        assert_eq!(survival_identical_segments_exact(1, 5).to_f64(), 1.0);
    }

    #[test]
    fn two_identical_unit_segments() {
        // n = 2, γ: Pr[A] = (8/3)·2^-3·2!·2^-γ = (2/3)·2^-γ... times sum
        // structure; verify against the direct Theorem 5.1 expression
        // Pr = (1/3)(2^-γ + 2^-γ).
        for gamma in 0..8u32 {
            let exact = survival_identical_segments_exact(2, gamma).to_f64();
            let direct = (2.0 / 3.0) * 2f64.powi(-(gamma as i32));
            assert!((exact - direct).abs() < 1e-12, "γ={gamma}");
        }
    }

    #[test]
    fn sc_survival_theorem_63_shape() {
        // −log2 Pr[A] / n² → 3/2 for SC (γ = 2). The o(1) correction is
        // dominated by log2(n!)/n² ≈ log2(n)/n, which decays slowly.
        for (n, tol) in [(8u32, 0.45), (16, 0.30), (32, 0.17), (64, 0.10)] {
            let log2p = survival_identical_segments_exact(n, 2).log2_abs();
            let normalized = -log2p / (f64::from(n) * f64::from(n));
            assert!(
                (normalized - 1.5).abs() < tol,
                "n={n}: normalized exponent {normalized}"
            );
        }
    }
}
