//! The geometric shift distribution of §3.2 / Appendix A.3.
//!
//! Each thread's shift is geometric: `Pr[s = k] = 2^-(k+1)` for `k ∈ ℕ`
//! (success probability `1/2`, support including 0). Its *memorylessness* —
//! `Pr[s = k + j | s ≥ j] = Pr[s = k]` — is the key property exploited by
//! the proof of Theorem 5.1.

use crate::bigq::BigRational;

/// A geometric distribution on `{0, 1, 2, …}` with success probability `q`:
/// `Pr[k] = q·(1−q)^k`.
///
/// # Example
///
/// ```
/// use analytic::geom::Geometric;
///
/// let g = Geometric::half();
/// assert_eq!(g.pmf(0), 0.5);
/// assert_eq!(g.pmf(2), 0.125);
/// assert_eq!(g.tail(3), 0.125); // Pr[s >= 3] = 2^-3
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    q: f64,
}

impl Geometric {
    /// A geometric distribution with success probability `q ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `q` is outside `(0, 1]`.
    pub fn new(q: f64) -> Result<Geometric, f64> {
        if q > 0.0 && q <= 1.0 {
            Ok(Geometric { q })
        } else {
            Err(q)
        }
    }

    /// The paper's canonical `q = 1/2` shift distribution.
    #[must_use]
    pub fn half() -> Geometric {
        Geometric { q: 0.5 }
    }

    /// The success probability `q`.
    #[must_use]
    pub fn success_probability(&self) -> f64 {
        self.q
    }

    /// `Pr[s = k]`.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        self.q * (1.0 - self.q).powi(k as i32)
    }

    /// `Pr[s ≤ k] = 1 − (1−q)^(k+1)`.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        1.0 - (1.0 - self.q).powi(k as i32 + 1)
    }

    /// `Pr[s ≥ k] = (1−q)^k`.
    #[must_use]
    pub fn tail(&self, k: u64) -> f64 {
        (1.0 - self.q).powi(k as i32)
    }

    /// `E[s] = (1−q)/q` (equal to 1 for the canonical half-geometric).
    #[must_use]
    pub fn mean(&self) -> f64 {
        (1.0 - self.q) / self.q
    }

    /// Exact `Pr[s = k]` for the canonical half-geometric, as a rational
    /// `2^-(k+1)`.
    ///
    /// # Panics
    ///
    /// Panics if `k + 1` does not fit in `i32` (far beyond any practical
    /// shift).
    #[must_use]
    pub fn half_pmf_exact(k: u64) -> BigRational {
        let e = i32::try_from(k + 1).expect("shift exponent fits i32");
        BigRational::pow2(-e)
    }
}

impl Default for Geometric {
    fn default() -> Geometric {
        Geometric::half()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_q() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(1.0).is_ok());
        assert!(Geometric::new(f64::NAN).is_err());
    }

    #[test]
    fn half_matches_paper_weights() {
        let g = Geometric::half();
        for k in 0..20u64 {
            assert!((g.pmf(k) - 2f64.powi(-(k as i32) - 1)).abs() < 1e-15);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for q in [0.1, 0.5, 0.9] {
            let g = Geometric::new(q).unwrap();
            let total: f64 = (0..2000).map(|k| g.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "q={q} total={total}");
        }
    }

    #[test]
    fn cdf_tail_complement() {
        let g = Geometric::new(0.3).unwrap();
        for k in 0..30u64 {
            assert!((g.cdf(k) + g.tail(k + 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn memorylessness() {
        let g = Geometric::half();
        for j in 0..10u64 {
            for k in 0..10u64 {
                let conditional = g.pmf(k + j) / g.tail(j);
                assert!(
                    (conditional - g.pmf(k)).abs() < 1e-12,
                    "memorylessness fails at j={j} k={k}"
                );
            }
        }
    }

    #[test]
    fn half_mean_is_one() {
        assert_eq!(Geometric::half().mean(), 1.0);
    }

    #[test]
    fn exact_pmf_matches_float() {
        for k in 0..10u64 {
            assert!(
                (Geometric::half_pmf_exact(k).to_f64() - Geometric::half().pmf(k)).abs() < 1e-15
            );
        }
    }
}
