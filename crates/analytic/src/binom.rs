//! Binomial coefficients, exact and floating-point.

use crate::bigq::BigUint;
use crate::special::ln_gamma;

/// `C(n, k)` as a `u128`, or `None` on overflow.
///
/// ```
/// assert_eq!(analytic::binom::choose_u128(5, 2), Some(10));
/// assert_eq!(analytic::binom::choose_u128(5, 6), Some(0));
/// ```
#[must_use]
pub fn choose_u128(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) stays integral at every step because the
        // prefix product is itself a binomial coefficient.
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// `C(n, k)` exactly, as a [`BigUint`].
///
/// ```
/// use analytic::binom::choose_big;
/// assert_eq!(choose_big(64, 32).to_string(), "1832624140942590534");
/// ```
#[must_use]
pub fn choose_big(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigUint::one();
    for i in 0..k {
        acc = &acc * &BigUint::from(n - i);
        let (q, r) = acc.div_rem_u64(i + 1);
        debug_assert_eq!(r, 0, "binomial prefix products are integral");
        acc = q;
    }
    acc
}

/// `n!` exactly.
#[must_use]
pub fn factorial_big(n: u64) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=n {
        acc = &acc * &BigUint::from(i);
    }
    acc
}

/// `ln C(n, k)` via `ln Γ`; accurate for `n` far beyond `u64` factorials.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `C(n, k)` as `f64` (may round for large arguments).
#[must_use]
pub fn choose_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    match choose_u128(n, k) {
        Some(v) if v <= (1u128 << 100) => v as f64,
        _ => ln_choose(n, k).exp(),
    }
}

/// `ln n!` via `ln Γ(n + 1)`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pascal_row_five() {
        let row: Vec<u128> = (0..=5).map(|k| choose_u128(5, k).unwrap()).collect();
        assert_eq!(row, [1, 5, 10, 10, 5, 1]);
    }

    #[test]
    fn out_of_range_k_is_zero() {
        assert_eq!(choose_u128(3, 4), Some(0));
        assert_eq!(choose_big(3, 4), BigUint::zero());
        assert_eq!(choose_f64(3, 4), 0.0);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn big_matches_u128_where_possible() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(
                    choose_big(n, k).to_string(),
                    choose_u128(n, k).unwrap().to_string()
                );
            }
        }
    }

    #[test]
    fn overflow_is_detected() {
        // C(200, 100) has ~196 bits, > 128.
        assert_eq!(choose_u128(200, 100), None);
        // But BigUint handles it.
        assert!(choose_big(200, 100).bit_length() > 128);
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial_big(0), BigUint::one());
        assert_eq!(factorial_big(5).to_string(), "120");
        assert_eq!(factorial_big(20).to_string(), "2432902008176640000");
    }

    #[test]
    fn ln_choose_matches_exact() {
        for (n, k) in [(10, 3), (52, 5), (100, 50)] {
            let exact = choose_big(n, k).log2() * std::f64::consts::LN_2;
            assert!(
                (ln_choose(n, k) - exact).abs() < 1e-9,
                "ln C({n},{k}) mismatch"
            );
        }
    }

    #[test]
    fn ln_factorial_matches_exact() {
        for n in [1u64, 5, 20, 100] {
            let exact = factorial_big(n).log2() * std::f64::consts::LN_2;
            assert!((ln_factorial(n) - exact).abs() < 1e-8);
        }
    }

    proptest! {
        #[test]
        fn pascal_recurrence(n in 1u64..60, k in 1u64..60) {
            prop_assume!(k <= n);
            let lhs = choose_u128(n, k).unwrap();
            let rhs = choose_u128(n - 1, k - 1).unwrap() + choose_u128(n - 1, k).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn symmetry(n in 0u64..80, k in 0u64..80) {
            prop_assume!(k <= n);
            prop_assert_eq!(choose_u128(n, k), choose_u128(n, n - k));
        }

        #[test]
        fn row_sums_to_two_pow(n in 0u64..50) {
            let sum: u128 = (0..=n).map(|k| choose_u128(n, k).unwrap()).sum();
            prop_assert_eq!(sum, 1u128 << n);
        }
    }
}
