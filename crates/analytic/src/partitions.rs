//! Bounded integer-partition counts — the `φ(x, y, z)` of Claim 4.4.
//!
//! The paper defines `φ(x, y, z)` as "the number of distinct multi-sets of
//! `y` positive integers summing to `x`, such that each integer is at most
//! `z`" and uses it to express `Pr[∆ = δ]`, the distribution of total
//! LD-over-ST displacement in the TSO settling analysis. Claim 4.4 only needs
//! `φ(δ, q, µ) ≥ 1` for `q ≤ δ ≤ µq`; we compute the counts exactly, which
//! both verifies the paper's existence construction and enables a sharper
//! series for `Pr[L_µ]` than the paper's closed-form bound.

/// Number of partitions of `x` into **at most** `y` parts, each at most `z`.
///
/// This is the coefficient of `q^x` in the Gaussian binomial
/// `binom(y+z, y)_q`, computed by the recurrence
/// `N(x,y,z) = N(x,y,z-1) + N(x-z, y-1, z)` (split on whether some part
/// equals `z`).
///
/// ```
/// // Partitions of 4 into at most 2 parts each at most 3: 3+1, 2+2 — and 4
/// // itself is excluded because 4 > 3. Also 4 = 3+1 = 2+2.
/// assert_eq!(analytic::partitions::partitions_at_most(4, 2, 3), 2);
/// ```
#[must_use]
pub fn partitions_at_most(x: u64, y: u64, z: u64) -> u128 {
    if x == 0 {
        return 1;
    }
    if y == 0 || z == 0 {
        return 0;
    }
    // table[a][b] = N(a, b, zcur) built layer by layer over zcur = 1..=z.
    // Memory O(x·y); values fit u128 comfortably for the sizes used here.
    let xs = x as usize;
    let ys = y as usize;
    let mut table = vec![vec![0u128; ys + 1]; xs + 1];
    for cell in &mut table[0] {
        *cell = 1;
    }
    for zcur in 1..=z {
        // In-place layer update: before the update, table[a][b] holds
        // N(a, b, zcur-1); cells at smaller `a` already hold the current
        // layer, which is exactly what the N(a-zcur, b-1, zcur) term needs.
        for a in 1..=xs {
            for b in 1..=ys {
                let with_part_z = if (a as u64) >= zcur {
                    table[a - zcur as usize][b - 1]
                } else {
                    0
                };
                table[a][b] += with_part_z;
            }
        }
    }
    table[xs][ys]
}

/// The paper's `φ(x, y, z)`: multisets of **exactly** `y` positive integers
/// summing to `x`, each at most `z`.
///
/// Subtracting 1 from each part bijects these with partitions of `x − y`
/// into at most `y` parts each at most `z − 1`.
///
/// ```
/// use analytic::partitions::phi;
/// // Claim 4.4's existence bound: φ(δ, q, µ) ≥ 1 whenever q ≤ δ ≤ µq.
/// assert!(phi(7, 3, 4) >= 1);
/// // Out of range: y positive parts need at least sum y and at most yz.
/// assert_eq!(phi(2, 3, 4), 0);
/// assert_eq!(phi(13, 3, 4), 0);
/// ```
#[must_use]
pub fn phi(x: u64, y: u64, z: u64) -> u128 {
    if y == 0 {
        return u128::from(x == 0);
    }
    if x < y || x > y.saturating_mul(z) {
        return 0;
    }
    if z == 0 {
        return 0;
    }
    partitions_at_most(x - y, y, z - 1)
}

/// The distribution `Pr[∆ = δ | Ψ_µ = q]` of Claim 4.4's proof:
/// `φ(δ, q, µ) / C(µ+q−1, q)`, returned as an `f64`.
///
/// `∆` is the total number of positions the `q` interspersed LDs must climb;
/// it ranges over `[q, µq]`.
#[must_use]
pub fn delta_pmf(delta: u64, q: u64, mu: u64) -> f64 {
    if q == 0 {
        return f64::from(u8::from(delta == 0));
    }
    let numer = phi(delta, q, mu) as f64;
    let denom = crate::binom::choose_f64(mu + q - 1, q);
    numer / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute force: enumerate non-increasing tuples of exactly `y` parts in
    /// `[1, z]` summing to `x`.
    fn phi_brute(x: u64, y: u64, z: u64) -> u128 {
        fn rec(remaining: u64, parts_left: u64, max_part: u64) -> u128 {
            if parts_left == 0 {
                return u128::from(remaining == 0);
            }
            let mut count = 0;
            let hi = max_part.min(remaining);
            for part in 1..=hi {
                // Remaining parts must be able to absorb the rest.
                if remaining - part <= (parts_left - 1) * part {
                    count += rec(remaining - part, parts_left - 1, part);
                }
            }
            count
        }
        if y == 0 {
            return u128::from(x == 0);
        }
        rec(x, y, z)
    }

    #[test]
    fn known_small_values() {
        // Partitions of 5 into exactly 2 parts each <= 4: 4+1, 3+2.
        assert_eq!(phi(5, 2, 4), 2);
        // Partitions of 6 into exactly 3 parts each <= 3: 3+2+1, 2+2+2.
        assert_eq!(phi(6, 3, 3), 2);
        // Partitions of 7 into exactly 3 parts each <= 4: 4+2+1, 3+3+1, 3+2+2.
        assert_eq!(phi(7, 3, 4), 3);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(phi(0, 0, 5), 1);
        assert_eq!(phi(1, 0, 5), 0);
        assert_eq!(phi(0, 1, 5), 0);
        assert_eq!(phi(5, 1, 5), 1);
        assert_eq!(phi(6, 1, 5), 0);
        assert_eq!(phi(3, 3, 0), 0);
        assert_eq!(partitions_at_most(0, 0, 0), 1);
        assert_eq!(partitions_at_most(1, 0, 0), 0);
    }

    #[test]
    fn claim_44_existence_construction() {
        // φ(δ, q, µ) ≥ 1 whenever q ≤ δ ≤ µq (the paper's ceiling/floor
        // construction).
        for q in 1..=6u64 {
            for mu in 1..=6u64 {
                for delta in q..=mu * q {
                    assert!(
                        phi(delta, q, mu) >= 1,
                        "φ({delta}, {q}, {mu}) should be ≥ 1"
                    );
                }
            }
        }
    }

    #[test]
    fn phi_sums_to_arrangement_count() {
        // Σ_δ φ(δ, q, µ) counts all arrangements of q LDs and µ STs beginning
        // with a ST (the paper: C(µ+q−1, q) total arrangements).
        for q in 0..=5u64 {
            for mu in 1..=5u64 {
                let total: u128 = (0..=mu * q).map(|d| phi(d, q, mu)).sum();
                assert_eq!(
                    total,
                    crate::binom::choose_u128(mu + q - 1, q).unwrap(),
                    "sum of φ(·, {q}, {mu})"
                );
            }
        }
    }

    #[test]
    fn delta_pmf_normalises() {
        for (q, mu) in [(1u64, 1u64), (2, 3), (4, 2), (5, 5)] {
            let total: f64 = (0..=mu * q).map(|d| delta_pmf(d, q, mu)).sum();
            assert!((total - 1.0).abs() < 1e-12, "q={q} mu={mu} total={total}");
        }
        assert_eq!(delta_pmf(0, 0, 3), 1.0);
        assert_eq!(delta_pmf(1, 0, 3), 0.0);
    }

    proptest! {
        #[test]
        fn matches_brute_force(x in 0u64..18, y in 0u64..7, z in 0u64..7) {
            prop_assert_eq!(phi(x, y, z), phi_brute(x, y, z));
        }

        #[test]
        fn symmetric_conjugate_bound(x in 0u64..15, y in 1u64..6, z in 1u64..6) {
            // Conjugation swaps the roles of y and z for partitions of x
            // into at most y parts each ≤ z.
            prop_assert_eq!(partitions_at_most(x, y, z), partitions_at_most(x, z, y));
        }
    }
}
