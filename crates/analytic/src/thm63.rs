//! Theorem 6.3: `Pr[A] = e^{-n²(1+o(1))}` — the gap between memory models
//! vanishes as the thread count grows.
//!
//! For Sequential Consistency every window is exactly 2, so
//! `Pr[A] = c(n)·2^{-C(n+1,2)}·n!·2^{-2C(n,2)} = 2^{-n²(3/2 + o(1))}` —
//! computable exactly at any `n` with big rationals. For every other model
//! Claim B.2 (`Pr[B_0] ≥ 1/2` in any model) yields the matching lower bound
//! `Pr[A] ≥ c(n)·2^{-C(n+1,2)}·n!·2^{-2C(n,2)-(n-1)}`, and SC is an upper
//! bound, pinning all models to the same leading exponent.

use crate::bigq::BigRational;
use crate::binom::ln_factorial;
use crate::shift_law::{log2_prefactor, survival_identical_segments_exact, triangle};

/// Exact SC survival probability for `n` threads.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn sc_survival_exact(n: u32) -> BigRational {
    survival_identical_segments_exact(n, 2)
}

/// `log2 Pr[A]` for SC, in floating point (valid for very large `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn sc_log2_survival(n: u32) -> f64 {
    let ln2 = std::f64::consts::LN_2;
    let pairs = (triangle(u64::from(n)) - u64::from(n)) as f64; // C(n,2)
    log2_prefactor(n) + ln_factorial(u64::from(n)) / ln2 - 2.0 * pairs
}

/// Claim B.2's universal lower bound on `log2 Pr[A]`, valid for **every**
/// memory model: each thread's window is 2 with probability at least `1/2`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn universal_log2_survival_lower_bound(n: u32) -> f64 {
    sc_log2_survival(n) - (f64::from(n) - 1.0)
}

/// The normalised exponent `−log2 Pr[A] / n²`; Theorem 6.3 says it tends to
/// `3/2` for SC and is sandwiched within `o(1)` of that for every model.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn sc_normalized_exponent(n: u32) -> f64 {
    -sc_log2_survival(n) / (f64::from(n) * f64::from(n))
}

/// The width of the model gap guaranteed by the sandwich, in normalised
/// exponent units: `(n − 1)/n² → 0`. Every memory model's normalised
/// exponent lies within this of SC's.
#[must_use]
pub fn sandwich_width(n: u32) -> f64 {
    (f64::from(n) - 1.0) / (f64::from(n) * f64::from(n))
}

/// `log2 Pr[A]` for `n` threads whose window growths are **independent**
/// draws from the law `pmf` — the "independent programs" variant of the
/// joined model:
///
/// `Pr[A] = prefactor(n) · n! · Π_{i=1}^{n-1} E[2^{-iΓ}]`,
/// with `E[2^{-iΓ}] = Σ_γ pmf(γ)·2^{-i(γ+2)}`.
///
/// For Weak Ordering this is *exact* even in the paper's shared-program
/// model (the WO window is independent of the program, see the Theorem 6.2
/// proof); for TSO/PSO it neglects the weak dependence induced by the
/// shared program, and serves as the paper-noted alternative model. Unlike
/// the sampled Theorem 6.1 estimator, it has no rare-event sampling floor
/// and is usable at any `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn log2_survival_iid_windows(n: u32, pmf: impl Fn(u64) -> f64, gamma_max: u64) -> f64 {
    assert!(n >= 1, "need at least one thread");
    let ln2 = std::f64::consts::LN_2;
    let mut log2_product = 0.0;
    for i in 1..n {
        let e: f64 = (0..=gamma_max)
            .map(|gamma| pmf(gamma) * 2f64.powi(-((i as i32) * (gamma as i32 + 2))))
            .sum();
        log2_product += e.log2();
    }
    log2_prefactor(n) + ln_factorial(u64::from(n)) / ln2 + log2_product
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_log_formula() {
        for n in [2u32, 3, 5, 8, 16, 32] {
            let exact = sc_survival_exact(n).log2_abs();
            let fast = sc_log2_survival(n);
            assert!(
                (exact - fast).abs() < 1e-6 * exact.abs().max(1.0),
                "n={n}: {exact} vs {fast}"
            );
        }
    }

    #[test]
    fn n2_matches_theorem_62() {
        assert_eq!(sc_survival_exact(2), BigRational::ratio(1, 6));
    }

    #[test]
    fn normalized_exponent_tends_to_three_halves() {
        // The correction term is ≈ log2(n)/n (from Stirling), so convergence
        // is slow but monotone.
        let mut prev_gap = f64::INFINITY;
        for n in [4u32, 8, 16, 32, 64, 128, 256, 1024] {
            let gap = (sc_normalized_exponent(n) - 1.5).abs();
            assert!(gap < prev_gap, "gap not shrinking at n={n}");
            assert!(
                gap < 1.3 * (f64::from(n)).log2() / f64::from(n) + 0.2,
                "gap {gap} larger than the Stirling correction at n={n}"
            );
            prev_gap = gap;
        }
        assert!((sc_normalized_exponent(4096) - 1.5).abs() < 0.005);
    }

    #[test]
    fn sandwich_closes() {
        // (n-1)/n² → 0: by n = 100 every model is within 0.01 of SC's
        // normalised exponent.
        assert!(sandwich_width(2) > 0.2);
        assert!(sandwich_width(100) < 0.01);
        let mut prev = f64::INFINITY;
        for n in [2u32, 4, 8, 16, 32, 64, 128] {
            let w = sandwich_width(n);
            assert!(w < prev);
            prev = w;
        }
    }

    #[test]
    fn universal_bound_below_sc() {
        for n in 2..=40u32 {
            assert!(universal_log2_survival_lower_bound(n) <= sc_log2_survival(n));
        }
    }

    #[test]
    fn iid_windows_reduces_to_sc_for_point_mass() {
        // A point mass at γ = 0 is exactly the SC law.
        for n in [2u32, 5, 16, 48] {
            let iid = log2_survival_iid_windows(n, |g| f64::from(u8::from(g == 0)), 50);
            assert!(
                (iid - sc_log2_survival(n)).abs() < 1e-8,
                "n={n}: {iid} vs {}",
                sc_log2_survival(n)
            );
        }
    }

    #[test]
    fn iid_windows_matches_theorem_62_for_wo() {
        // n = 2, WO law: Pr[A] = 7/54 (independence is exact for WO).
        let wo = |g: u64| {
            if g == 0 {
                2.0 / 3.0
            } else {
                2f64.powi(-(g as i32)) / 3.0
            }
        };
        let got = log2_survival_iid_windows(2, wo, 200);
        assert!(((7.0f64 / 54.0).log2() - got).abs() < 1e-10);
    }

    #[test]
    fn iid_exponent_spread_vanishes() {
        // The WO-vs-SC normalised-exponent gap decays with n.
        let wo = |g: u64| {
            if g == 0 {
                2.0 / 3.0
            } else {
                2f64.powi(-(g as i32)) / 3.0
            }
        };
        let gap = |n: u32| {
            let nn = f64::from(n) * f64::from(n);
            (log2_survival_iid_windows(n, wo, 200) - sc_log2_survival(n)).abs() / nn
        };
        assert!(gap(64) < gap(16));
        assert!(gap(16) < gap(4));
        assert!(gap(64) < 0.015, "gap at n=64 is {}", gap(64));
    }

    #[test]
    fn survival_decays_superexponentially() {
        // log2 Pr[A] ≈ -1.5 n²: ratios between successive n grow.
        let mut prev = sc_log2_survival(2);
        for n in 3..=20u32 {
            let cur = sc_log2_survival(n);
            assert!(cur < prev - 2.0, "n={n}: not decaying fast enough");
            prev = cur;
        }
    }
}
