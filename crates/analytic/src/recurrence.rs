//! Claim 4.3: the steady-state bottom-of-program store fraction under TSO.
//!
//! After settling stage `i`, the bottom instruction is a ST either because it
//! started as one (probability `p`; stores never move under TSO), or because
//! it started as a LD (probability `1 − p`), the instruction above had
//! settled to a ST (probability `X_{i-1}`), and the swap succeeded
//! (probability `s`). This yields `X_i = p + (1 − p)·s·X_{i-1}`, whose fixed
//! point is `p / (1 − (1 − p)s)` — `2/3` at the canonical `p = s = 1/2`.

use crate::bigq::BigRational;

/// The canonical steady-state store fraction, `2/3` (Claim 4.3).
#[must_use]
pub fn bottom_store_fraction_limit_canonical() -> BigRational {
    BigRational::ratio(2, 3)
}

/// The fixed point `p / (1 − (1 − p)s)` of the Claim 4.3 recurrence, for
/// general store probability `p` and swap probability `s`.
///
/// # Panics
///
/// Panics if `p` or `s` lies outside `[0, 1]`.
///
/// ```
/// let l = analytic::recurrence::bottom_store_fraction_limit(0.5, 0.5);
/// assert!((l - 2.0 / 3.0).abs() < 1e-15);
/// ```
#[must_use]
pub fn bottom_store_fraction_limit(p: f64, s: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!((0.0..=1.0).contains(&s), "s must be a probability");
    p / (1.0 - (1.0 - p) * s)
}

/// The finite-`i` value `X_i` of the Claim 4.3 recurrence
/// `X_i = p + (1 − p)·s·X_{i-1}` with `X_1 = p`.
///
/// The paper solves this in closed form as
/// `X_i = L + a^{i-1}(X_1 − L)` with `a = (1−p)s`, `L` the fixed point; we
/// iterate directly, which doubles as a check of that closed form in tests.
///
/// # Panics
///
/// Panics if `i == 0` or the probabilities are invalid.
#[must_use]
pub fn bottom_store_fraction(p: f64, s: f64, i: u64) -> f64 {
    assert!(i >= 1, "the recurrence starts at i = 1");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!((0.0..=1.0).contains(&s), "s must be a probability");
    let mut x = p;
    for _ in 1..i {
        x = p + (1.0 - p) * s * x;
    }
    x
}

/// Exact rational `X_i` for the canonical `p = s = 1/2`:
/// `X_i = 1/2 + X_{i-1}/4`.
///
/// # Panics
///
/// Panics if `i == 0`.
#[must_use]
pub fn bottom_store_fraction_exact(i: u64) -> BigRational {
    assert!(i >= 1, "the recurrence starts at i = 1");
    let half = BigRational::ratio(1, 2);
    let quarter = BigRational::ratio(1, 4);
    let mut x = half.clone();
    for _ in 1..i {
        x = &half + &(&quarter * &x);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_limit_is_two_thirds() {
        assert_eq!(
            bottom_store_fraction_limit_canonical(),
            BigRational::ratio(2, 3)
        );
        assert!((bottom_store_fraction_limit(0.5, 0.5) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn iteration_converges_to_limit() {
        for (p, s) in [(0.5, 0.5), (0.3, 0.7), (0.9, 0.1)] {
            let limit = bottom_store_fraction_limit(p, s);
            let x60 = bottom_store_fraction(p, s, 60);
            assert!(
                (x60 - limit).abs() < 1e-12,
                "p={p} s={s}: {x60} vs {limit}"
            );
        }
    }

    #[test]
    fn matches_paper_closed_form() {
        // X_i = L + a^{i-1}(X_1 - L) with a = 1/4, X_1 = 1/2, L = 2/3.
        for i in 1..=20u64 {
            let closed = 2.0 / 3.0 + 0.25f64.powi(i as i32 - 1) * (0.5 - 2.0 / 3.0);
            assert!(
                (bottom_store_fraction(0.5, 0.5, i) - closed).abs() < 1e-14,
                "i={i}"
            );
        }
    }

    #[test]
    fn exact_rational_matches_float() {
        for i in 1..=12u64 {
            let exact = bottom_store_fraction_exact(i).to_f64();
            let float = bottom_store_fraction(0.5, 0.5, i);
            assert!((exact - float).abs() < 1e-14, "i={i}");
        }
        // X_1 = 1/2, X_2 = 5/8, X_3 = 21/32.
        assert_eq!(bottom_store_fraction_exact(1), BigRational::ratio(1, 2));
        assert_eq!(bottom_store_fraction_exact(2), BigRational::ratio(5, 8));
        assert_eq!(bottom_store_fraction_exact(3), BigRational::ratio(21, 32));
    }

    #[test]
    fn edge_probabilities() {
        // p = 1: always a store.
        assert_eq!(bottom_store_fraction_limit(1.0, 0.5), 1.0);
        // s = 0: nothing moves, the fraction is just p.
        assert_eq!(bottom_store_fraction_limit(0.4, 0.0), 0.4);
        // p = 0: no stores at all.
        assert_eq!(bottom_store_fraction_limit(0.0, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "starts at i = 1")]
    fn zero_index_panics() {
        let _ = bottom_store_fraction(0.5, 0.5, 0);
    }
}
