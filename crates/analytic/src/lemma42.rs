//! Lemma 4.2: the distribution of `L_µ` — exactly `µ` contiguous STs
//! immediately above the critical LD just before it settles.
//!
//! The paper proves `Pr[L_0] = 1/3` exactly and `Pr[L_µ] ≥ (4/7)·2^-µ` for
//! `µ ≥ 1`, via the bound `Pr[L_µ] ≥ 2^-µ · h(µ)` with `h` increasing and
//! `h(1) = 4/7`. We implement both the paper's closed-form bound and a
//! sharper *partition series* that evaluates the same conditional
//! decomposition with the exact `φ(δ, q, µ)` counts instead of the
//! `φ ≥ 1` relaxation.

use crate::bigq::BigRational;
use crate::binom::choose_f64;

/// `Pr[L_0] = 1/3` exactly (Claim 4.3: the settled instruction above the
/// critical LD is a LD with probability `1 − 2/3`).
#[must_use]
pub fn pr_l0() -> BigRational {
    BigRational::ratio(1, 3)
}

/// The paper's `h(µ) = 8/7 − (1 − 2^-(µ+1))⁻¹ + (2/3)(1 − 2^-(µ+2))⁻¹`.
///
/// `Pr[L_µ] ≥ 2^-µ · h(µ)` for `µ ≥ 1`, and `h` is increasing with
/// `h(1) = 4/7`.
///
/// # Panics
///
/// Panics if `µ == 0` (the lemma's bound starts at `µ = 1`).
#[must_use]
pub fn h(mu: u32) -> f64 {
    assert!(mu >= 1, "h(µ) is defined for µ >= 1");
    8.0 / 7.0 - 1.0 / (1.0 - 2f64.powi(-(mu as i32) - 1))
        + (2.0 / 3.0) / (1.0 - 2f64.powi(-(mu as i32) - 2))
}

/// `h(µ)` as an exact rational.
///
/// # Panics
///
/// Panics if `µ == 0`.
#[must_use]
pub fn h_exact(mu: u32) -> BigRational {
    assert!(mu >= 1, "h(µ) is defined for µ >= 1");
    let one = BigRational::one();
    let a = &one - &BigRational::pow2(-(mu as i32) - 1);
    let b = &one - &BigRational::pow2(-(mu as i32) - 2);
    let term1 = BigRational::ratio(8, 7);
    let term2 = a.recip();
    let term3 = &BigRational::ratio(2, 3) * &b.recip();
    &(&term1 - &term2) + &term3
}

/// The paper's lower bound: `(4/7)·2^-µ` for `µ ≥ 1`, `1/3` for `µ = 0`.
#[must_use]
pub fn pr_l_mu_lower_bound(mu: u32) -> f64 {
    if mu == 0 {
        1.0 / 3.0
    } else {
        (4.0 / 7.0) * 2f64.powi(-(mu as i32))
    }
}

/// The total probability mass the lower bound leaves unattributed:
/// `R = 1 − 1/3 − Σ_{µ≥1} (4/7)2^-µ = 2/21` (Claim B.1).
#[must_use]
pub fn remainder_r() -> BigRational {
    BigRational::ratio(2, 21)
}

/// `Pr[Ψ_µ = q] = 2^-µ · 2^-q · C(µ+q−1, q)`: the number of LDs initially
/// interspersed among the lowest `µ` non-critical STs (Step 2 of the proof).
///
/// # Panics
///
/// Panics if `µ == 0` (Ψ is defined relative to the µ-th lowest ST).
#[must_use]
pub fn pr_psi(mu: u32, q: u32) -> f64 {
    assert!(mu >= 1, "Ψ_µ needs µ >= 1");
    2f64.powi(-(mu as i32) - q as i32) * choose_f64(u64::from(mu) + u64::from(q) - 1, u64::from(q))
}

/// The weighted partition sum `G_µ(q) = Σ_δ φ(δ, q, µ) · x^δ` at `x = 1/2`.
///
/// Computed by the recurrence `G_µ(q) = G_{µ−1}(q) + x^µ · G_µ(q−1)`
/// (split on whether some part equals `µ`), so a whole `(µ, q)` table costs
/// `O(µ·q)` — no per-δ partition counting.
#[must_use]
pub fn weighted_phi_sum(mu: u32, q: u32) -> f64 {
    weighted_phi_table(mu, q)[mu as usize][q as usize]
}

/// The full table `G_m(j)` for `m ≤ µ`, `j ≤ q` at `x = 1/2`.
fn weighted_phi_table(mu: u32, q: u32) -> Vec<Vec<f64>> {
    let (m, qq) = (mu as usize, q as usize);
    let mut g = vec![vec![0.0f64; qq + 1]; m + 1];
    for row in g.iter_mut() {
        row[0] = 1.0; // exactly zero parts: only δ = 0.
    }
    for cur_mu in 1..=m {
        let xpow = 2f64.powi(-(cur_mu as i32));
        for cur_q in 1..=qq {
            g[cur_mu][cur_q] = g[cur_mu - 1][cur_q] + xpow * g[cur_mu][cur_q - 1];
        }
    }
    g
}

/// `Pr[F_µ | Ψ_µ = q]` exactly (as an m→∞ limit):
/// `Σ_δ φ(δ, q, µ)·2^-δ / C(µ+q−1, q)` — the probability that all `q`
/// interspersed LDs settle out of the bottom µ-ST region.
///
/// # Panics
///
/// Panics if `µ == 0`.
#[must_use]
pub fn pr_f_given_psi(mu: u32, q: u32) -> f64 {
    assert!(mu >= 1, "F_µ needs µ >= 1");
    if q == 0 {
        return 1.0;
    }
    weighted_phi_sum(mu, q) / choose_f64(u64::from(mu) + u64::from(q) - 1, u64::from(q))
}

/// The paper's Claim 4.4 lower bound on `Pr[F_µ | Ψ_µ = q]`:
/// `(2^-(q−1) − 2^-µq) / C(µ+q−1, q)`.
///
/// # Panics
///
/// Panics if `µ == 0`.
#[must_use]
pub fn pr_f_given_psi_lower_bound(mu: u32, q: u32) -> f64 {
    assert!(mu >= 1, "F_µ needs µ >= 1");
    if q == 0 {
        return 1.0;
    }
    let numer = 2f64.powi(1 - q as i32) - 2f64.powi(-((mu * q) as i32));
    numer / choose_f64(u64::from(mu) + u64::from(q) - 1, u64::from(q))
}

/// `Pr[L_µ]` by the partition series (the proof's decomposition with exact
/// `φ` counts):
///
/// `Pr[L_µ] = Σ_q 2^-µ·2^-q·G_µ(q)·(1 − (2/3)·2^-q)`,
///
/// truncated at `q_max` (terms decay like `4^-q`, so `q_max = 64` is far
/// beyond f64 precision). `µ = 0` returns the exact `1/3`.
#[must_use]
pub fn pr_l_mu_series(mu: u32, q_max: u32) -> f64 {
    if mu == 0 {
        return 1.0 / 3.0;
    }
    let g = weighted_phi_table(mu, q_max);
    let mut total = 0.0;
    for q in 0..=q_max {
        let two_q = 2f64.powi(-(q as i32));
        total += two_q * g[mu as usize][q as usize] * (1.0 - (2.0 / 3.0) * two_q);
    }
    total * 2f64.powi(-(mu as i32))
}

/// `Pr[L_µ]` for every `µ ≤ mu_max` in one pass: the weighted-φ table is
/// built once, so the whole vector costs `O(µ_max · q_max)`.
#[must_use]
pub fn pr_l_mu_series_all(mu_max: u32, q_max: u32) -> Vec<f64> {
    let g = weighted_phi_table(mu_max, q_max);
    let mut out = Vec::with_capacity(mu_max as usize + 1);
    out.push(1.0 / 3.0); // µ = 0 is exact.
    for mu in 1..=mu_max {
        let mut total = 0.0;
        for q in 0..=q_max {
            let two_q = 2f64.powi(-(q as i32));
            total += two_q * g[mu as usize][q as usize] * (1.0 - (2.0 / 3.0) * two_q);
        }
        out.push(total * 2f64.powi(-(mu as i32)));
    }
    out
}

/// Default series truncation depth used across the workspace.
pub const DEFAULT_Q_MAX: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitions::phi;

    #[test]
    fn h1_is_four_sevenths() {
        assert!((h(1) - 4.0 / 7.0).abs() < 1e-15);
        assert_eq!(h_exact(1), BigRational::ratio(4, 7));
    }

    #[test]
    fn h_is_increasing_and_bounded() {
        let mut prev = h(1);
        for mu in 2..40 {
            let cur = h(mu);
            assert!(cur > prev, "h not increasing at µ={mu}");
            prev = cur;
        }
        // h(µ) → 8/7 − 1 + 2/3 = 17/21 as µ → ∞.
        assert!((h(60) - 17.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn h_exact_matches_float() {
        for mu in 1..=20 {
            assert!((h_exact(mu).to_f64() - h(mu)).abs() < 1e-14, "µ={mu}");
        }
    }

    #[test]
    fn remainder_claim_b1() {
        // 1 − 1/3 − Σ_{µ≥1} (4/7)·2^-µ = 2/3 − 4/7 = 2/21.
        let sum_lower: f64 = (1..200).map(pr_l_mu_lower_bound).sum();
        let r = 1.0 - 1.0 / 3.0 - sum_lower;
        assert!((r - 2.0 / 21.0).abs() < 1e-12);
        assert_eq!(remainder_r(), BigRational::ratio(2, 21));
    }

    #[test]
    fn psi_distribution_normalises() {
        for mu in 1..=8u32 {
            let total: f64 = (0..200).map(|q| pr_psi(mu, q)).sum();
            assert!((total - 1.0).abs() < 1e-10, "µ={mu} total={total}");
        }
    }

    #[test]
    fn weighted_phi_sum_matches_direct_phi() {
        for mu in 1..=6u32 {
            for q in 0..=6u32 {
                let direct: f64 = (0..=u64::from(mu) * u64::from(q))
                    .map(|d| phi(d, u64::from(q), u64::from(mu)) as f64 * 2f64.powi(-(d as i32)))
                    .sum();
                let fast = weighted_phi_sum(mu, q);
                assert!(
                    (direct - fast).abs() < 1e-12,
                    "µ={mu} q={q}: {direct} vs {fast}"
                );
            }
        }
    }

    #[test]
    fn pr_f_between_bound_and_one() {
        for mu in 1..=10u32 {
            for q in 0..=10u32 {
                let exact = pr_f_given_psi(mu, q);
                let lower = pr_f_given_psi_lower_bound(mu, q);
                assert!(exact <= 1.0 + 1e-12);
                assert!(
                    exact >= lower - 1e-12,
                    "Claim 4.4 violated at µ={mu} q={q}: {exact} < {lower}"
                );
            }
        }
    }

    #[test]
    fn series_dominates_paper_lower_bound() {
        for mu in 0..=20u32 {
            let series = pr_l_mu_series(mu, DEFAULT_Q_MAX);
            let bound = pr_l_mu_lower_bound(mu);
            assert!(
                series >= bound - 1e-12,
                "Lemma 4.2 bound violated at µ={mu}: {series} < {bound}"
            );
        }
    }

    #[test]
    fn series_normalises_over_mu() {
        // Σ_µ Pr[L_µ] = 1: the settled prefix above the critical LD ends in
        // some exact ST run length.
        let total: f64 = pr_l_mu_series_all(200, DEFAULT_Q_MAX).iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn batch_series_matches_single() {
        let all = pr_l_mu_series_all(20, DEFAULT_Q_MAX);
        for mu in 0..=20u32 {
            assert!(
                (all[mu as usize] - pr_l_mu_series(mu, DEFAULT_Q_MAX)).abs() < 1e-15,
                "µ={mu}"
            );
        }
    }

    #[test]
    fn series_truncation_converges() {
        for mu in 1..=8u32 {
            let coarse = pr_l_mu_series(mu, 24);
            let fine = pr_l_mu_series(mu, 96);
            assert!((coarse - fine).abs() < 1e-12, "µ={mu}");
        }
    }

    #[test]
    #[should_panic(expected = "µ >= 1")]
    fn h_zero_panics() {
        let _ = h(0);
    }
}
