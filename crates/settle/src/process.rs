//! The settling process itself.

use crate::Permutation;
use memmodel::{MemoryModel, OpType, ReorderMatrix, SettleProbs};
use progmodel::{InstrKind, Instruction, Program};
use rand::Rng;
use std::fmt;

/// The settling process for a given memory model.
///
/// Configured by a relaxation matrix, per-pair swap probabilities, and the
/// probability of hoisting past a release fence (the §7 extension; default
/// `1/2`, matching the canonical `s`).
///
/// # Example
///
/// ```
/// use memmodel::MemoryModel;
/// use progmodel::Program;
/// use settle::Settler;
/// use memmodel::OpType::St;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let program = Program::from_filler_types(&[St, St, St]).unwrap();
/// let sc = Settler::for_model(MemoryModel::Sc);
/// let settled = sc.settle(&program, &mut SmallRng::seed_from_u64(0));
/// assert!(settled.permutation().is_identity()); // SC never reorders
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settler {
    matrix: ReorderMatrix,
    probs: SettleProbs,
    fence_pass_probability: f64,
}

impl Settler {
    /// The canonical settler for a named model (`s = 1/2` on relaxed pairs).
    #[must_use]
    pub fn for_model(model: MemoryModel) -> Settler {
        Settler {
            matrix: model.matrix(),
            probs: SettleProbs::canonical(),
            fence_pass_probability: 0.5,
        }
    }

    /// A settler with an explicit matrix and probabilities (the generalised
    /// model of footnote 3).
    #[must_use]
    pub fn new(matrix: ReorderMatrix, probs: SettleProbs) -> Settler {
        Settler {
            matrix,
            probs,
            fence_pass_probability: 0.5,
        }
    }

    /// Replaces the probability of hoisting past a release fence.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `p` is not in `[0, 1]`.
    pub fn with_fence_pass_probability(mut self, p: f64) -> Result<Settler, f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(p);
        }
        self.fence_pass_probability = p;
        Ok(self)
    }

    /// The relaxation matrix in force.
    #[must_use]
    pub fn matrix(&self) -> ReorderMatrix {
        self.matrix
    }

    /// The per-pair swap probabilities in force.
    #[must_use]
    pub fn probs(&self) -> SettleProbs {
        self.probs
    }

    /// The probability of hoisting past a release fence in force.
    #[must_use]
    pub fn fence_pass_probability(&self) -> f64 {
        self.fence_pass_probability
    }

    /// The probability that one settling swap of `mover` past `above`
    /// succeeds.
    ///
    /// Zero when the two conflict (same location — the critical pair), when
    /// either is a non-passable fence, when the mover is itself a fence
    /// (fences never settle), or when the matrix forbids the pair.
    #[must_use]
    pub fn swap_probability(&self, above: &Instruction, mover: &Instruction) -> f64 {
        if mover.conflicts_with(above) {
            return 0.0;
        }
        match (above.kind(), mover.kind()) {
            (_, InstrKind::Fence(_)) => 0.0,
            (InstrKind::Fence(k), InstrKind::Mem(_)) => {
                if k.permits_hoist_above() {
                    self.fence_pass_probability
                } else {
                    0.0
                }
            }
            (InstrKind::Mem(earlier), InstrKind::Mem(later)) => {
                self.probs.effective(&self.matrix, earlier, later)
            }
        }
    }

    /// Runs the full settling process (all `len` rounds) on `program`.
    pub fn settle<R: Rng + ?Sized>(&self, program: &Program, rng: &mut R) -> Settled {
        self.settle_rounds(program, program.len(), rng)
    }

    /// Runs the first `rounds` rounds of settling into caller-provided
    /// scratch — the allocation-free kernel underneath [`settle_rounds`]
    /// (Settler::settle_rounds).
    ///
    /// The scratch's order buffer is reset and reused; once it has grown to
    /// `program.len()` entries, subsequent calls of the same size perform
    /// no heap allocation. The RNG draw sequence is identical to
    /// [`settle_rounds`](Settler::settle_rounds), so the two routes are
    /// interchangeable mid-stream. Returns the settled order: `order[p]`
    /// is the initial index of the instruction at settled position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds > program.len()`.
    pub fn settle_into<'s, R: Rng + ?Sized>(
        &self,
        program: &Program,
        rounds: usize,
        scratch: &'s mut SettleScratch,
        rng: &mut R,
    ) -> &'s [usize] {
        let has_release = scratch.load(program);
        self.settle_packed(scratch, has_release, rounds, rng);
        scratch.sync_order()
    }

    /// Runs `rounds` settling rounds over the already-loaded packed image.
    ///
    /// The hot loop runs over a packed image of the program — one u64 per
    /// instruction carrying its class/location word and its initial index —
    /// so each swap-probability evaluation is a single load plus bit tests
    /// instead of a double indirection through an order buffer into the
    /// instruction table. The four memory-memory probabilities are resolved
    /// once per call, as integer draw thresholds (see [`bool_threshold`]).
    /// Draw-for-draw identical to the general
    /// [`settle_one`](Settler::settle_one) route: blocked probabilities
    /// draw nothing on both paths (asserted by the equivalence tests).
    fn settle_packed<R: Rng + ?Sized>(
        &self,
        scratch: &mut SettleScratch,
        has_release: bool,
        rounds: usize,
        rng: &mut R,
    ) {
        assert!(
            rounds <= scratch.packed.len(),
            "cannot settle {rounds} rounds of a {}-instruction program",
            scratch.packed.len()
        );
        let t_eff = [
            [
                bool_threshold(self.probs.effective(&self.matrix, OpType::Ld, OpType::Ld)),
                bool_threshold(self.probs.effective(&self.matrix, OpType::Ld, OpType::St)),
            ],
            [
                bool_threshold(self.probs.effective(&self.matrix, OpType::St, OpType::Ld)),
                bool_threshold(self.probs.effective(&self.matrix, OpType::St, OpType::St)),
            ],
        ];
        // With every pair blocked and no hoistable fence, no round can draw
        // or swap (the SC fast path): the settled order is the identity.
        let inert = !has_release && t_eff == [[BLOCKED; 2]; 2];
        if !inert {
            let t_fence = bool_threshold(self.fence_pass_probability);
            for r in 0..rounds {
                self.settle_one_packed(&mut scratch.packed, &t_eff, t_fence, has_release, r, rng);
            }
        }
    }

    /// One settling round over the packed image (see
    /// [`settle_into`](Settler::settle_into)). `t_eff[earlier][later]` are
    /// the pre-resolved memory-memory draw thresholds, `t_fence` the
    /// release-fence one, `has_release` whether the program contains a
    /// hoistable fence at all.
    fn settle_one_packed<R: Rng + ?Sized>(
        &self,
        packed: &mut [u64],
        t_eff: &[[u64; 2]; 2],
        t_fence: u64,
        has_release: bool,
        start: usize,
        rng: &mut R,
    ) {
        let mover = (packed[start] >> 32) as u32;
        if mover & FENCE_FLAG != 0 {
            // Fences never settle: every swap probability is zero.
            return;
        }
        let mover_loc = mover & LOC_MASK;
        let mover_st = ((mover >> ST_FLAG_SHIFT) & 1) as usize;
        // Draw threshold for this mover passing an earlier Ld / St.
        let row = [t_eff[0][mover_st], t_eff[1][mover_st]];
        if !has_release && row == [BLOCKED; 2] {
            // This mover can never pass anything: no draw, no swap.
            return;
        }
        let mut pos = start;
        while pos > 0 {
            let above = (packed[pos - 1] >> 32) as u32;
            let t = if above & FENCE_FLAG != 0 {
                if above & RELEASE_FLAG != 0 {
                    t_fence
                } else {
                    BLOCKED
                }
            } else if above & LOC_MASK == mover_loc {
                BLOCKED // conflicting pair (the critical LD/ST)
            } else {
                row[((above >> ST_FLAG_SHIFT) & 1) as usize]
            };
            if t == BLOCKED || (t != CERTAIN && (rng.next_u64() >> 11) >= t) {
                break;
            }
            packed.swap(pos - 1, pos);
            pos -= 1;
        }
    }

    /// Runs only the first `rounds` rounds — the paper's intermediate order
    /// `S_r`. Instructions not yet settled remain at their initial positions
    /// below the settled prefix (exactly as in Appendix A.2, where round `i`
    /// inserts `x_i` into the permuted prefix).
    ///
    /// # Panics
    ///
    /// Panics if `rounds > program.len()`.
    pub fn settle_rounds<R: Rng + ?Sized>(
        &self,
        program: &Program,
        rounds: usize,
        rng: &mut R,
    ) -> Settled {
        let mut scratch = SettleScratch::new();
        self.settle_into(program, rounds, &mut scratch, rng);
        let permutation = Permutation::from_settled_order(scratch.order())
            .expect("swaps preserve the permutation");
        Settled {
            program: program.clone(),
            permutation,
        }
    }

    /// Settles the instruction currently at position `start` upward by
    /// repeated swaps. `order` maps positions to initial indices.
    ///
    /// This is [`swap_probability`](Settler::swap_probability) unrolled for
    /// the hot loop: the mover is loop-invariant (it travels with the swap),
    /// so its kind and location are resolved once per round and fence movers
    /// exit before the loop. Zero probabilities draw nothing, so every early
    /// exit leaves the RNG stream exactly where the general route would
    /// (asserted by the equivalence regression tests).
    pub(crate) fn settle_one<R: Rng + ?Sized>(
        &self,
        program: &Program,
        order: &mut [usize],
        start: usize,
        rng: &mut R,
    ) {
        if start == 0 {
            return;
        }
        let mover = &program[order[start]];
        let (mover_op, mover_loc) = match mover.kind() {
            // Fences never settle: every swap probability is zero.
            InstrKind::Fence(_) => return,
            InstrKind::Mem(op) => (op, mover.loc()),
        };
        let mut pos = start;
        while pos > 0 {
            let above = &program[order[pos - 1]];
            let p = match above.kind() {
                InstrKind::Fence(k) => {
                    if k.permits_hoist_above() {
                        self.fence_pass_probability
                    } else {
                        0.0
                    }
                }
                InstrKind::Mem(e) => {
                    if above.loc() == mover_loc {
                        0.0 // conflicting pair (the critical LD/ST)
                    } else {
                        self.probs.effective(&self.matrix, e, mover_op)
                    }
                }
            };
            if p <= 0.0 || !rng.gen_bool(p) {
                break;
            }
            order.swap(pos - 1, pos);
            pos -= 1;
        }
    }

    /// Samples the critical-window growth `γ` (the paper's `B_γ` variable):
    /// the number of instructions strictly between the settled critical LD
    /// and critical ST.
    ///
    /// `γ` is read straight off the settled order — no `Program` clone and
    /// no [`Permutation`] construction. Bit-for-bit identical to
    /// `settle(program, rng).gamma()` under the same RNG state (asserted by
    /// the equivalence regression tests).
    pub fn sample_gamma<R: Rng + ?Sized>(&self, program: &Program, rng: &mut R) -> u64 {
        let mut scratch = SettleScratch::new();
        self.sample_gamma_scratch(program, &mut scratch, rng)
    }

    /// [`sample_gamma`](Settler::sample_gamma) with caller-provided scratch:
    /// the steady-state allocation-free γ kernel. γ is read straight off
    /// the packed settling image; the scratch's [`order`](SettleScratch::order)
    /// buffer is not refreshed (use [`settle_into`](Settler::settle_into)
    /// when the full settled order is needed).
    pub fn sample_gamma_scratch<R: Rng + ?Sized>(
        &self,
        program: &Program,
        scratch: &mut SettleScratch,
        rng: &mut R,
    ) -> u64 {
        let has_release = scratch.load(program);
        self.settle_packed(scratch, has_release, program.len(), rng);
        scratch.gamma(program)
    }

    /// Samples one γ per slot of `out`, all from fresh settles of the same
    /// `program` — the per-thread window draws of one trial. The packed
    /// image is encoded once and restored by `memcpy` between settles, so
    /// the per-settle overhead is one buffer copy. The RNG stream is
    /// identical to calling [`sample_gamma_scratch`](Settler::sample_gamma_scratch)
    /// `out.len()` times.
    pub fn sample_gammas_scratch<R: Rng + ?Sized>(
        &self,
        program: &Program,
        out: &mut [u64],
        scratch: &mut SettleScratch,
        rng: &mut R,
    ) {
        let has_release = scratch.load(program);
        scratch.pristine.clear();
        scratch.pristine.extend_from_slice(&scratch.packed);
        for (i, slot) in out.iter_mut().enumerate() {
            if i > 0 {
                scratch.packed.copy_from_slice(&scratch.pristine);
            }
            self.settle_packed(scratch, has_release, program.len(), rng);
            *slot = scratch.gamma(program);
        }
    }

    /// Resolves the integer draw-threshold tables the lane kernel shares
    /// with [`settle_packed`](Settler::settle_packed): the four
    /// memory-memory thresholds `t_eff[earlier_st][later_st]` and the
    /// release-fence threshold, all via [`bool_threshold`].
    pub(crate) fn lane_tables(&self) -> ([[u64; 2]; 2], u64) {
        let t_eff = [
            [
                bool_threshold(self.probs.effective(&self.matrix, OpType::Ld, OpType::Ld)),
                bool_threshold(self.probs.effective(&self.matrix, OpType::Ld, OpType::St)),
            ],
            [
                bool_threshold(self.probs.effective(&self.matrix, OpType::St, OpType::Ld)),
                bool_threshold(self.probs.effective(&self.matrix, OpType::St, OpType::St)),
            ],
        ];
        (t_eff, bool_threshold(self.fence_pass_probability))
    }
}

/// Draw threshold of a zero probability: break without consuming a draw.
pub(crate) const BLOCKED: u64 = 0;
/// Draw threshold of probability one: swap without consuming a draw
/// (matching `gen_bool`'s `p >= 1.0` early return).
pub(crate) const CERTAIN: u64 = u64::MAX;

/// Converts a swap probability into its 53-bit integer draw threshold.
///
/// # The 53-bit rounding contract
///
/// The threshold is exactly equivalent to `rng.gen_bool(p)` on the
/// vendored `rand`: `gen_bool(p)` compares
/// `(next_u64() >> 11) as f64 * 2^-53 < p`, and for `0 < p < 1` that
/// holds iff `next_u64() >> 11 < ceil(p * 2^53)` — the scaling by a power
/// of two is exact, and both sides are integers below `2^53`, where `f64`
/// is exact. So the hot kernels compare raw 53-bit draws against this
/// threshold as pure `u64` ops, with no float in the loop and no rounding
/// beyond the single `ceil`.
///
/// The endpoints are pinned, not rounded:
///
/// - `p <= 0.0` maps to `0` (**BLOCKED**): no 53-bit draw is below it, and
///   the scalar kernel breaks without consuming a draw.
/// - `p >= 1.0` maps to `u64::MAX` (**CERTAIN**): every 53-bit draw is
///   below it (draws are `< 2^53`), and the scalar kernel swaps without
///   consuming a draw — mirroring `gen_bool`'s `p >= 1.0` early return.
/// - Every denormal-adjacent `0 < p < 1` (down to `f64::MIN_POSITIVE` and
///   below) maps to a threshold in `[1, 2^53]`: never 0, never saturated,
///   because `ceil` of a positive value is at least 1 and `p < 1` keeps
///   the product below `2^53`.
///
/// The batch-lane kernels ([`Settler::settle_lanes`]) reuse these
/// thresholds verbatim; they differ only in always consuming one draw per
/// active climb step (`draw < t` is false for BLOCKED and true for
/// CERTAIN on every possible 53-bit draw, so no branch is needed).
#[must_use]
pub fn bool_threshold(p: f64) -> u64 {
    if p <= 0.0 {
        BLOCKED
    } else if p >= 1.0 {
        CERTAIN
    } else {
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        {
            (p * (1u64 << 53) as f64).ceil() as u64
        }
    }
}

/// Packed-image flag: the instruction is a fence.
pub(crate) const FENCE_FLAG: u32 = 1 << 31;
/// Packed-image flag: the fence permits hoisting (release).
pub(crate) const RELEASE_FLAG: u32 = 1 << 30;
/// Packed-image bit position of the St flag for memory operations.
pub(crate) const ST_FLAG_SHIFT: u32 = 29;
/// Packed-image mask of the location id for memory operations.
pub(crate) const LOC_MASK: u32 = (1 << 29) - 1;

/// Encodes one instruction's settling-relevant facts into a u32 word.
pub(crate) fn encode(ins: &Instruction) -> u32 {
    match ins.kind() {
        InstrKind::Fence(k) => {
            if k.permits_hoist_above() {
                FENCE_FLAG | RELEASE_FLAG
            } else {
                FENCE_FLAG
            }
        }
        InstrKind::Mem(op) => {
            let loc = ins.loc().expect("memory access has a location").raw();
            assert!(loc <= LOC_MASK, "location id {loc} exceeds the packed encoding");
            (u32::from(op == OpType::St) << ST_FLAG_SHIFT) | loc
        }
    }
}

/// Reusable buffers for the in-place settling kernel.
///
/// One scratch serves any number of programs (of any length): the buffers
/// grow to the largest program seen and are reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct SettleScratch {
    /// `order[p]` = initial index of the instruction currently at `p`.
    /// Refreshed by [`Settler::settle_into`] only.
    order: Vec<usize>,
    /// The packed settling image: `(encode(instr) << 32) | initial index`
    /// per position, permuted in place by the hot loop.
    packed: Vec<u64>,
    /// Unpermuted copy of the packed image, for restoring between the
    /// settles of [`Settler::sample_gammas_scratch`].
    pristine: Vec<u64>,
}

impl SettleScratch {
    /// An empty scratch; the first settle sizes it.
    #[must_use]
    pub fn new() -> SettleScratch {
        SettleScratch {
            order: Vec::new(),
            packed: Vec::new(),
            pristine: Vec::new(),
        }
    }

    /// A scratch pre-sized for programs of `len` instructions, so even the
    /// first settle allocates nothing afterwards.
    #[must_use]
    pub fn with_capacity(len: usize) -> SettleScratch {
        SettleScratch {
            order: Vec::with_capacity(len),
            packed: Vec::with_capacity(len),
            pristine: Vec::with_capacity(len),
        }
    }

    /// Rebuilds the packed image of `program` in initial order, reusing the
    /// buffer's allocation. Returns whether the program contains a
    /// hoistable (release) fence.
    fn load(&mut self, program: &Program) -> bool {
        assert!(
            u32::try_from(program.len()).is_ok(),
            "program too large for the packed settling image"
        );
        let mut has_release = false;
        self.packed.clear();
        self.packed.extend(program.instructions().iter().enumerate().map(|(i, ins)| {
            let item = encode(ins);
            has_release |= item & (FENCE_FLAG | RELEASE_FLAG) == FENCE_FLAG | RELEASE_FLAG;
            (u64::from(item) << 32) | i as u64
        }));
        has_release
    }

    /// Rewrites `order` from the packed image and returns it.
    fn sync_order(&mut self) -> &[usize] {
        self.order.clear();
        self.order
            .extend(self.packed.iter().map(|&x| (x & 0xffff_ffff) as usize));
        &self.order
    }

    /// The settled order of the last [`Settler::settle_into`] call:
    /// `order()[p]` is the initial index of the instruction at settled
    /// position `p`. Empty before the first settle. The γ-only kernels
    /// ([`Settler::sample_gamma_scratch`] and friends) work on the packed
    /// image and do not refresh this buffer.
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The window growth `γ` of the last settle of `program`: instructions
    /// strictly between the settled critical LD and critical ST, read
    /// straight off the packed settling image.
    ///
    /// # Panics
    ///
    /// Panics if the scratch does not hold a settled image of `program`
    /// (length mismatch, or a critical instruction not found), or if the
    /// critical store settled above the critical load — which the process
    /// makes impossible (same-location swaps always fail).
    #[must_use]
    pub fn gamma(&self, program: &Program) -> u64 {
        assert_eq!(
            self.packed.len(),
            program.len(),
            "scratch does not hold a settled image of this program"
        );
        let ld_init = program.critical_load_index() as u64;
        let st_init = program.critical_store_index() as u64;
        let mut ld = usize::MAX;
        let mut st = usize::MAX;
        for (p, &x) in self.packed.iter().enumerate() {
            let i = x & 0xffff_ffff;
            if i == ld_init {
                ld = p;
            } else if i == st_init {
                st = p;
            }
        }
        assert!(
            ld != usize::MAX && st != usize::MAX,
            "critical pair missing from settled order"
        );
        assert!(st > ld, "critical store settled above critical load");
        (st - ld - 1) as u64
    }
}

impl fmt::Display for Settler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Settler[{}]", self.matrix)
    }
}

/// The outcome of a settling run: the program plus the final permutation.
#[derive(Debug, Clone, PartialEq)]
pub struct Settled {
    program: Program,
    permutation: Permutation,
}

impl Settled {
    /// Assembles a `Settled` from already-validated parts (used by the
    /// tracer).
    pub(crate) fn from_parts(program: Program, permutation: Permutation) -> Settled {
        debug_assert_eq!(program.len(), permutation.len());
        Settled {
            program,
            permutation,
        }
    }

    /// The settled permutation `π`.
    #[must_use]
    pub fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    /// The program that was settled.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Settled position of the instruction initially at `i`.
    #[must_use]
    pub fn position_of(&self, i: usize) -> usize {
        self.permutation.position_of(i)
    }

    /// The instructions in settled order, as an owned vector.
    ///
    /// Prefer [`settled_iter`](Settled::settled_iter) where a borrow
    /// suffices; this method is kept for API compatibility.
    #[must_use]
    pub fn settled_instructions(&self) -> Vec<Instruction> {
        self.settled_iter().copied().collect()
    }

    /// Iterates over the instructions in settled order without allocating.
    pub fn settled_iter(&self) -> impl Iterator<Item = &Instruction> + '_ {
        self.permutation
            .settled_order()
            .iter()
            .map(|&i| &self.program[i])
    }

    /// The window growth `γ`: instructions strictly between the critical LD
    /// and critical ST in the settled order.
    ///
    /// # Panics
    ///
    /// Panics if the critical store settled above the critical load, which
    /// the process makes impossible (same-location swaps always fail).
    #[must_use]
    pub fn gamma(&self) -> u64 {
        let ld = self.position_of(self.program.critical_load_index());
        let st = self.position_of(self.program.critical_store_index());
        assert!(st > ld, "critical store settled above critical load");
        (st - ld - 1) as u64
    }

    /// The critical-window length `Γ = γ + 2` (both critical instructions
    /// included) — the segment length fed to the shift process.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.gamma() + 2
    }

    /// The settled positions spanned by the critical window, inclusive
    /// (the paper's `W_k`).
    #[must_use]
    pub fn window_span(&self) -> std::ops::RangeInclusive<usize> {
        let ld = self.position_of(self.program.critical_load_index());
        let st = self.position_of(self.program.critical_store_index());
        ld..=st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::fence::FenceKind;
    use memmodel::OpType::{Ld, St};
    use progmodel::ProgramGenerator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn program(m: usize, seed: u64) -> Program {
        ProgramGenerator::new(m).generate(&mut rng(seed))
    }

    #[test]
    fn sc_settling_is_identity() {
        let settler = Settler::for_model(MemoryModel::Sc);
        for seed in 0..20 {
            let p = program(32, seed);
            let s = settler.settle(&p, &mut rng(seed + 100));
            assert!(s.permutation().is_identity());
            assert_eq!(s.gamma(), 0);
            assert_eq!(s.window_len(), 2);
        }
    }

    #[test]
    fn critical_pair_never_reorders_in_any_model() {
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            for seed in 0..50 {
                let p = program(24, seed);
                let s = settler.settle(&p, &mut rng(seed * 7 + 1));
                let ld = s.position_of(p.critical_load_index());
                let st = s.position_of(p.critical_store_index());
                assert!(ld < st, "{model}: critical pair reordered");
            }
        }
    }

    #[test]
    fn tso_preserves_relative_store_order() {
        let settler = Settler::for_model(MemoryModel::Tso);
        for seed in 0..50 {
            let p = program(24, seed);
            let s = settler.settle(&p, &mut rng(seed * 13 + 3));
            let store_positions: Vec<usize> = (0..p.len())
                .filter(|&i| p[i].op_type() == Some(St))
                .map(|i| s.position_of(i))
                .collect();
            assert!(
                store_positions.windows(2).all(|w| w[0] < w[1]),
                "TSO reordered two stores (seed {seed})"
            );
        }
    }

    #[test]
    fn tso_preserves_relative_load_order() {
        let settler = Settler::for_model(MemoryModel::Tso);
        for seed in 0..50 {
            let p = program(24, seed);
            let s = settler.settle(&p, &mut rng(seed * 17 + 5));
            let load_positions: Vec<usize> = (0..p.len())
                .filter(|&i| p[i].op_type() == Some(Ld))
                .map(|i| s.position_of(i))
                .collect();
            assert!(
                load_positions.windows(2).all(|w| w[0] < w[1]),
                "TSO reordered two loads (seed {seed})"
            );
        }
    }

    #[test]
    fn certain_swaps_climb_all_the_way() {
        // With s = 1 under WO, each instruction climbs to the top (blocked
        // only by same-location conflicts), reversing the filler order.
        let settler = Settler::new(
            ReorderMatrix::all(),
            SettleProbs::uniform(1.0).unwrap(),
        );
        let p = Program::from_filler_types(&[St, Ld, St]).unwrap();
        let s = settler.settle(&p, &mut rng(0));
        // Every round sends the new instruction straight to the top, so the
        // critical LD ends at the top and the critical ST directly below it
        // (blocked by the same-location rule).
        assert_eq!(s.position_of(p.critical_load_index()), 0);
        assert_eq!(s.position_of(p.critical_store_index()), 1);
        assert_eq!(s.gamma(), 0);
        // Fillers are fully reversed below the critical pair.
        assert_eq!(s.position_of(0), 4);
        assert_eq!(s.position_of(1), 3);
        assert_eq!(s.position_of(2), 2);
    }

    #[test]
    fn zero_probability_means_identity_even_when_relaxed() {
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(0.0).unwrap());
        let p = program(16, 9);
        let s = settler.settle(&p, &mut rng(10));
        assert!(s.permutation().is_identity());
    }

    #[test]
    fn settle_rounds_prefix_only_moves_prefix() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let p = program(16, 11);
        let s = settler.settle_rounds(&p, 8, &mut rng(12));
        // Instructions 8.. have not settled; they must still be in initial
        // relative order at the bottom... in fact at their exact positions,
        // because settling rounds 0..8 only permutes positions 0..8.
        for i in 8..p.len() {
            assert_eq!(s.position_of(i), i, "unsettled instruction {i} moved");
        }
    }

    #[test]
    #[should_panic(expected = "cannot settle")]
    fn settle_rounds_bounds_checked() {
        let p = program(4, 0);
        let _ = Settler::for_model(MemoryModel::Sc).settle_rounds(&p, 7, &mut rng(0));
    }

    #[test]
    fn acquire_fence_pins_the_critical_load() {
        // An acquire fence directly above the critical LD prevents any
        // window growth in every model.
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            for seed in 0..20 {
                let p = program(16, seed).with_acquire_before_critical();
                let s = settler.settle(&p, &mut rng(seed + 40));
                assert_eq!(s.gamma(), 0, "{model}: fence failed to pin window");
            }
        }
    }

    #[test]
    fn release_fence_can_be_hoisted_past() {
        // A release fence permits hoisting: under WO with s = 1 an
        // instruction below it climbs past.
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(1.0).unwrap())
            .with_fence_pass_probability(1.0)
            .unwrap();
        let p = Program::from_filler_types(&[St])
            .unwrap()
            .with_fence_at(1, FenceKind::Release);
        // Order: ST, REL, LD*, ST*. The critical LD climbs past REL and ST.
        let s = settler.settle(&p, &mut rng(0));
        assert_eq!(s.position_of(p.critical_load_index()), 0);
    }

    #[test]
    fn full_fence_blocks_everything() {
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(1.0).unwrap());
        let p = Program::from_filler_types(&[St])
            .unwrap()
            .with_fence_at(1, FenceKind::Full);
        let s = settler.settle(&p, &mut rng(0));
        // The critical LD climbs to just below the fence (position 2's LD
        // cannot pass the FENCE at position 1).
        assert_eq!(s.position_of(p.critical_load_index()), 2);
    }

    #[test]
    fn fences_themselves_never_settle() {
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(1.0).unwrap());
        let p = Program::from_filler_types(&[St, St])
            .unwrap()
            .with_fence_at(2, FenceKind::Release);
        let s = settler.settle(&p, &mut rng(0));
        // The fence is at initial index 2; nothing it can do moves it up.
        // (Later instructions may push it down by climbing past.)
        let fence_initial = 2;
        assert!(p[fence_initial].is_fence());
        // All instructions that were above it stay above... the fence can
        // only move down; verify it did not move up.
        assert!(s.position_of(fence_initial) >= 2);
    }

    #[test]
    fn swap_probability_matrix_gating() {
        let tso = Settler::for_model(MemoryModel::Tso);
        let st = Instruction::mem(St, progmodel::Location::filler(0));
        let ld = Instruction::mem(Ld, progmodel::Location::filler(1));
        assert_eq!(tso.swap_probability(&st, &ld), 0.5); // ST then LD: relaxed
        assert_eq!(tso.swap_probability(&ld, &st), 0.0);
        assert_eq!(tso.swap_probability(&st, &st), 0.0);
        assert_eq!(tso.swap_probability(&ld, &ld), 0.0);
    }

    #[test]
    fn swap_probability_same_location_is_zero() {
        let wo = Settler::for_model(MemoryModel::Wo);
        let a = Instruction::mem(St, progmodel::Location::filler(3));
        let b = Instruction::mem(Ld, progmodel::Location::filler(3));
        assert_eq!(wo.swap_probability(&a, &b), 0.0);
        assert_eq!(
            wo.swap_probability(
                &Instruction::critical_load(),
                &Instruction::critical_store()
            ),
            0.0
        );
    }

    #[test]
    fn invalid_fence_probability_rejected() {
        assert!(Settler::for_model(MemoryModel::Wo)
            .with_fence_pass_probability(1.5)
            .is_err());
    }

    #[test]
    fn settle_is_deterministic_given_rng() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let p = program(32, 5);
        let a = settler.settle(&p, &mut rng(77));
        let b = settler.settle(&p, &mut rng(77));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_gamma_matches_settle() {
        let settler = Settler::for_model(MemoryModel::Tso);
        let p = program(32, 6);
        assert_eq!(
            settler.sample_gamma(&p, &mut rng(88)),
            settler.settle(&p, &mut rng(88)).gamma()
        );
    }

    #[test]
    fn scratch_gamma_is_bit_for_bit_identical_to_settled_gamma() {
        // Equivalence regression: for every model, the in-place kernel and
        // the Settled route must produce the same γ AND consume the RNG
        // identically (the final RNG states match), so swapping routes
        // mid-stream cannot desynchronise downstream draws.
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            let mut scratch = SettleScratch::new();
            for seed in 0..40 {
                let p = program(24, seed);
                let mut old_rng = rng(seed * 31 + 7);
                let mut new_rng = old_rng.clone();
                let old = settler.settle(&p, &mut old_rng).gamma();
                let new = settler.sample_gamma_scratch(&p, &mut scratch, &mut new_rng);
                assert_eq!(old, new, "{model} seed {seed}: γ diverged");
                assert_eq!(old_rng, new_rng, "{model} seed {seed}: RNG streams diverged");
            }
        }
    }

    #[test]
    fn settle_into_matches_settle_rounds_order() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let mut scratch = SettleScratch::new();
        for seed in 0..20 {
            let p = program(16, seed);
            for rounds in [0usize, 1, 8, 18] {
                let mut a = rng(seed + 500);
                let mut b = a.clone();
                let settled = settler.settle_rounds(&p, rounds, &mut a);
                let order = settler.settle_into(&p, rounds, &mut scratch, &mut b);
                assert_eq!(settled.permutation().settled_order(), order);
                assert_eq!(a, b, "RNG streams diverged at rounds={rounds}");
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_program_sizes() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let mut scratch = SettleScratch::with_capacity(34);
        for (m, seed) in [(32usize, 1u64), (8, 2), (16, 3)] {
            let p = program(m, seed);
            let g = settler.sample_gamma_scratch(&p, &mut scratch, &mut rng(seed + 9));
            assert_eq!(g, settler.sample_gamma(&p, &mut rng(seed + 9)));
            settler.settle_into(&p, p.len(), &mut scratch, &mut rng(seed + 9));
            assert_eq!(scratch.order().len(), p.len());
        }
    }

    #[test]
    fn scratch_gamma_validates_program_length() {
        let settler = Settler::for_model(MemoryModel::Sc);
        let mut scratch = SettleScratch::new();
        let p = program(8, 0);
        settler.settle_into(&p, p.len(), &mut scratch, &mut rng(1));
        let other = program(12, 0);
        let result = std::panic::catch_unwind(move || scratch.gamma(&other));
        assert!(result.is_err(), "length mismatch must be rejected");
    }

    #[test]
    fn batched_gammas_are_bit_for_bit_identical_to_sequential() {
        // The memcpy-restore batch kernel must consume the RNG exactly as
        // n sequential sample_gamma_scratch calls (and as n Settled
        // routes), for every model.
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            let mut scratch = SettleScratch::new();
            let mut batch = [0u64; 4];
            for seed in 0..25 {
                let p = program(24, seed);
                let mut seq_rng = rng(seed * 41 + 3);
                let mut batch_rng = seq_rng.clone();
                let seq: Vec<u64> = (0..4).map(|_| settler.settle(&p, &mut seq_rng).gamma()).collect();
                settler.sample_gammas_scratch(&p, &mut batch, &mut scratch, &mut batch_rng);
                assert_eq!(seq, batch, "{model} seed {seed}: γ batch diverged");
                assert_eq!(seq_rng, batch_rng, "{model} seed {seed}: RNG streams diverged");
            }
        }
    }

    #[test]
    fn bool_threshold_pins_the_endpoints() {
        // p = 0 is BLOCKED: no 53-bit draw is below it, and the kernels
        // must be able to recognise it without drawing.
        assert_eq!(bool_threshold(0.0), BLOCKED);
        assert_eq!(bool_threshold(-0.0), BLOCKED);
        assert_eq!(bool_threshold(-1.0), BLOCKED);
        // p = 1 is CERTAIN: every 53-bit draw is below it.
        assert_eq!(bool_threshold(1.0), CERTAIN);
        assert_eq!(bool_threshold(2.0), CERTAIN);
    }

    #[test]
    fn bool_threshold_denormal_adjacent_probabilities_stay_interior() {
        // The smallest positive denormal still rounds up to threshold 1:
        // possible in principle, never BLOCKED.
        assert_eq!(bool_threshold(f64::from_bits(1)), 1);
        assert_eq!(bool_threshold(f64::MIN_POSITIVE), 1);
        // The largest p below 1.0 stays strictly below CERTAIN: it is
        // 1 - 2^-53, whose scaled value 2^53 - 1 is exact, so the top
        // draw value still rejects — interior p never saturates.
        let below_one = f64::from_bits(1.0f64.to_bits() - 1);
        let t = bool_threshold(below_one);
        assert_eq!(t, (1u64 << 53) - 1);
        assert_ne!(t, CERTAIN);
        // Tiny-but-normal p also lands in [1, 2^53].
        assert_eq!(bool_threshold(2f64.powi(-60)), 1);
    }

    #[test]
    fn bool_threshold_matches_gen_bool_on_interior_probabilities() {
        // The contract: (draw >> 11) < threshold  <=>  gen_bool accepts.
        // Check exact midpoints and an irrational-ish p against a direct
        // float comparison over boundary draws.
        for p in [0.5, 0.25, 1.0 / 3.0, 0.9, 1e-9] {
            let t = bool_threshold(p);
            assert_eq!(t, (p * (1u64 << 53) as f64).ceil() as u64, "p={p}");
            // Boundary draws: t-1 accepts, t rejects (as floats, exactly).
            let accept = (t - 1) as f64 * (1.0 / (1u64 << 53) as f64);
            let reject = t as f64 * (1.0 / (1u64 << 53) as f64);
            assert!(accept < p, "p={p}: draw t-1 must accept");
            assert!(reject >= p, "p={p}: draw t must reject");
        }
        assert_eq!(bool_threshold(0.5), 1u64 << 52);
    }

    #[test]
    fn settled_iter_matches_settled_instructions() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let p = program(16, 4);
        let s = settler.settle(&p, &mut rng(42));
        let owned = s.settled_instructions();
        let borrowed: Vec<Instruction> = s.settled_iter().copied().collect();
        assert_eq!(owned, borrowed);
        assert_eq!(s.settled_iter().count(), p.len());
    }
}
