//! The settling process itself.

use crate::Permutation;
use memmodel::{MemoryModel, ReorderMatrix, SettleProbs};
use progmodel::{InstrKind, Instruction, Program};
use rand::Rng;
use std::fmt;

/// The settling process for a given memory model.
///
/// Configured by a relaxation matrix, per-pair swap probabilities, and the
/// probability of hoisting past a release fence (the §7 extension; default
/// `1/2`, matching the canonical `s`).
///
/// # Example
///
/// ```
/// use memmodel::MemoryModel;
/// use progmodel::Program;
/// use settle::Settler;
/// use memmodel::OpType::St;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let program = Program::from_filler_types(&[St, St, St]).unwrap();
/// let sc = Settler::for_model(MemoryModel::Sc);
/// let settled = sc.settle(&program, &mut SmallRng::seed_from_u64(0));
/// assert!(settled.permutation().is_identity()); // SC never reorders
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settler {
    matrix: ReorderMatrix,
    probs: SettleProbs,
    fence_pass_probability: f64,
}

impl Settler {
    /// The canonical settler for a named model (`s = 1/2` on relaxed pairs).
    #[must_use]
    pub fn for_model(model: MemoryModel) -> Settler {
        Settler {
            matrix: model.matrix(),
            probs: SettleProbs::canonical(),
            fence_pass_probability: 0.5,
        }
    }

    /// A settler with an explicit matrix and probabilities (the generalised
    /// model of footnote 3).
    #[must_use]
    pub fn new(matrix: ReorderMatrix, probs: SettleProbs) -> Settler {
        Settler {
            matrix,
            probs,
            fence_pass_probability: 0.5,
        }
    }

    /// Replaces the probability of hoisting past a release fence.
    ///
    /// # Errors
    ///
    /// Returns the invalid value if `p` is not in `[0, 1]`.
    pub fn with_fence_pass_probability(mut self, p: f64) -> Result<Settler, f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(p);
        }
        self.fence_pass_probability = p;
        Ok(self)
    }

    /// The relaxation matrix in force.
    #[must_use]
    pub fn matrix(&self) -> ReorderMatrix {
        self.matrix
    }

    /// The per-pair swap probabilities in force.
    #[must_use]
    pub fn probs(&self) -> SettleProbs {
        self.probs
    }

    /// The probability that one settling swap of `mover` past `above`
    /// succeeds.
    ///
    /// Zero when the two conflict (same location — the critical pair), when
    /// either is a non-passable fence, when the mover is itself a fence
    /// (fences never settle), or when the matrix forbids the pair.
    #[must_use]
    pub fn swap_probability(&self, above: &Instruction, mover: &Instruction) -> f64 {
        if mover.conflicts_with(above) {
            return 0.0;
        }
        match (above.kind(), mover.kind()) {
            (_, InstrKind::Fence(_)) => 0.0,
            (InstrKind::Fence(k), InstrKind::Mem(_)) => {
                if k.permits_hoist_above() {
                    self.fence_pass_probability
                } else {
                    0.0
                }
            }
            (InstrKind::Mem(earlier), InstrKind::Mem(later)) => {
                self.probs.effective(&self.matrix, earlier, later)
            }
        }
    }

    /// Runs the full settling process (all `len` rounds) on `program`.
    pub fn settle<R: Rng + ?Sized>(&self, program: &Program, rng: &mut R) -> Settled {
        self.settle_rounds(program, program.len(), rng)
    }

    /// Runs only the first `rounds` rounds — the paper's intermediate order
    /// `S_r`. Instructions not yet settled remain at their initial positions
    /// below the settled prefix (exactly as in Appendix A.2, where round `i`
    /// inserts `x_i` into the permuted prefix).
    ///
    /// # Panics
    ///
    /// Panics if `rounds > program.len()`.
    pub fn settle_rounds<R: Rng + ?Sized>(
        &self,
        program: &Program,
        rounds: usize,
        rng: &mut R,
    ) -> Settled {
        assert!(
            rounds <= program.len(),
            "cannot settle {rounds} rounds of a {}-instruction program",
            program.len()
        );
        let mut order: Vec<usize> = (0..program.len()).collect();
        for r in 0..rounds {
            self.settle_one(program, &mut order, r, rng);
        }
        let permutation =
            Permutation::from_settled_order(&order).expect("swaps preserve the permutation");
        Settled {
            program: program.clone(),
            permutation,
        }
    }

    /// Settles the instruction currently at position `start` upward by
    /// repeated swaps. `order` maps positions to initial indices.
    pub(crate) fn settle_one<R: Rng + ?Sized>(
        &self,
        program: &Program,
        order: &mut [usize],
        start: usize,
        rng: &mut R,
    ) {
        let mut pos = start;
        while pos > 0 {
            let mover = &program[order[pos]];
            let above = &program[order[pos - 1]];
            let p = self.swap_probability(above, mover);
            if p <= 0.0 || !rng.gen_bool(p) {
                break;
            }
            order.swap(pos - 1, pos);
            pos -= 1;
        }
    }

    /// Samples the critical-window growth `γ` (the paper's `B_γ` variable):
    /// the number of instructions strictly between the settled critical LD
    /// and critical ST.
    pub fn sample_gamma<R: Rng + ?Sized>(&self, program: &Program, rng: &mut R) -> u64 {
        self.settle(program, rng).gamma()
    }
}

impl fmt::Display for Settler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Settler[{}]", self.matrix)
    }
}

/// The outcome of a settling run: the program plus the final permutation.
#[derive(Debug, Clone, PartialEq)]
pub struct Settled {
    program: Program,
    permutation: Permutation,
}

impl Settled {
    /// Assembles a `Settled` from already-validated parts (used by the
    /// tracer).
    pub(crate) fn from_parts(program: Program, permutation: Permutation) -> Settled {
        debug_assert_eq!(program.len(), permutation.len());
        Settled {
            program,
            permutation,
        }
    }

    /// The settled permutation `π`.
    #[must_use]
    pub fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    /// The program that was settled.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Settled position of the instruction initially at `i`.
    #[must_use]
    pub fn position_of(&self, i: usize) -> usize {
        self.permutation.position_of(i)
    }

    /// The instructions in settled order.
    #[must_use]
    pub fn settled_instructions(&self) -> Vec<Instruction> {
        self.permutation
            .settled_order()
            .iter()
            .map(|&i| self.program[i])
            .collect()
    }

    /// The window growth `γ`: instructions strictly between the critical LD
    /// and critical ST in the settled order.
    ///
    /// # Panics
    ///
    /// Panics if the critical store settled above the critical load, which
    /// the process makes impossible (same-location swaps always fail).
    #[must_use]
    pub fn gamma(&self) -> u64 {
        let ld = self.position_of(self.program.critical_load_index());
        let st = self.position_of(self.program.critical_store_index());
        assert!(st > ld, "critical store settled above critical load");
        (st - ld - 1) as u64
    }

    /// The critical-window length `Γ = γ + 2` (both critical instructions
    /// included) — the segment length fed to the shift process.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.gamma() + 2
    }

    /// The settled positions spanned by the critical window, inclusive
    /// (the paper's `W_k`).
    #[must_use]
    pub fn window_span(&self) -> std::ops::RangeInclusive<usize> {
        let ld = self.position_of(self.program.critical_load_index());
        let st = self.position_of(self.program.critical_store_index());
        ld..=st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::fence::FenceKind;
    use memmodel::OpType::{Ld, St};
    use progmodel::ProgramGenerator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn program(m: usize, seed: u64) -> Program {
        ProgramGenerator::new(m).generate(&mut rng(seed))
    }

    #[test]
    fn sc_settling_is_identity() {
        let settler = Settler::for_model(MemoryModel::Sc);
        for seed in 0..20 {
            let p = program(32, seed);
            let s = settler.settle(&p, &mut rng(seed + 100));
            assert!(s.permutation().is_identity());
            assert_eq!(s.gamma(), 0);
            assert_eq!(s.window_len(), 2);
        }
    }

    #[test]
    fn critical_pair_never_reorders_in_any_model() {
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            for seed in 0..50 {
                let p = program(24, seed);
                let s = settler.settle(&p, &mut rng(seed * 7 + 1));
                let ld = s.position_of(p.critical_load_index());
                let st = s.position_of(p.critical_store_index());
                assert!(ld < st, "{model}: critical pair reordered");
            }
        }
    }

    #[test]
    fn tso_preserves_relative_store_order() {
        let settler = Settler::for_model(MemoryModel::Tso);
        for seed in 0..50 {
            let p = program(24, seed);
            let s = settler.settle(&p, &mut rng(seed * 13 + 3));
            let store_positions: Vec<usize> = (0..p.len())
                .filter(|&i| p[i].op_type() == Some(St))
                .map(|i| s.position_of(i))
                .collect();
            assert!(
                store_positions.windows(2).all(|w| w[0] < w[1]),
                "TSO reordered two stores (seed {seed})"
            );
        }
    }

    #[test]
    fn tso_preserves_relative_load_order() {
        let settler = Settler::for_model(MemoryModel::Tso);
        for seed in 0..50 {
            let p = program(24, seed);
            let s = settler.settle(&p, &mut rng(seed * 17 + 5));
            let load_positions: Vec<usize> = (0..p.len())
                .filter(|&i| p[i].op_type() == Some(Ld))
                .map(|i| s.position_of(i))
                .collect();
            assert!(
                load_positions.windows(2).all(|w| w[0] < w[1]),
                "TSO reordered two loads (seed {seed})"
            );
        }
    }

    #[test]
    fn certain_swaps_climb_all_the_way() {
        // With s = 1 under WO, each instruction climbs to the top (blocked
        // only by same-location conflicts), reversing the filler order.
        let settler = Settler::new(
            ReorderMatrix::all(),
            SettleProbs::uniform(1.0).unwrap(),
        );
        let p = Program::from_filler_types(&[St, Ld, St]).unwrap();
        let s = settler.settle(&p, &mut rng(0));
        // Every round sends the new instruction straight to the top, so the
        // critical LD ends at the top and the critical ST directly below it
        // (blocked by the same-location rule).
        assert_eq!(s.position_of(p.critical_load_index()), 0);
        assert_eq!(s.position_of(p.critical_store_index()), 1);
        assert_eq!(s.gamma(), 0);
        // Fillers are fully reversed below the critical pair.
        assert_eq!(s.position_of(0), 4);
        assert_eq!(s.position_of(1), 3);
        assert_eq!(s.position_of(2), 2);
    }

    #[test]
    fn zero_probability_means_identity_even_when_relaxed() {
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(0.0).unwrap());
        let p = program(16, 9);
        let s = settler.settle(&p, &mut rng(10));
        assert!(s.permutation().is_identity());
    }

    #[test]
    fn settle_rounds_prefix_only_moves_prefix() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let p = program(16, 11);
        let s = settler.settle_rounds(&p, 8, &mut rng(12));
        // Instructions 8.. have not settled; they must still be in initial
        // relative order at the bottom... in fact at their exact positions,
        // because settling rounds 0..8 only permutes positions 0..8.
        for i in 8..p.len() {
            assert_eq!(s.position_of(i), i, "unsettled instruction {i} moved");
        }
    }

    #[test]
    #[should_panic(expected = "cannot settle")]
    fn settle_rounds_bounds_checked() {
        let p = program(4, 0);
        let _ = Settler::for_model(MemoryModel::Sc).settle_rounds(&p, 7, &mut rng(0));
    }

    #[test]
    fn acquire_fence_pins_the_critical_load() {
        // An acquire fence directly above the critical LD prevents any
        // window growth in every model.
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            for seed in 0..20 {
                let p = program(16, seed).with_acquire_before_critical();
                let s = settler.settle(&p, &mut rng(seed + 40));
                assert_eq!(s.gamma(), 0, "{model}: fence failed to pin window");
            }
        }
    }

    #[test]
    fn release_fence_can_be_hoisted_past() {
        // A release fence permits hoisting: under WO with s = 1 an
        // instruction below it climbs past.
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(1.0).unwrap())
            .with_fence_pass_probability(1.0)
            .unwrap();
        let p = Program::from_filler_types(&[St])
            .unwrap()
            .with_fence_at(1, FenceKind::Release);
        // Order: ST, REL, LD*, ST*. The critical LD climbs past REL and ST.
        let s = settler.settle(&p, &mut rng(0));
        assert_eq!(s.position_of(p.critical_load_index()), 0);
    }

    #[test]
    fn full_fence_blocks_everything() {
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(1.0).unwrap());
        let p = Program::from_filler_types(&[St])
            .unwrap()
            .with_fence_at(1, FenceKind::Full);
        let s = settler.settle(&p, &mut rng(0));
        // The critical LD climbs to just below the fence (position 2's LD
        // cannot pass the FENCE at position 1).
        assert_eq!(s.position_of(p.critical_load_index()), 2);
    }

    #[test]
    fn fences_themselves_never_settle() {
        let settler = Settler::new(ReorderMatrix::all(), SettleProbs::uniform(1.0).unwrap());
        let p = Program::from_filler_types(&[St, St])
            .unwrap()
            .with_fence_at(2, FenceKind::Release);
        let s = settler.settle(&p, &mut rng(0));
        // The fence is at initial index 2; nothing it can do moves it up.
        // (Later instructions may push it down by climbing past.)
        let fence_initial = 2;
        assert!(p[fence_initial].is_fence());
        // All instructions that were above it stay above... the fence can
        // only move down; verify it did not move up.
        assert!(s.position_of(fence_initial) >= 2);
    }

    #[test]
    fn swap_probability_matrix_gating() {
        let tso = Settler::for_model(MemoryModel::Tso);
        let st = Instruction::mem(St, progmodel::Location::filler(0));
        let ld = Instruction::mem(Ld, progmodel::Location::filler(1));
        assert_eq!(tso.swap_probability(&st, &ld), 0.5); // ST then LD: relaxed
        assert_eq!(tso.swap_probability(&ld, &st), 0.0);
        assert_eq!(tso.swap_probability(&st, &st), 0.0);
        assert_eq!(tso.swap_probability(&ld, &ld), 0.0);
    }

    #[test]
    fn swap_probability_same_location_is_zero() {
        let wo = Settler::for_model(MemoryModel::Wo);
        let a = Instruction::mem(St, progmodel::Location::filler(3));
        let b = Instruction::mem(Ld, progmodel::Location::filler(3));
        assert_eq!(wo.swap_probability(&a, &b), 0.0);
        assert_eq!(
            wo.swap_probability(
                &Instruction::critical_load(),
                &Instruction::critical_store()
            ),
            0.0
        );
    }

    #[test]
    fn invalid_fence_probability_rejected() {
        assert!(Settler::for_model(MemoryModel::Wo)
            .with_fence_pass_probability(1.5)
            .is_err());
    }

    #[test]
    fn settle_is_deterministic_given_rng() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let p = program(32, 5);
        let a = settler.settle(&p, &mut rng(77));
        let b = settler.settle(&p, &mut rng(77));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_gamma_matches_settle() {
        let settler = Settler::for_model(MemoryModel::Tso);
        let p = program(32, 6);
        assert_eq!(
            settler.sample_gamma(&p, &mut rng(88)),
            settler.settle(&p, &mut rng(88)).gamma()
        );
    }
}
