//! Observables of intermediate settling orders — the random events the
//! paper's Section 4 proof machinery is built on.
//!
//! * [`observe_l_mu`] — the `L_µ` variable of Lemma 4.2: how many contiguous
//!   STs sit immediately above the critical LD in `S_m` (just before the
//!   critical LD settles).
//! * [`observe_bottom_store`] — the `S_{ST,i}(i)` event of Claim 4.3: whether
//!   the bottom instruction of the settled prefix is a ST.

use crate::Settler;
use memmodel::OpType;
use progmodel::Program;
use rand::Rng;

/// Samples `L_µ`: settles the first `m` instructions of `program` (all the
/// fillers) and counts the contiguous STs directly above the critical LD.
///
/// The critical LD has not yet settled, so it still sits at its initial
/// position; the count walks upward from there through the settled prefix.
///
/// # Panics
///
/// Panics if `program`'s critical load is not preceded only by fillers
/// (e.g. a fence between the fillers and the critical pair is fine — it
/// just terminates the ST run).
pub fn observe_l_mu<R: Rng + ?Sized>(
    settler: &Settler,
    program: &Program,
    rng: &mut R,
) -> u64 {
    let m = program.critical_load_index();
    let settled = settler.settle_rounds(program, m, rng);
    let mut count = 0;
    for pos in (0..m).rev() {
        let instr = program[settled.permutation().at_position(pos)];
        if instr.op_type() == Some(OpType::St) {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// Samples the Claim 4.3 event: settles the first `i` instructions and
/// reports whether the instruction at the bottom of the settled prefix
/// (position `i − 1`) is a ST.
///
/// # Panics
///
/// Panics if `i == 0` or `i > program.len()`.
pub fn observe_bottom_store<R: Rng + ?Sized>(
    settler: &Settler,
    program: &Program,
    i: usize,
    rng: &mut R,
) -> bool {
    assert!(i >= 1, "the bottom of an empty prefix is undefined");
    let settled = settler.settle_rounds(program, i, rng);
    let instr = program[settled.permutation().at_position(i - 1)];
    instr.op_type() == Some(OpType::St)
}

/// Samples the full per-thread observable vector used by the joined model:
/// settles everything and returns `(γ, Γ)`.
pub fn observe_window<R: Rng + ?Sized>(
    settler: &Settler,
    program: &Program,
    rng: &mut R,
) -> (u64, u64) {
    let s = settler.settle(program, rng);
    (s.gamma(), s.window_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::MemoryModel;
    use memmodel::OpType::{Ld, St};
    use progmodel::ProgramGenerator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn l_mu_under_sc_counts_initial_trailing_stores() {
        // SC never reorders, so L_µ is just the run of STs at the end of the
        // initial filler sequence.
        let settler = Settler::for_model(MemoryModel::Sc);
        let p = Program::from_filler_types(&[Ld, St, Ld, St, St]).unwrap();
        assert_eq!(observe_l_mu(&settler, &p, &mut rng(0)), 2);
        let p = Program::from_filler_types(&[St, St, St]).unwrap();
        assert_eq!(observe_l_mu(&settler, &p, &mut rng(0)), 3);
        let p = Program::from_filler_types(&[St, Ld]).unwrap();
        assert_eq!(observe_l_mu(&settler, &p, &mut rng(0)), 0);
        let p = Program::from_filler_types(&[]).unwrap();
        assert_eq!(observe_l_mu(&settler, &p, &mut rng(0)), 0);
    }

    #[test]
    fn bottom_store_under_sc_is_the_initial_type() {
        let settler = Settler::for_model(MemoryModel::Sc);
        let p = Program::from_filler_types(&[St, Ld, St]).unwrap();
        assert!(observe_bottom_store(&settler, &p, 1, &mut rng(0)));
        assert!(!observe_bottom_store(&settler, &p, 2, &mut rng(0)));
        assert!(observe_bottom_store(&settler, &p, 3, &mut rng(0)));
    }

    #[test]
    fn tso_l_mu_is_at_least_the_initial_run() {
        // Under TSO, LDs can only leave the bottom region (never enter it),
        // so the contiguous ST run above the critical LD can only grow
        // relative to SC... for the *same* realisation it is ≥ the initial
        // trailing-store run.
        let settler = Settler::for_model(MemoryModel::Tso);
        for seed in 0..40u64 {
            let p = ProgramGenerator::new(20).generate(&mut rng(seed));
            let types = p.filler_types();
            let initial_run = types.iter().rev().take_while(|&&t| t == St).count() as u64;
            let observed = observe_l_mu(&settler, &p, &mut rng(seed + 500));
            assert!(
                observed >= initial_run,
                "seed {seed}: observed {observed} < initial run {initial_run}"
            );
        }
    }

    #[test]
    fn observe_window_consistent_with_settle() {
        let settler = Settler::for_model(MemoryModel::Wo);
        let p = ProgramGenerator::new(24).generate(&mut rng(1));
        let (gamma, len) = observe_window(&settler, &p, &mut rng(2));
        assert_eq!(len, gamma + 2);
    }

    #[test]
    #[should_panic(expected = "empty prefix")]
    fn bottom_store_rejects_zero_prefix() {
        let settler = Settler::for_model(MemoryModel::Sc);
        let p = Program::from_filler_types(&[St]).unwrap();
        let _ = observe_bottom_store(&settler, &p, 0, &mut rng(0));
    }
}
