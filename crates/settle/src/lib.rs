//! The settling process (§3.1.2 / Appendix A.2): randomized instruction
//! reordering under a memory consistency model.
//!
//! Settling proceeds in one round per instruction, in program order. In
//! round `r`, instruction `x_r` repeatedly swaps with the instruction
//! directly before it in the current order; each swap succeeds with the
//! model's pair probability (`0` when the model forbids the reordering,
//! `s = 1/2` canonically otherwise), and always fails between instructions
//! that access the same location — in particular between the critical store
//! and the critical load.
//!
//! The crate provides:
//!
//! * [`Settler`] — the process itself, configurable by [`memmodel`] matrix,
//!   per-pair probabilities, and fence pass-probability;
//! * [`Settled`] — the resulting permutation with critical-window accessors;
//! * [`SettleScratch`] — reusable buffers for the allocation-free kernel
//!   ([`Settler::settle_into`] / [`Settler::sample_gamma_scratch`]);
//! * [`SettleTrace`] — a round-by-round trace (reproduces the paper's
//!   Figure 1);
//! * [`events`] — observables of the intermediate order `S_m` used by
//!   Lemma 4.2 and Claim 4.3;
//! * [`exact`] — exhaustive finite-`m` settling distributions for small
//!   programs (a third, fully exact evaluation route);
//! * [`beta`] — the single-round insertion-point distribution of
//!   Appendix A.2, Definition 2.
//!
//! # Example
//!
//! ```
//! use memmodel::MemoryModel;
//! use progmodel::ProgramGenerator;
//! use settle::Settler;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let program = ProgramGenerator::new(32).generate(&mut rng);
//! let settler = Settler::for_model(MemoryModel::Tso);
//! let settled = settler.settle(&program, &mut rng);
//! // The critical pair stays ordered, whatever happened in between.
//! assert!(settled.position_of(program.critical_load_index())
//!     < settled.position_of(program.critical_store_index()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beta;
pub mod events;
pub mod exact;
mod lanes;
mod perm;
mod process;
mod trace;

pub use lanes::{LaneRng, LaneScratch, MAX_LANES};
pub use perm::{NotAPermutation, Permutation};
pub use process::{bool_threshold, SettleScratch, Settled, Settler};
pub use trace::{SettleTrace, TraceRound};
