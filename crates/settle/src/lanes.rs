//! Batch-lane settling: L independent trials advanced in lockstep.
//!
//! The scalar kernel ([`Settler::settle_into`] and friends) walks each
//! mover up with a data-dependent `while pos > 0` loop — one branchy climb
//! per instruction per trial. This module restructures the work across
//! *lanes*: a structure-of-arrays [`LaneScratch`] holds up to
//! [`MAX_LANES`] independent packed settle images position-major
//! (`img[pos * capacity + lane]`), and [`Settler::settle_lanes`] advances
//! every lane's round-`r` climb together, one masked compare/select/swap
//! per lane per lockstep step. Lanes whose climb has ended retire via an
//! all-ones/all-zero `active` mask; the draw thresholds are the same
//! 53-bit integers the scalar kernel uses (see
//! [`bool_threshold`](crate::bool_threshold)), so the pass test is a pure
//! `u64` compare the autovectorizer can chew — no `std::simd`, no
//! `unsafe`.
//!
//! # The lane draw stream
//!
//! Each lane draws from its **own** counter-seeded [`LaneRng`] stream (the
//! caller seeds lane `l` with a pure function of its global trial index).
//! A lane's draw count depends only on that lane's trajectory — retired
//! lanes consume nothing, because [`LaneRng::next_masked`] advances only
//! active lanes — so every trial's results are a pure function of its own
//! seed: bit-identical for any lane width, any thread count, and any
//! grouping of trials into blocks. This is a deliberately *different*
//! stream from the scalar kernels (which share one sequential RNG per
//! chunk and skip draws on BLOCKED/CERTAIN thresholds); the two paths
//! agree statistically, not bit-wise, and are validated against each other
//! by chi-square goodness-of-fit tests.
//!
//! Per trial, the stream is consumed in a fixed order:
//!
//! 1. **regeneration** — filler types ([`LaneScratch::regenerate`]): at
//!    the canonical `p = 1/2`, one word per 64 fillers (each bit is one
//!    type); otherwise one word per filler, compared against
//!    `bool_threshold(p)`;
//! 2. **settling** — one word per *active* lockstep step of each round,
//!    consumed by [`Settler::settle_lanes`];
//! 3. any downstream draws (e.g. the shift process) the caller takes from
//!    the same per-lane stream.

use crate::process::{
    bool_threshold, encode, BLOCKED, FENCE_FLAG, LOC_MASK, RELEASE_FLAG, ST_FLAG_SHIFT,
};
use crate::Settler;
use progmodel::Program;

/// Largest supported lane width.
pub const MAX_LANES: usize = 64;

/// Packed-image fence flag, shifted to the image's high word.
const F_FENCE: u64 = (FENCE_FLAG as u64) << 32;
/// Packed-image release flag, shifted to the image's high word.
const F_RELEASE: u64 = (RELEASE_FLAG as u64) << 32;
/// Packed-image St flag, shifted to the image's high word.
const F_ST: u64 = 1u64 << (32 + ST_FLAG_SHIFT);
/// Bit index of [`F_ST`].
const F_ST_BIT: u32 = 32 + ST_FLAG_SHIFT;
/// Packed-image location mask, shifted to the image's high word.
const M_LOC: u64 = (LOC_MASK as u64) << 32;
/// Low half of a packed word: the instruction's initial index.
const INDEX_MASK: u64 = 0xffff_ffff;

/// All-ones for `true`, all-zeros for `false` — the branchless select mask.
#[inline]
fn mask(b: bool) -> u64 {
    u64::from(b).wrapping_neg()
}

/// A structure-of-arrays xoshiro256++ generator: one independent stream
/// per lane, stepped together.
///
/// Each lane's stream is **bit-identical** to the vendored
/// `SmallRng::seed_from_u64(seed)` stream for the same seed (same
/// SplitMix64 state expansion, same all-zero-state guard, same output
/// function), so a width-1 `LaneRng` is interchangeable with a scalar
/// `SmallRng` draw-for-draw. Seed lanes with
/// [`montecarlo::trial_seed`]-style counter values to get the pure
/// per-trial streams the lane kernels are built on.
///
/// [`montecarlo::trial_seed`]: https://docs.rs/montecarlo
#[derive(Debug, Clone, Default)]
pub struct LaneRng {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
}

impl LaneRng {
    /// An empty generator; [`reseed`](LaneRng::reseed) sizes it.
    #[must_use]
    pub fn new() -> LaneRng {
        LaneRng::default()
    }

    /// A generator with state capacity for `width` lanes pre-allocated.
    #[must_use]
    pub fn with_capacity(width: usize) -> LaneRng {
        LaneRng {
            s0: Vec::with_capacity(width),
            s1: Vec::with_capacity(width),
            s2: Vec::with_capacity(width),
            s3: Vec::with_capacity(width),
        }
    }

    /// The current lane width (the length of the last
    /// [`reseed`](LaneRng::reseed)).
    #[must_use]
    pub fn width(&self) -> usize {
        self.s0.len()
    }

    /// Reseeds to one lane per entry of `seeds`, expanding each seed into
    /// xoshiro256++ state exactly as the vendored
    /// `SmallRng::seed_from_u64` does (SplitMix64 ×4, all-zero guard).
    pub fn reseed(&mut self, seeds: &[u64]) {
        self.s0.clear();
        self.s1.clear();
        self.s2.clear();
        self.s3.clear();
        for &seed in seeds {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            self.s0.push(s[0]);
            self.s1.push(s[1]);
            self.s2.push(s[2]);
            self.s3.push(s[3]);
        }
    }

    /// Draws `words` words from every lane into `out`, word-major:
    /// lane `l`'s `j`-th word lands at `out[j * stride + l]`. All lanes
    /// advance (unmasked bulk fill).
    ///
    /// # Panics
    ///
    /// Panics if `out` is too short for `words` rows of `stride` with
    /// [`width`](LaneRng::width) live columns.
    pub fn fill(&mut self, out: &mut [u64], words: usize, stride: usize) {
        let w = self.width();
        assert!(stride >= w, "stride {stride} below lane width {w}");
        for j in 0..words {
            let row = &mut out[j * stride..j * stride + w];
            for (l, slot) in row.iter_mut().enumerate() {
                *slot = self.step_lane(l, u64::MAX);
            }
        }
    }

    /// Draws one word per lane into `out`, advancing **only** lanes whose
    /// mask in `active` is non-zero. Retired lanes keep their state and
    /// receive a stale (unusable) word — callers mask the result with the
    /// same `active` mask. This is what keeps each lane's draw count a
    /// pure function of its own trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `active` or `out` disagree with the lane width.
    pub fn next_masked(&mut self, active: &[u64], out: &mut [u64]) {
        let w = self.width();
        assert_eq!(active.len(), w, "active mask width mismatch");
        assert_eq!(out.len(), w, "output width mismatch");
        for l in 0..w {
            out[l] = self.step_lane(l, active[l]);
        }
    }

    /// One xoshiro256++ step of lane `l`; the new state is committed only
    /// under `m` (all-ones commits, all-zeros keeps the old state).
    #[inline]
    fn step_lane(&mut self, l: usize, m: u64) -> u64 {
        let (s0, s1, s2, s3) = (self.s0[l], self.s1[l], self.s2[l], self.s3[l]);
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        let n3 = n3.rotate_left(45);
        self.s0[l] = (s0 & !m) | (n0 & m);
        self.s1[l] = (s1 & !m) | (n1 & m);
        self.s2[l] = (s2 & !m) | (n2 & m);
        self.s3[l] = (s3 & !m) | (n3 & m);
        result
    }
}

/// Structure-of-arrays scratch for the batch-lane settle kernel.
///
/// Holds up to `capacity` independent packed settle images of one template
/// program, stored position-major (`img[pos * capacity + lane]`) so the
/// per-lane hot loop of [`Settler::settle_lanes`] strides unit distance
/// across lanes. The template's instruction *positions* are fixed; only
/// the filler LD/ST types vary per lane, redrawn by
/// [`regenerate`](LaneScratch::regenerate) directly into the packed image
/// (the St flag is one bit of the packed word).
#[derive(Debug, Clone)]
pub struct LaneScratch {
    /// Lane capacity (allocation width of every position-major buffer).
    capacity: usize,
    /// Lane width of the last [`regenerate`](LaneScratch::regenerate).
    width: usize,
    /// Template program length.
    len: usize,
    /// Packed template image in initial order, one word per position.
    base: Vec<u64>,
    /// Initial indices of the filler memory accesses, in program order.
    fillers: Vec<usize>,
    /// Whether the template contains a hoistable (release) fence.
    has_release: bool,
    /// Initial index of the critical load / store.
    ld_init: u64,
    st_init: u64,
    /// γ of the unsettled template (the SC fast-path answer).
    base_gamma: u64,
    /// Regenerated pristine images, `len × capacity` position-major.
    regen: Vec<u64>,
    /// Working images settled in place, `len × capacity` position-major.
    img: Vec<u64>,
    /// Per-lane draw buffer (`capacity`, reused for regen and settling).
    draws: Vec<u64>,
    /// Per-lane climb position of the current round.
    pos: Vec<usize>,
    /// Per-lane active mask (all-ones live, all-zeros retired).
    active: Vec<u64>,
    /// Per-lane draw thresholds for passing an earlier Ld / St.
    row_ld: Vec<u64>,
    row_st: Vec<u64>,
    /// Per-lane mover location, pre-shifted for direct image compares.
    mover_loc: Vec<u64>,
    /// Per-lane settled position of the critical load / store.
    gld: Vec<u64>,
    gst: Vec<u64>,
    /// Lockstep draw-steps executed since the last
    /// [`take_steps`](LaneScratch::take_steps).
    steps: u64,
}

impl LaneScratch {
    /// A scratch for up to `capacity` lanes of `template`.
    ///
    /// The template fixes everything but the filler types: instruction
    /// positions, fences, the critical pair. Construction allocates every
    /// buffer up front; [`regenerate`](LaneScratch::regenerate) and
    /// [`Settler::settle_lanes`] are allocation-free thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not in `1..=`[`MAX_LANES`], or the template
    /// is too large for the packed encoding.
    #[must_use]
    pub fn new(template: &Program, capacity: usize) -> LaneScratch {
        assert!(
            (1..=MAX_LANES).contains(&capacity),
            "lane capacity {capacity} outside 1..={MAX_LANES}"
        );
        assert!(
            u32::try_from(template.len()).is_ok(),
            "program too large for the packed settling image"
        );
        let len = template.len();
        let mut has_release = false;
        let mut fillers = Vec::new();
        let base: Vec<u64> = template
            .instructions()
            .iter()
            .enumerate()
            .map(|(i, ins)| {
                let item = encode(ins);
                has_release |= item & (FENCE_FLAG | RELEASE_FLAG) == FENCE_FLAG | RELEASE_FLAG;
                if !ins.is_critical() && !ins.is_fence() {
                    fillers.push(i);
                }
                (u64::from(item) << 32) | i as u64
            })
            .collect();
        let ld_init = template.critical_load_index() as u64;
        let st_init = template.critical_store_index() as u64;
        assert!(st_init > ld_init, "critical store precedes critical load");
        LaneScratch {
            capacity,
            width: 0,
            len,
            base,
            fillers,
            has_release,
            ld_init,
            st_init,
            base_gamma: st_init - ld_init - 1,
            regen: vec![0; len * capacity],
            img: vec![0; len * capacity],
            draws: vec![0; capacity],
            pos: vec![0; capacity],
            active: vec![0; capacity],
            row_ld: vec![0; capacity],
            row_st: vec![0; capacity],
            mover_loc: vec![0; capacity],
            gld: vec![0; capacity],
            gst: vec![0; capacity],
            steps: 0,
        }
    }

    /// The lane capacity this scratch was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lane width of the last [`regenerate`](LaneScratch::regenerate).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// γ of the unsettled template — the answer every lane returns when
    /// the settler cannot reorder anything (the SC fast path).
    #[must_use]
    pub fn base_gamma(&self) -> u64 {
        self.base_gamma
    }

    /// Redraws the filler types of the first `rng.width()` lanes with
    /// store probability `p`, writing St flags directly into the pristine
    /// per-lane images. Subsequent [`Settler::settle_lanes`] calls settle
    /// fresh copies of these images (one trial may settle them `n` times).
    ///
    /// Draw discipline (part of the lane stream contract): at `p = 1/2`
    /// each lane consumes `ceil(m / 64)` words — one *bit* per filler —
    /// otherwise `m` words, one per filler, compared against
    /// `bool_threshold(p)` (so `p = 0` and `p = 1` still consume `m`
    /// words; the draw count depends only on `p` and `m`, never on the
    /// outcomes).
    ///
    /// # Panics
    ///
    /// Panics if `rng.width()` exceeds the scratch capacity or is zero.
    pub fn regenerate(&mut self, p: f64, rng: &mut LaneRng) {
        let w = rng.width();
        assert!(w >= 1, "at least one lane");
        assert!(w <= self.capacity, "lane width {w} exceeds capacity {}", self.capacity);
        self.width = w;
        let cap = self.capacity;
        for (pos, &b) in self.base.iter().enumerate() {
            self.regen[pos * cap..pos * cap + w].fill(b);
        }
        let m = self.fillers.len();
        if m == 0 {
            return;
        }
        #[allow(clippy::float_cmp)]
        if p == 0.5 {
            // Canonical fast path: one draw word encodes 64 filler types.
            let words = m.div_ceil(64);
            self.ensure_draw_capacity(words * cap);
            rng.fill(&mut self.draws, words, cap);
            for (j, &f) in self.fillers.iter().enumerate() {
                let row = f * cap;
                let word_row = (j / 64) * cap;
                let bit = j % 64;
                for l in 0..w {
                    let st = (self.draws[word_row + l] >> bit) & 1;
                    let x = self.regen[row + l];
                    self.regen[row + l] = (x & !F_ST) | (st << F_ST_BIT);
                }
            }
        } else {
            let t = bool_threshold(p);
            self.ensure_draw_capacity(m * cap);
            rng.fill(&mut self.draws, m, cap);
            for (j, &f) in self.fillers.iter().enumerate() {
                let row = f * cap;
                let word_row = j * cap;
                for l in 0..w {
                    let st = u64::from((self.draws[word_row + l] >> 11) < t);
                    let x = self.regen[row + l];
                    self.regen[row + l] = (x & !F_ST) | (st << F_ST_BIT);
                }
            }
        }
    }

    /// Drains the lockstep draw-step counter (for the `mc.lanes.*`
    /// telemetry; each step drew one word per then-active lane).
    pub fn take_steps(&mut self) -> u64 {
        std::mem::take(&mut self.steps)
    }

    /// Grows the draw buffer to at least `len` words (no-op once grown).
    fn ensure_draw_capacity(&mut self, len: usize) {
        if self.draws.len() < len {
            self.draws.resize(len, 0);
        }
    }
}

impl Settler {
    /// Settles every regenerated lane image to completion in lockstep and
    /// writes each lane's window growth γ into `gammas`
    /// (`gammas.len()` must equal the scratch's regenerated width).
    ///
    /// Each call settles a **fresh copy** of the lane images laid down by
    /// [`LaneScratch::regenerate`], so one regenerated trial can be
    /// settled `n` times (the joined model's `n` threads). Rounds run as
    /// in the scalar kernel — round `r` climbs the instruction at
    /// position `r` — but all lanes advance together: one masked draw,
    /// compare, and swap per lane per lockstep step, with finished lanes
    /// retired via an active mask (their RNG lanes do not advance, see
    /// [`LaneRng::next_masked`]).
    ///
    /// Unlike the scalar kernel, an active step **always** consumes one
    /// draw, even against BLOCKED or CERTAIN thresholds — `draw < t`
    /// resolves both endpoints without a branch. The settler's inert fast
    /// path (no reorderable pair, no hoistable fence — SC canonically)
    /// returns [`LaneScratch::base_gamma`] for every lane without drawing
    /// at all, matching the scalar SC fast path.
    ///
    /// # Panics
    ///
    /// Panics if `gammas.len()` differs from the scratch width or the RNG
    /// lane width.
    pub fn settle_lanes(&self, scratch: &mut LaneScratch, rng: &mut LaneRng, gammas: &mut [u64]) {
        let w = gammas.len();
        assert_eq!(w, scratch.width, "gammas width != regenerated lane width");
        assert_eq!(w, rng.width(), "RNG width != lane width");
        let (t_eff, t_fence) = self.lane_tables();
        if !scratch.has_release && t_eff == [[BLOCKED; 2]; 2] {
            gammas.fill(scratch.base_gamma);
            return;
        }
        let cap = scratch.capacity;
        let len = scratch.len;
        let has_release = scratch.has_release;
        let (ld_init, st_init) = (scratch.ld_init, scratch.st_init);
        let mut steps = 0u64;
        scratch.img.copy_from_slice(&scratch.regen);
        let LaneScratch {
            img,
            draws,
            pos,
            active,
            row_ld,
            row_st,
            mover_loc,
            gld,
            gst,
            ..
        } = scratch;
        for r in 1..len {
            // Initialise the round: lane l's mover is its image word at
            // position r. Fence movers and movers with no passable pair
            // retire immediately (no draws), as in the scalar kernel.
            let mut any = false;
            for l in 0..w {
                let mv = img[r * cap + l];
                let mover_st = ((mv >> F_ST_BIT) & 1) as usize;
                let row = [t_eff[0][mover_st], t_eff[1][mover_st]];
                row_ld[l] = row[0];
                row_st[l] = row[1];
                mover_loc[l] = mv & M_LOC;
                pos[l] = r;
                let live = mv & F_FENCE == 0 && (has_release || row != [BLOCKED; 2]);
                active[l] = mask(live);
                any |= live;
            }
            if !any {
                continue;
            }
            for _ in 0..r {
                rng.next_masked(&active[..w], &mut draws[..w]);
                steps += 1;
                let mut still = 0u64;
                for l in 0..w {
                    let p = pos[l];
                    let pi = p.saturating_sub(1);
                    let above = img[pi * cap + l];
                    let cur = img[p * cap + l];
                    // Branchless threshold select, mirroring the scalar
                    // fence / same-location / row logic.
                    let above_fence = mask(above & F_FENCE != 0);
                    let release = mask(above & F_RELEASE != 0);
                    let same_loc = mask(above & M_LOC == mover_loc[l]);
                    let t_mem =
                        ((row_st[l] & mask(above & F_ST != 0)) | (row_ld[l] & mask(above & F_ST == 0)))
                            & !same_loc;
                    let t = (t_fence & release & above_fence) | (t_mem & !above_fence);
                    let pass = mask((draws[l] >> 11) < t) & active[l];
                    // Masked swap (aliasing at pos 0 is benign: pass is
                    // zero there because retired lanes never re-activate).
                    img[pi * cap + l] = (cur & pass) | (above & !pass);
                    img[p * cap + l] = (above & pass) | (cur & !pass);
                    let np = p - (pass & 1) as usize;
                    pos[l] = np;
                    let a = pass & mask(np > 0);
                    active[l] = a;
                    still |= a;
                }
                if still == 0 {
                    break;
                }
            }
        }
        // γ extraction: one position-major scan finds each lane's settled
        // critical-pair positions.
        gld[..w].fill(0);
        gst[..w].fill(0);
        for p in 0..len {
            let p64 = p as u64;
            let row = p * cap;
            for l in 0..w {
                let i = img[row + l] & INDEX_MASK;
                let is_ld = mask(i == ld_init);
                let is_st = mask(i == st_init);
                gld[l] = (p64 & is_ld) | (gld[l] & !is_ld);
                gst[l] = (p64 & is_st) | (gst[l] & !is_st);
            }
        }
        for (l, g) in gammas.iter_mut().enumerate() {
            *g = gst[l] - gld[l] - 1;
        }
        scratch.steps += steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::{MemoryModel, OpType};
    use progmodel::ProgramGenerator;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    fn template(m: usize) -> Program {
        Program::from_filler_types(&vec![OpType::Ld; m]).unwrap()
    }

    #[test]
    fn width_one_lane_rng_matches_smallrng() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut lane = LaneRng::new();
            lane.reseed(&[seed]);
            let mut scalar = SmallRng::seed_from_u64(seed);
            let mut out = [0u64; 1];
            for i in 0..200 {
                lane.fill(&mut out, 1, 1);
                assert_eq!(out[0], scalar.next_u64(), "seed {seed} draw {i}");
            }
        }
    }

    #[test]
    fn masked_lanes_do_not_advance() {
        let seeds = [7u64, 8];
        let mut a = LaneRng::new();
        let mut b = LaneRng::new();
        a.reseed(&seeds);
        b.reseed(&seeds);
        let mut out_a = [0u64; 2];
        let mut out_b = [0u64; 2];
        // a: both lanes advance once. b: only lane 0 advances.
        a.next_masked(&[u64::MAX, u64::MAX], &mut out_a);
        b.next_masked(&[u64::MAX, 0], &mut out_b);
        assert_eq!(out_a[0], out_b[0]);
        // Re-activating lane 1 of b yields the word lane 1 of a got first.
        let first_lane1 = out_a[1];
        b.next_masked(&[0, u64::MAX], &mut out_b);
        assert_eq!(out_b[1], first_lane1, "masked lane advanced");
    }

    #[test]
    fn lane_widths_agree_trial_for_trial() {
        // The same 8 trial seeds produce the same per-trial γ sequences
        // whether settled 1, 4, or 8 lanes at a time.
        let seeds: Vec<u64> = (0..8u64).map(|t| 0x9E37 ^ (t * 0x1234_5678_9abc)).collect();
        let tmpl = template(24);
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            let mut by_width: Vec<Vec<u64>> = Vec::new();
            for width in [1usize, 4, 8] {
                let mut scratch = LaneScratch::new(&tmpl, width);
                let mut rng = LaneRng::with_capacity(width);
                let mut gammas = vec![0u64; width];
                let mut all = Vec::new();
                for group in seeds.chunks(width) {
                    rng.reseed(group);
                    scratch.regenerate(0.5, &mut rng);
                    settler.settle_lanes(&mut scratch, &mut rng, &mut gammas[..group.len()]);
                    all.extend_from_slice(&gammas[..group.len()]);
                }
                by_width.push(all);
            }
            assert_eq!(by_width[0], by_width[1], "{model}: width 1 vs 4");
            assert_eq!(by_width[0], by_width[2], "{model}: width 1 vs 8");
        }
    }

    #[test]
    fn partial_width_matches_full_width_prefix() {
        // Settling 3 of 8 seeds at width 3 gives the same three γs as the
        // first three lanes of a width-8 settle (per-trial purity).
        let seeds: Vec<u64> = (100..108u64).collect();
        let tmpl = template(16);
        let settler = Settler::for_model(MemoryModel::Wo);
        let run = |group: &[u64]| {
            let mut scratch = LaneScratch::new(&tmpl, 8);
            let mut rng = LaneRng::new();
            let mut gammas = vec![0u64; group.len()];
            rng.reseed(group);
            scratch.regenerate(0.5, &mut rng);
            settler.settle_lanes(&mut scratch, &mut rng, &mut gammas);
            gammas
        };
        let full = run(&seeds);
        let prefix = run(&seeds[..3]);
        assert_eq!(full[..3], prefix[..]);
    }

    #[test]
    fn inert_settler_returns_base_gamma_without_draws() {
        let tmpl = template(12);
        let settler = Settler::for_model(MemoryModel::Sc);
        let mut scratch = LaneScratch::new(&tmpl, 4);
        let mut rng = LaneRng::new();
        rng.reseed(&[1, 2, 3, 4]);
        scratch.regenerate(0.5, &mut rng);
        let snapshot = rng.clone();
        let mut gammas = [9u64; 4];
        settler.settle_lanes(&mut scratch, &mut rng, &mut gammas);
        assert_eq!(gammas, [scratch.base_gamma(); 4]);
        assert_eq!(gammas, [0; 4]);
        // The SC fast path must not touch any lane's stream.
        let (mut a, mut b) = (snapshot, rng);
        let (mut wa, mut wb) = ([0u64; 4], [0u64; 4]);
        a.next_masked(&[u64::MAX; 4], &mut wa);
        b.next_masked(&[u64::MAX; 4], &mut wb);
        assert_eq!(wa, wb, "inert settle consumed draws");
    }

    #[test]
    fn acquire_fence_pins_gamma_in_every_model() {
        let tmpl = template(16).with_acquire_before_critical();
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            let mut scratch = LaneScratch::new(&tmpl, 8);
            let mut rng = LaneRng::new();
            rng.reseed(&(0..8u64).map(|t| t * 977 + 5).collect::<Vec<_>>());
            scratch.regenerate(0.5, &mut rng);
            let mut gammas = [u64::MAX; 8];
            settler.settle_lanes(&mut scratch, &mut rng, &mut gammas);
            assert_eq!(gammas, [0; 8], "{model}: fence failed to pin window");
        }
    }

    #[test]
    fn lane_gammas_stay_in_range_and_count_steps() {
        let tmpl = template(24);
        let settler = Settler::for_model(MemoryModel::Wo);
        let mut scratch = LaneScratch::new(&tmpl, 16);
        let mut rng = LaneRng::new();
        rng.reseed(&(0..16u64).map(|t| t.wrapping_mul(0x2545_F491_4F6C_DD1D)).collect::<Vec<_>>());
        scratch.regenerate(0.5, &mut rng);
        let mut gammas = [0u64; 16];
        settler.settle_lanes(&mut scratch, &mut rng, &mut gammas);
        for &g in &gammas {
            assert!(g <= (tmpl.len() - 2) as u64, "γ {g} out of range");
        }
        assert!(scratch.take_steps() > 0, "WO settle must draw");
        assert_eq!(scratch.take_steps(), 0, "take_steps must drain");
    }

    #[test]
    fn regenerate_general_p_pins_endpoints() {
        // p = 0 makes every filler a load; p = 1 a store — via the general
        // (non-bit-packed) path, still consuming m words per lane.
        let tmpl = template(10);
        let mut scratch = LaneScratch::new(&tmpl, 2);
        let mut rng = LaneRng::new();
        for (p, want_st) in [(0.0, false), (1.0, true)] {
            rng.reseed(&[11, 12]);
            scratch.regenerate(p, &mut rng);
            for &f in &scratch.fillers {
                for l in 0..2 {
                    let st = scratch.regen[f * scratch.capacity + l] & F_ST != 0;
                    assert_eq!(st, want_st, "p={p} filler {f} lane {l}");
                }
            }
        }
    }

    #[test]
    fn lane_gamma_distribution_tracks_scalar() {
        // Coarse two-sided check per model: lane and scalar mean γ over
        // the same trial count agree within a few percent (the exact GOF
        // comparison lives in the core crate's tests).
        let m = 24;
        let trials = 4000u64;
        for model in [MemoryModel::Tso, MemoryModel::Pso, MemoryModel::Wo] {
            let settler = Settler::for_model(model);
            // Scalar reference.
            let gen = ProgramGenerator::new(m).with_store_probability(0.5).unwrap();
            let mut scalar_rng = SmallRng::seed_from_u64(99);
            let mut program = template(m);
            let mut scratch = crate::SettleScratch::new();
            let mut scalar_sum = 0u64;
            for _ in 0..trials {
                gen.regenerate(&mut program, &mut scalar_rng);
                scalar_sum += settler.sample_gamma_scratch(&program, &mut scratch, &mut scalar_rng);
            }
            // Lane path.
            let tmpl = template(m);
            let mut lanes = LaneScratch::new(&tmpl, 16);
            let mut rng = LaneRng::new();
            let mut gammas = [0u64; 16];
            let mut seeds = [0u64; 16];
            let mut lane_sum = 0u64;
            for block in 0..(trials / 16) {
                for (k, s) in seeds.iter_mut().enumerate() {
                    *s = (block * 16 + k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD;
                }
                rng.reseed(&seeds);
                lanes.regenerate(0.5, &mut rng);
                settler.settle_lanes(&mut lanes, &mut rng, &mut gammas);
                lane_sum += gammas.iter().sum::<u64>();
            }
            let scalar_mean = scalar_sum as f64 / trials as f64;
            let lane_mean = lane_sum as f64 / trials as f64;
            assert!(
                (scalar_mean - lane_mean).abs() < 0.35 * scalar_mean.max(0.5),
                "{model}: scalar mean {scalar_mean:.3} vs lane mean {lane_mean:.3}"
            );
        }
    }
}
