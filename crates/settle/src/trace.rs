//! Round-by-round settling traces (the paper's Figure 1).

use crate::{Permutation, Settled, Settler};
use progmodel::Program;
use rand::Rng;

/// One round of a [`SettleTrace`]: the order after settling instruction
/// `settling` (by initial index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRound {
    /// Initial index of the instruction settled this round.
    pub settling: usize,
    /// How many positions it climbed.
    pub climbed: usize,
    /// The full order after the round: position → initial index.
    pub order: Vec<usize>,
}

/// A complete settling trace: the initial order plus one [`TraceRound`] per
/// instruction, exactly the information visualised in the paper's Figure 1.
///
/// # Example
///
/// ```
/// use memmodel::MemoryModel;
/// use progmodel::ProgramGenerator;
/// use settle::SettleTrace;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let program = ProgramGenerator::new(6).generate(&mut rng);
/// let trace = SettleTrace::run(MemoryModel::Tso, &program, &mut rng);
/// assert_eq!(trace.rounds().len(), program.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SettleTrace {
    program: Program,
    rounds: Vec<TraceRound>,
}

impl SettleTrace {
    /// Runs a traced settling of `program` under `model`'s canonical
    /// settler.
    pub fn run<R: Rng + ?Sized>(
        model: memmodel::MemoryModel,
        program: &Program,
        rng: &mut R,
    ) -> SettleTrace {
        SettleTrace::run_with(&Settler::for_model(model), program, rng)
    }

    /// Runs a traced settling with an explicit [`Settler`].
    pub fn run_with<R: Rng + ?Sized>(
        settler: &Settler,
        program: &Program,
        rng: &mut R,
    ) -> SettleTrace {
        let mut order: Vec<usize> = (0..program.len()).collect();
        let mut rounds = Vec::with_capacity(program.len());
        for r in 0..program.len() {
            let before = order.iter().position(|&i| i == r).expect("index present");
            settler.settle_one(program, &mut order, r, rng);
            let after = order.iter().position(|&i| i == r).expect("index present");
            rounds.push(TraceRound {
                settling: r,
                climbed: before - after,
                order: order.clone(),
            });
        }
        SettleTrace {
            program: program.clone(),
            rounds,
        }
    }

    /// The traced program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The per-round snapshots.
    #[must_use]
    pub fn rounds(&self) -> &[TraceRound] {
        &self.rounds
    }

    /// The final settled outcome, identical to running
    /// [`Settler::settle`] with the same RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (zero-length program).
    #[must_use]
    pub fn final_settled(&self) -> Settled {
        let last = self.rounds.last().expect("nonempty trace");
        let permutation =
            Permutation::from_settled_order(&last.order).expect("trace orders are permutations");
        Settled::from_parts(self.program.clone(), permutation)
    }

    /// Total positions climbed over all rounds (a reordering-intensity
    /// measure; zero under SC).
    #[must_use]
    pub fn total_climb(&self) -> usize {
        self.rounds.iter().map(|r| r.climbed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::MemoryModel;
    use progmodel::ProgramGenerator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn trace_matches_untraced_settle() {
        let p = ProgramGenerator::new(20).generate(&mut rng(1));
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            let traced = SettleTrace::run_with(&settler, &p, &mut rng(42)).final_settled();
            let plain = settler.settle(&p, &mut rng(42));
            assert_eq!(traced, plain, "{model}");
        }
    }

    #[test]
    fn sc_trace_never_climbs() {
        let p = ProgramGenerator::new(16).generate(&mut rng(2));
        let t = SettleTrace::run(MemoryModel::Sc, &p, &mut rng(3));
        assert_eq!(t.total_climb(), 0);
        for r in t.rounds() {
            assert_eq!(r.climbed, 0);
        }
    }

    #[test]
    fn each_round_settles_the_right_instruction() {
        let p = ProgramGenerator::new(10).generate(&mut rng(4));
        let t = SettleTrace::run(MemoryModel::Wo, &p, &mut rng(5));
        for (i, r) in t.rounds().iter().enumerate() {
            assert_eq!(r.settling, i);
            assert_eq!(r.order.len(), p.len());
        }
    }

    #[test]
    fn climb_counts_are_consistent_with_orders() {
        let p = ProgramGenerator::new(12).generate(&mut rng(6));
        let t = SettleTrace::run(MemoryModel::Wo, &p, &mut rng(7));
        for r in t.rounds() {
            let pos = r.order.iter().position(|&i| i == r.settling).unwrap();
            assert_eq!(pos, r.settling - r.climbed);
        }
    }
}
