//! Exact finite-`m` settling distributions by exhaustive enumeration.
//!
//! For small programs the settling process can be evaluated *exactly*: the
//! distribution over orders after round `r` is propagated symbolically, each
//! round expanding every order into its possible stopping positions with
//! their probabilities (the `β` distribution of Appendix A.2, Definition 2).
//! Averaging over all `2^m` filler type strings then gives the exact finite-
//! `m` window law — an independent check of both the Monte-Carlo sampler
//! and the analytic `m → ∞` series, and a direct quantification of the
//! truncation ablation in DESIGN.md.
//!
//! Complexity is `O(#reachable orders · len)` per round; practical for
//! `len = m + 2 ≲ 12`.

use crate::Settler;
use memmodel::OpType;
use progmodel::Program;
use std::collections::HashMap;

/// The exact distribution over settled orders of `program` under `settler`.
///
/// Keys are orders (position → initial index); values are probabilities
/// summing to 1.
///
/// # Panics
///
/// Panics if the program is longer than 12 instructions (the enumeration
/// would be enormous).
#[must_use]
pub fn order_distribution(settler: &Settler, program: &Program) -> HashMap<Vec<usize>, f64> {
    assert!(
        program.len() <= 12,
        "exact enumeration limited to 12 instructions, got {}",
        program.len()
    );
    let mut dist: HashMap<Vec<usize>, f64> = HashMap::new();
    dist.insert((0..program.len()).collect(), 1.0);
    for round in 0..program.len() {
        let mut next: HashMap<Vec<usize>, f64> = HashMap::new();
        for (order, prob) in &dist {
            for (stopped, p_stop) in settle_outcomes(settler, program, order, round) {
                *next.entry(stopped).or_insert(0.0) += prob * p_stop;
            }
        }
        dist = next;
    }
    dist
}

/// All stopping outcomes of settling the instruction at position `round`
/// (which, before its round, still sits at its initial index) with their
/// probabilities — Definition 2's `β` distribution made explicit.
fn settle_outcomes(
    settler: &Settler,
    program: &Program,
    order: &[usize],
    round: usize,
) -> Vec<(Vec<usize>, f64)> {
    let start = order
        .iter()
        .position(|&i| i == round)
        .expect("instruction present");
    let mover = &program[round];
    let mut outcomes = Vec::new();
    let mut climb_prob = 1.0; // probability of having reached this position
    let mut current = order.to_vec();
    let mut pos = start;
    loop {
        let p_swap = if pos == 0 {
            0.0
        } else {
            settler.swap_probability(&program[current[pos - 1]], mover)
        };
        // Stop here with probability (1 - p_swap).
        let p_stop = climb_prob * (1.0 - p_swap);
        if p_stop > 0.0 {
            outcomes.push((current.clone(), p_stop));
        }
        if p_swap <= 0.0 {
            break;
        }
        climb_prob *= p_swap;
        current.swap(pos - 1, pos);
        pos -= 1;
        if pos == 0 {
            // Reached the top: certain stop.
            outcomes.push((current.clone(), climb_prob));
            break;
        }
    }
    outcomes
}

/// Exact `Pr[B_γ]` for a *fixed* program.
#[must_use]
pub fn window_pmf_for_program(settler: &Settler, program: &Program) -> Vec<f64> {
    let ld = program.critical_load_index();
    let st = program.critical_store_index();
    let mut pmf = vec![0.0; program.len()];
    for (order, prob) in order_distribution(settler, program) {
        let pos_ld = order.iter().position(|&i| i == ld).expect("load present");
        let pos_st = order.iter().position(|&i| i == st).expect("store present");
        assert!(pos_st > pos_ld, "critical pair reordered");
        pmf[pos_st - pos_ld - 1] += prob;
    }
    pmf
}

/// Exact finite-`m` window law: `Pr[B_γ]` averaged over all `2^m` equally
/// likely filler type strings (`p = 1/2`).
///
/// # Panics
///
/// Panics if `m > 10`.
#[must_use]
pub fn window_pmf_finite_m(settler: &Settler, m: usize) -> Vec<f64> {
    assert!(m <= 10, "2^m programs enumerated; m capped at 10");
    let mut pmf = vec![0.0; m + 2];
    let weight = 1.0 / (1u64 << m) as f64;
    for bits in 0u64..(1 << m) {
        let types: Vec<OpType> = (0..m)
            .map(|i| {
                if bits >> i & 1 == 1 {
                    OpType::St
                } else {
                    OpType::Ld
                }
            })
            .collect();
        let program = Program::from_filler_types(&types).expect("valid program");
        for (cell, p) in pmf.iter_mut().zip(window_pmf_for_program(settler, &program)) {
            *cell += weight * p;
        }
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use analytic::window_law::{self, TsoLaw, WindowLaws};
    use memmodel::MemoryModel;
    use memmodel::OpType::{Ld, St};
    use montecarlo::{Runner, Seed};

    fn settler(model: MemoryModel) -> Settler {
        Settler::for_model(model)
    }

    #[test]
    fn distributions_normalise() {
        let program = Program::from_filler_types(&[St, Ld, St, St]).unwrap();
        for model in MemoryModel::NAMED {
            let dist = order_distribution(&settler(model), &program);
            let total: f64 = dist.values().sum();
            assert!((total - 1.0).abs() < 1e-12, "{model}: total {total}");
            let pmf_total: f64 = window_pmf_for_program(&settler(model), &program)
                .iter()
                .sum();
            assert!((pmf_total - 1.0).abs() < 1e-12, "{model}");
        }
    }

    #[test]
    fn sc_distribution_is_a_point_mass_on_identity() {
        let program = Program::from_filler_types(&[St, Ld, St]).unwrap();
        let dist = order_distribution(&settler(MemoryModel::Sc), &program);
        assert_eq!(dist.len(), 1);
        let (order, p) = dist.iter().next().unwrap();
        assert_eq!(order, &vec![0, 1, 2, 3, 4]);
        assert!((p - 1.0).abs() < 1e-15);
    }

    #[test]
    fn all_stores_program_has_closed_form_tso_window() {
        // With j stores above the critical LD, Pr[B_γ] = 2^-(γ+1) for
        // γ < j and 2^-j at γ = j (pure climb, no interspersed LDs).
        let program = Program::from_filler_types(&[St; 5]).unwrap();
        let pmf = window_pmf_for_program(&settler(MemoryModel::Tso), &program);
        for (gamma, &p) in pmf.iter().enumerate().take(5) {
            assert!(
                (p - 2f64.powi(-(gamma as i32) - 1)).abs() < 1e-12,
                "γ={gamma}"
            );
        }
        assert!((pmf[5] - 2f64.powi(-5)).abs() < 1e-12);
    }

    #[test]
    fn all_loads_program_never_grows_tso_window() {
        let program = Program::from_filler_types(&[Ld; 5]).unwrap();
        let pmf = window_pmf_for_program(&settler(MemoryModel::Tso), &program);
        assert!((pmf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_monte_carlo_per_program() {
        let trials: u64 = if cfg!(debug_assertions) { 40_000 } else { 200_000 };
        let program = Program::from_filler_types(&[St, Ld, St, St, Ld]).unwrap();
        for model in [MemoryModel::Tso, MemoryModel::Wo, MemoryModel::Pso] {
            let s = settler(model);
            let exact = window_pmf_for_program(&s, &program);
            let prog = program.clone();
            let h = Runner::new(Seed(31)).histogram(trials, move |rng| {
                s.sample_gamma(&prog, rng)
            });
            for (gamma, &p) in exact.iter().enumerate() {
                let observed = h.pmf(gamma as u64);
                assert!(
                    (observed - p).abs() < 0.01,
                    "{model} γ={gamma}: exact {p} vs MC {observed}"
                );
            }
        }
    }

    #[test]
    fn finite_m_law_converges_to_series() {
        // Exact finite-m TSO law approaches the m→∞ partition series, with
        // error shrinking in m (the DESIGN.md truncation ablation, exactly).
        let law = TsoLaw::new();
        let mut prev_err = f64::INFINITY;
        for m in [4usize, 6, 8] {
            let pmf = window_pmf_finite_m(&settler(MemoryModel::Tso), m);
            let err: f64 = (0..=3u64)
                .map(|g| (pmf[g as usize] - law.pmf(g)).abs())
                .sum();
            assert!(err < prev_err + 1e-9, "m={m}: error {err} grew");
            prev_err = err;
        }
        assert!(prev_err < 0.02, "residual error {prev_err}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "WO's reachable-order space is factorial; the exhaustive enumeration is only tractable in release builds"
    )]
    fn finite_m_wo_law_matches_closed_form() {
        // WO's law is exact already at moderate m for small γ.
        let pmf = window_pmf_finite_m(&settler(MemoryModel::Wo), 8);
        assert!((pmf[0] - window_law::wo_pmf(0)).abs() < 5e-3);
        assert!((pmf[1] - window_law::wo_pmf(1)).abs() < 5e-3);
    }

    #[test]
    fn finite_m_pso_matches_climbback_series() {
        let laws = WindowLaws::new();
        let pmf = window_pmf_finite_m(&settler(MemoryModel::Pso), 8);
        for g in 0..=2u64 {
            let series = laws.pmf(MemoryModel::Pso, g).unwrap();
            assert!(
                (pmf[g as usize] - series).abs() < 0.01,
                "γ={g}: finite-m {} vs series {series}",
                pmf[g as usize]
            );
        }
    }

    #[test]
    #[should_panic(expected = "limited to 12")]
    fn enumeration_guards_length() {
        let program = Program::from_filler_types(&[St; 11]).unwrap();
        let _ = order_distribution(&settler(MemoryModel::Wo), &program);
    }
}
