//! Permutations between initial and settled program order.

use std::fmt;

/// A permutation `π` mapping initial positions to settled positions
/// (the paper's `π(i)`, 0-based here).
///
/// # Example
///
/// ```
/// use settle::Permutation;
///
/// let pi = Permutation::from_settled_order(&[1, 0, 2]).unwrap();
/// assert_eq!(pi.position_of(1), 0); // instruction 1 settled to the top
/// assert_eq!(pi.at_position(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    /// `pos[i]` = settled position of the instruction initially at `i`.
    pos: Vec<usize>,
    /// `order[p]` = initial index of the instruction settled at position `p`.
    order: Vec<usize>,
}

/// Error returned when a claimed settled order is not a permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAPermutation {
    /// The offending value (out of range or duplicated).
    pub value: usize,
}

impl fmt::Display for NotAPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is out of range or duplicated", self.value)
    }
}

impl std::error::Error for NotAPermutation {}

impl Permutation {
    /// The identity permutation on `len` elements.
    #[must_use]
    pub fn identity(len: usize) -> Permutation {
        Permutation {
            pos: (0..len).collect(),
            order: (0..len).collect(),
        }
    }

    /// Builds from a settled order: `order[p]` is the initial index of the
    /// instruction at settled position `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NotAPermutation`] if `order` contains an out-of-range or
    /// duplicate index.
    pub fn from_settled_order(order: &[usize]) -> Result<Permutation, NotAPermutation> {
        let mut pos = vec![usize::MAX; order.len()];
        for (p, &i) in order.iter().enumerate() {
            if i >= order.len() || pos[i] != usize::MAX {
                return Err(NotAPermutation { value: i });
            }
            pos[i] = p;
        }
        Ok(Permutation {
            pos,
            order: order.to_vec(),
        })
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the permutation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The settled position of the instruction initially at `i` (`π(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn position_of(&self, i: usize) -> usize {
        self.pos[i]
    }

    /// The initial index of the instruction at settled position `p`
    /// (`π⁻¹(p)`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn at_position(&self, p: usize) -> usize {
        self.order[p]
    }

    /// The settled order as a slice of initial indices.
    #[must_use]
    pub fn settled_order(&self) -> &[usize] {
        &self.order
    }

    /// Whether this is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.order.iter().enumerate().all(|(p, &i)| p == i)
    }

    /// Number of inversions (pairs settled out of their initial order) — a
    /// measure of how much reordering occurred.
    #[must_use]
    pub fn inversions(&self) -> u64 {
        let mut count = 0;
        for a in 0..self.order.len() {
            for b in a + 1..self.order.len() {
                if self.order[a] > self.order[b] {
                    count += 1;
                }
            }
        }
        count
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (p, &i) in self.order.iter().enumerate() {
            if p > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{i}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(5);
        assert!(id.is_identity());
        assert_eq!(id.len(), 5);
        assert_eq!(id.inversions(), 0);
        for i in 0..5 {
            assert_eq!(id.position_of(i), i);
            assert_eq!(id.at_position(i), i);
        }
    }

    #[test]
    fn from_order_round_trips() {
        let p = Permutation::from_settled_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.position_of(2), 0);
        assert_eq!(p.position_of(0), 1);
        assert_eq!(p.position_of(1), 2);
        assert_eq!(p.settled_order(), &[2, 0, 1]);
        assert!(!p.is_identity());
        assert_eq!(p.inversions(), 2);
    }

    #[test]
    fn rejects_duplicates_and_out_of_range() {
        assert_eq!(
            Permutation::from_settled_order(&[0, 0, 1]),
            Err(NotAPermutation { value: 0 })
        );
        assert_eq!(
            Permutation::from_settled_order(&[0, 3]),
            Err(NotAPermutation { value: 3 })
        );
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }

    #[test]
    fn display_lists_order() {
        let p = Permutation::from_settled_order(&[1, 0]).unwrap();
        assert_eq!(p.to_string(), "[1 0]");
    }

    proptest! {
        #[test]
        fn position_and_at_position_are_inverse(len in 1usize..30, seed in 0u64..1000) {
            // Build a pseudorandom permutation by repeated swaps.
            let mut order: Vec<usize> = (0..len).collect();
            let mut state = seed;
            for i in (1..len).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let p = Permutation::from_settled_order(&order).unwrap();
            for i in 0..len {
                prop_assert_eq!(p.at_position(p.position_of(i)), i);
                prop_assert_eq!(p.position_of(p.at_position(i)), i);
            }
        }
    }
}
