//! The `β` insertion-point distribution of Appendix A.2, Definition 2.
//!
//! Round `i` of the settling process inserts instruction `x_i` into the
//! permuted prefix by repeated swaps; Definition 2 names the distribution
//! `β_i` of its final position. [`BetaDistribution`] computes it exactly for
//! any current order — the single-round building block that
//! [`crate::exact`] chains into whole-process distributions, exposed
//! separately because it is the paper's own unit of definition.

use crate::Settler;
use progmodel::Program;

/// The exact stopping-position distribution of one settling round.
///
/// # Example
///
/// ```
/// use memmodel::MemoryModel;
/// use memmodel::OpType::St;
/// use progmodel::Program;
/// use settle::{beta::BetaDistribution, Settler};
///
/// // Settling the critical LD above three stores under TSO: it climbs k
/// // positions with probability 2^-(k+1), and all the way with 2^-3.
/// let program = Program::from_filler_types(&[St, St, St]).unwrap();
/// let settler = Settler::for_model(MemoryModel::Tso);
/// let beta = BetaDistribution::for_round(&settler, &program, &[0, 1, 2, 3, 4], 3);
/// assert_eq!(beta.start(), 3);
/// assert!((beta.pmf(3) - 0.5).abs() < 1e-12);
/// assert!((beta.pmf(0) - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BetaDistribution {
    /// `pmf[k]` = probability of stopping at position `k` (0 = top).
    pmf: Vec<f64>,
    start: usize,
}

impl BetaDistribution {
    /// Computes `β` for settling instruction `round` (by initial index) in
    /// the given current order.
    ///
    /// # Panics
    ///
    /// Panics if `round` is not present in `order` or `order` doesn't match
    /// the program's length.
    #[must_use]
    pub fn for_round(
        settler: &Settler,
        program: &Program,
        order: &[usize],
        round: usize,
    ) -> BetaDistribution {
        assert_eq!(order.len(), program.len(), "order length mismatch");
        let start = order
            .iter()
            .position(|&i| i == round)
            .expect("instruction present in order");
        let mover = &program[round];
        let mut pmf = vec![0.0; order.len()];
        let mut climb_prob = 1.0;
        let mut pos = start;
        loop {
            let p_swap = if pos == 0 {
                0.0
            } else {
                settler.swap_probability(&program[order[pos - 1]], mover)
            };
            pmf[pos] += climb_prob * (1.0 - p_swap);
            if p_swap <= 0.0 {
                break;
            }
            climb_prob *= p_swap;
            pos -= 1;
            if pos == 0 {
                pmf[0] += climb_prob;
                break;
            }
        }
        BetaDistribution { pmf, start }
    }

    /// The starting position of the settling instruction.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// `Pr[final position = k]`.
    #[must_use]
    pub fn pmf(&self, position: usize) -> f64 {
        self.pmf.get(position).copied().unwrap_or(0.0)
    }

    /// Expected number of positions climbed.
    #[must_use]
    pub fn expected_climb(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(k, &p)| (self.start - k.min(self.start)) as f64 * p)
            .sum()
    }

    /// The support as a dense slice (index = position).
    #[must_use]
    pub fn dense(&self) -> &[f64] {
        &self.pmf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memmodel::MemoryModel;
    use memmodel::OpType::{Ld, St};

    fn identity(len: usize) -> Vec<usize> {
        (0..len).collect()
    }

    #[test]
    fn sc_never_moves() {
        let program = Program::from_filler_types(&[St, Ld, St]).unwrap();
        let settler = Settler::for_model(MemoryModel::Sc);
        for round in 0..program.len() {
            let beta =
                BetaDistribution::for_round(&settler, &program, &identity(program.len()), round);
            assert_eq!(beta.pmf(round), 1.0, "round {round}");
            assert_eq!(beta.expected_climb(), 0.0);
        }
    }

    #[test]
    fn normalises_for_every_model_and_round() {
        let program = Program::from_filler_types(&[St, Ld, St, St, Ld]).unwrap();
        for model in MemoryModel::NAMED {
            let settler = Settler::for_model(model);
            for round in 0..program.len() {
                let beta = BetaDistribution::for_round(
                    &settler,
                    &program,
                    &identity(program.len()),
                    round,
                );
                let total: f64 = beta.dense().iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "{model} round {round}");
            }
        }
    }

    #[test]
    fn tso_load_above_store_run_is_truncated_geometric() {
        // The doc-example case, spelled out: β over positions 3,2,1,0 is
        // 1/2, 1/4, 1/8, 1/8.
        let program = Program::from_filler_types(&[St, St, St]).unwrap();
        let settler = Settler::for_model(MemoryModel::Tso);
        let beta =
            BetaDistribution::for_round(&settler, &program, &identity(program.len()), 3);
        assert!((beta.pmf(3) - 0.5).abs() < 1e-12);
        assert!((beta.pmf(2) - 0.25).abs() < 1e-12);
        assert!((beta.pmf(1) - 0.125).abs() < 1e-12);
        assert!((beta.pmf(0) - 0.125).abs() < 1e-12);
        assert!((beta.expected_climb() - (0.25 + 2.0 * 0.125 + 3.0 * 0.125)).abs() < 1e-12);
    }

    #[test]
    fn blocked_mover_is_a_point_mass() {
        // A TSO store never moves, wherever it is.
        let program = Program::from_filler_types(&[Ld, Ld, St]).unwrap();
        let settler = Settler::for_model(MemoryModel::Tso);
        let beta = BetaDistribution::for_round(&settler, &program, &identity(program.len()), 2);
        assert_eq!(beta.pmf(2), 1.0);
    }

    #[test]
    fn critical_store_stops_at_critical_load() {
        let program = Program::from_filler_types(&[]).unwrap(); // LD*, ST*
        let settler = Settler::for_model(MemoryModel::Wo);
        let beta = BetaDistribution::for_round(&settler, &program, &identity(2), 1);
        assert_eq!(beta.pmf(1), 1.0);
        assert_eq!(beta.pmf(0), 0.0);
    }
}
