//! Statistical validation of the settling process against the paper's
//! closed-form laws (Theorem 4.1, Claim 4.3, Lemma 4.2).
//!
//! These tests run moderate Monte-Carlo sample sizes and use chi-square
//! goodness-of-fit / Wilson intervals at conservative significance levels,
//! so spurious failures are vanishingly unlikely (and deterministic anyway:
//! all seeds are fixed).

use analytic::lemma42;
use analytic::recurrence;
use analytic::window_law::{self, TsoLaw, WindowLaws};
use memmodel::MemoryModel;
use montecarlo::{chi_square_gof, Runner, Seed};
use progmodel::ProgramGenerator;
use settle::{events, Settler};

const M: usize = 64; // filler length; truncation error ~2^-M

/// Debug builds run ~20x slower; use a smaller (still ample) sample size so
/// `cargo test --workspace` stays quick. Release/bench runs use the full
/// count.
const N_SAMPLES: u64 = if cfg!(debug_assertions) { 30_000 } else { 200_000 };

fn window_histogram(model: MemoryModel, seed: u64) -> montecarlo::Histogram {
    let settler = Settler::for_model(model);
    let gen = ProgramGenerator::new(M);
    Runner::new(Seed(seed)).histogram(N_SAMPLES, move |rng| {
        let program = gen.generate(rng);
        settler.sample_gamma(&program, rng)
    })
}

#[test]
fn sc_window_never_grows() {
    let h = window_histogram(MemoryModel::Sc, 101);
    assert_eq!(h.count(0), h.total());
}

#[test]
fn wo_window_matches_theorem_41() {
    let h = window_histogram(MemoryModel::Wo, 102);
    let gof = chi_square_gof(&h, window_law::wo_pmf, 5.0);
    assert!(
        gof.consistent_at(0.001),
        "WO window law rejected: χ²={} dof={} p={}",
        gof.statistic,
        gof.dof,
        gof.p_value
    );
}

#[test]
fn tso_window_matches_partition_series() {
    let h = window_histogram(MemoryModel::Tso, 103);
    let law = TsoLaw::new();
    let gof = chi_square_gof(&h, |g| law.pmf(g), 5.0);
    assert!(
        gof.consistent_at(0.001),
        "TSO window law rejected: χ²={} dof={} p={}",
        gof.statistic,
        gof.dof,
        gof.p_value
    );
}

#[test]
fn tso_window_within_paper_bounds() {
    let h = window_histogram(MemoryModel::Tso, 104);
    for gamma in 0..6u64 {
        let (lo, hi) = window_law::tso_pmf_bounds(gamma);
        let est = montecarlo::BernoulliEstimate::from_counts(h.count(gamma), h.total());
        let (ci_lo, ci_hi) = est.wilson_ci(0.999);
        assert!(
            ci_hi >= lo && ci_lo <= hi,
            "γ={gamma}: CI [{ci_lo}, {ci_hi}] misses bounds [{lo}, {hi}]"
        );
    }
}

#[test]
fn pso_window_matches_climbback_series() {
    let h = window_histogram(MemoryModel::Pso, 105);
    let laws = WindowLaws::new();
    let gof = chi_square_gof(&h, |g| laws.pmf(MemoryModel::Pso, g).unwrap(), 5.0);
    assert!(
        gof.consistent_at(0.001),
        "PSO window law rejected: χ²={} dof={} p={}",
        gof.statistic,
        gof.dof,
        gof.p_value
    );
}

#[test]
fn claim_43_bottom_store_fraction() {
    // Pr[S_{ST,i}(i)] → 2/3 under TSO; check at i = M (steady state).
    let settler = Settler::for_model(MemoryModel::Tso);
    let gen = ProgramGenerator::new(M);
    let est = Runner::new(Seed(106)).bernoulli(N_SAMPLES, move |rng| {
        let program = gen.generate(rng);
        events::observe_bottom_store(&settler, &program, M, rng)
    });
    assert!(
        est.covers(2.0 / 3.0, 0.999),
        "Claim 4.3 limit not covered: {est}"
    );
}

#[test]
fn claim_43_finite_i_recurrence() {
    // At small i the exact finite recurrence applies, not just the limit.
    let settler = Settler::for_model(MemoryModel::Tso);
    for i in [1usize, 2, 3, 5] {
        let gen = ProgramGenerator::new(8);
        let est = Runner::new(Seed(200 + i as u64)).bernoulli(N_SAMPLES / 2, move |rng| {
            let program = gen.generate(rng);
            events::observe_bottom_store(&settler, &program, i, rng)
        });
        let expected = recurrence::bottom_store_fraction(0.5, 0.5, i as u64);
        assert!(
            est.covers(expected, 0.999),
            "i={i}: expected {expected}, got {est}"
        );
    }
}

#[test]
fn lemma_42_l_mu_distribution() {
    let settler = Settler::for_model(MemoryModel::Tso);
    let gen = ProgramGenerator::new(M);
    let h = Runner::new(Seed(107)).histogram(N_SAMPLES, move |rng| {
        let program = gen.generate(rng);
        events::observe_l_mu(&settler, &program, rng)
    });
    // Chi-square against the partition series.
    let l = lemma42::pr_l_mu_series_all(96, lemma42::DEFAULT_Q_MAX);
    let gof = chi_square_gof(&h, |mu| l.get(mu as usize).copied().unwrap_or(0.0), 5.0);
    assert!(
        gof.consistent_at(0.001),
        "Pr[L_µ] series rejected: χ²={} dof={} p={}",
        gof.statistic,
        gof.dof,
        gof.p_value
    );
    // And the paper's lower bound holds empirically.
    for mu in 0..8u64 {
        let est = montecarlo::BernoulliEstimate::from_counts(h.count(mu), h.total());
        let (_, ci_hi) = est.wilson_ci(0.999);
        assert!(
            ci_hi >= lemma42::pr_l_mu_lower_bound(mu as u32),
            "Lemma 4.2 bound violated at µ={mu}"
        );
    }
}

#[test]
fn window_law_is_insensitive_to_m_truncation() {
    // DESIGN.md ablation: the finite-m truncation error decays geometrically.
    let settler = Settler::for_model(MemoryModel::Wo);
    let mut prev_gap = f64::INFINITY;
    for m in [8usize, 16, 32] {
        let gen = ProgramGenerator::new(m);
        let h = Runner::new(Seed(108)).histogram(N_SAMPLES, move |rng| {
            let program = gen.generate(rng);
            settler.sample_gamma(&program, rng)
        });
        // Compare tail mass beyond γ = 4 with the exact law.
        let exact_tail: f64 = (5..200).map(window_law::wo_pmf).sum();
        let gap = (h.tail(5) - exact_tail).abs();
        assert!(gap <= prev_gap + 0.01, "m={m}: truncation gap grew");
        prev_gap = gap;
    }
}

#[test]
fn custom_model_ld_st_only_never_grows_the_window() {
    // A custom model relaxing only LD/ST (stores may pass earlier loads)
    // cannot grow the window: the critical LD is not allowed to move, the
    // critical ST is blocked by the critical LD directly above it, and the
    // critical ST settles last so nothing can be inserted between them.
    use memmodel::ReorderMatrix;
    let settler = Settler::new(
        ReorderMatrix::new(false, false, true, false),
        memmodel::SettleProbs::canonical(),
    );
    let gen = ProgramGenerator::new(16);
    let est = Runner::new(Seed(109)).bernoulli(20_000, move |rng| {
        let program = gen.generate(rng);
        settler.sample_gamma(&program, rng) == 0
    });
    assert_eq!(est.point(), 1.0);
}
