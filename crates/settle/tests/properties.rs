//! Property-based invariants of the settling process over *arbitrary*
//! reorder matrices, probabilities, and programs.

use memmodel::fence::FenceKind;
use memmodel::{MemoryModel, OpType, ReorderMatrix, SettleProbs};
use progmodel::Program;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use settle::Settler;

fn arb_matrix() -> impl Strategy<Value = ReorderMatrix> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>())
        .prop_map(|(a, b, c, d)| ReorderMatrix::new(a, b, c, d))
}

fn arb_types(max: usize) -> impl Strategy<Value = Vec<OpType>> {
    proptest::collection::vec(
        prop_oneof![Just(OpType::Ld), Just(OpType::St)],
        0..max,
    )
}

fn arb_prob() -> impl Strategy<Value = f64> {
    (0u32..=10).prop_map(|i| f64::from(i) / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The settled order is always a valid permutation, whatever the model.
    #[test]
    fn output_is_a_permutation(
        matrix in arb_matrix(),
        s in arb_prob(),
        types in arb_types(16),
        seed in 0u64..1000,
    ) {
        let program = Program::from_filler_types(&types).unwrap();
        let settler = Settler::new(matrix, SettleProbs::uniform(s).unwrap());
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        let perm = settled.permutation();
        prop_assert_eq!(perm.len(), program.len());
        for i in 0..program.len() {
            prop_assert_eq!(perm.at_position(perm.position_of(i)), i);
        }
    }

    /// The critical pair never reorders, under any matrix and probability.
    #[test]
    fn critical_pair_order_is_invariant(
        matrix in arb_matrix(),
        s in arb_prob(),
        types in arb_types(16),
        seed in 0u64..1000,
    ) {
        let program = Program::from_filler_types(&types).unwrap();
        let settler = Settler::new(matrix, SettleProbs::uniform(s).unwrap());
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        prop_assert!(
            settled.position_of(program.critical_load_index())
                < settled.position_of(program.critical_store_index())
        );
    }

    /// Settling respects the matrix: an inversion of two memory operations
    /// can only appear if the matrix relaxes that ordered pair, or some
    /// transitive chain of allowed swaps produced it. The *direct* pairwise
    /// check: if NO pair is relaxed, the output is the identity.
    #[test]
    fn empty_matrix_is_identity(
        s in arb_prob(),
        types in arb_types(16),
        seed in 0u64..1000,
    ) {
        let program = Program::from_filler_types(&types).unwrap();
        let settler = Settler::new(ReorderMatrix::none(), SettleProbs::uniform(s).unwrap());
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        prop_assert!(settled.permutation().is_identity());
    }

    /// Under TSO specifically, the relative order of same-type operations
    /// is preserved for any swap probability.
    #[test]
    fn tso_same_type_order_preserved(
        s in arb_prob(),
        types in arb_types(16),
        seed in 0u64..1000,
    ) {
        let program = Program::from_filler_types(&types).unwrap();
        let settler = Settler::new(
            MemoryModel::Tso.matrix(),
            SettleProbs::uniform(s).unwrap(),
        );
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        for ty in [OpType::Ld, OpType::St] {
            let positions: Vec<usize> = (0..program.len())
                .filter(|&i| program[i].op_type() == Some(ty))
                .map(|i| settled.position_of(i))
                .collect();
            prop_assert!(positions.windows(2).all(|w| w[0] < w[1]), "{ty} reordered");
        }
    }

    /// An acquire fence directly before the critical load pins the window
    /// at zero for every matrix and probability.
    #[test]
    fn acquire_fence_pins_window_for_any_model(
        matrix in arb_matrix(),
        s in arb_prob(),
        types in arb_types(12),
        seed in 0u64..1000,
    ) {
        let program = Program::from_filler_types(&types)
            .unwrap()
            .with_acquire_before_critical();
        let settler = Settler::new(matrix, SettleProbs::uniform(s).unwrap());
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(settled.gamma(), 0);
    }

    /// Fences never move upward: a fence's settled position is at least its
    /// initial position.
    #[test]
    fn fences_never_climb(
        matrix in arb_matrix(),
        s in arb_prob(),
        types in arb_types(10),
        fence_pos in 0usize..10,
        seed in 0u64..1000,
    ) {
        let base = Program::from_filler_types(&types).unwrap();
        let pos = fence_pos.min(base.len());
        let program = base.with_fence_at(pos, FenceKind::Release);
        let settler = Settler::new(matrix, SettleProbs::uniform(s).unwrap());
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        prop_assert!(settled.position_of(pos) >= pos);
    }

    /// Window length is always `gamma + 2` and bounded by the program size.
    #[test]
    fn window_bounds(
        matrix in arb_matrix(),
        types in arb_types(16),
        seed in 0u64..1000,
    ) {
        let program = Program::from_filler_types(&types).unwrap();
        let settler = Settler::new(matrix, SettleProbs::canonical());
        let settled = settler.settle(&program, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(settled.window_len(), settled.gamma() + 2);
        prop_assert!(settled.window_len() <= program.len() as u64);
    }

    /// The exact single-round β distribution integrates to 1 for arbitrary
    /// models and orders reachable by settling.
    #[test]
    fn beta_distribution_normalises(
        matrix in arb_matrix(),
        s in arb_prob(),
        types in arb_types(8),
        round_pick in 0usize..10,
    ) {
        let program = Program::from_filler_types(&types).unwrap();
        let settler = Settler::new(matrix, SettleProbs::uniform(s).unwrap());
        let order: Vec<usize> = (0..program.len()).collect();
        let round = round_pick.min(program.len() - 1);
        let beta = settle::beta::BetaDistribution::for_round(&settler, &program, &order, round);
        let total: f64 = beta.dense().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }
}
