//! Golden cache-key pins.
//!
//! The content address of a request is a contract: sweep memoization,
//! run extension, and every on-disk segment record depend on the same
//! canonical string and hash being produced forever (for a fixed
//! [`store::KERNEL_VERSION`]). These tests pin exact canon strings and
//! 128-bit hashes for representative requests across the Table-1 models,
//! the lane path, and the stopping-target variants. If any of them
//! changes, either bump `KERNEL_VERSION` (kernel behaviour changed — old
//! caches *should* become unreachable) or revert the accidental
//! canonicalization change; silently re-keying a cache is never correct.

use store::{KeyHash, KeySpec, KERNEL_VERSION};

/// The reference spec: TSO survival kernel at the paper's standard
/// parameters and the repo's standard seed.
fn tso_survival() -> KeySpec {
    KeySpec {
        kernel: format!("{KERNEL_VERSION}/survival"),
        matrix: ".X..".into(),
        threads_n: 2,
        filler_m: 64,
        p_bits: 0.5f64.to_bits(),
        settle_bits: [0.5f64.to_bits(); 4],
        fence_pass_bits: 1.0f64.to_bits(),
        acquire_fence: false,
        seed: 20_110_606,
        chunk_width: 4096,
        lanes: 0,
    }
}

#[test]
fn kernel_version_is_pinned() {
    // Bumping this invalidates every existing cache — deliberate, but it
    // must never happen by accident.
    assert_eq!(KERNEL_VERSION, "mmr-kernels-v1");
}

#[test]
fn family_canon_is_pinned() {
    assert_eq!(
        tso_survival().family_canon(),
        "mmrk1|kernel=mmr-kernels-v1/survival|matrix=.X..|n=2|m=64|\
         p=3fe0000000000000|s=3fe0000000000000,3fe0000000000000,3fe0000000000000,3fe0000000000000|\
         fence=3ff0000000000000|acq=0|seed=000000000132dd0e|cw=4096|lanes=0"
    );
}

#[test]
fn request_canons_are_pinned() {
    let spec = tso_survival();
    assert_eq!(
        spec.request(200_000, None).canon(),
        format!("{}|trials=200000|rse=-", spec.family_canon())
    );
    assert_eq!(
        spec.request(200_000, Some(0.01)).canon(),
        format!("{}|trials=200000|rse=3f847ae147ae147b", spec.family_canon())
    );
}

#[test]
fn request_hashes_are_pinned() {
    let spec = tso_survival();
    assert_eq!(
        spec.request(200_000, None).hash().hex(),
        "15e8d810f19c01ef47d1f58e6754ccac"
    );
    assert_eq!(
        spec.request(200_000, Some(0.01)).hash().hex(),
        "76da50c10c3773d85c40a9b35997de65"
    );
    assert_eq!(
        spec.request(200_000, None).family_hash().hex(),
        "7a090355ecad89b580f21ff81cd0ad52"
    );
}

#[test]
fn model_and_path_variants_hash_distinctly_and_stably() {
    // One pinned hash per Table-1 matrix plus the lane path and an
    // acquire-fence variant; all ten must be pairwise distinct.
    let mut variants: Vec<(String, KeySpec)> = Vec::new();
    for matrix in ["....", ".X..", "XX..", "XXXX"] {
        let mut s = tso_survival();
        s.matrix = matrix.into();
        variants.push((format!("matrix {matrix}"), s));
    }
    let mut lanes = tso_survival();
    lanes.kernel = format!("{KERNEL_VERSION}/survival_lanes");
    lanes.lanes = 1;
    variants.push(("lane path".into(), lanes));
    let mut acq = tso_survival();
    acq.acquire_fence = true;
    variants.push(("acquire fence".into(), acq));

    let hashes: Vec<String> = variants
        .iter()
        .map(|(_, s)| s.request(200_000, None).hash().hex())
        .collect();
    let expected = [
        "c56b538c08b88aa1b7b1e9f1a4aa4b7e",
        "15e8d810f19c01ef47d1f58e6754ccac",
        "a5f410d17b3feab193e42eb7c1de5367",
        "2580fd2b130e642165fbb16d28f55045",
        "4357fe189cba61287a79acbdde24df39",
        "6cdccbd436ffed806c670a980e4266eb",
    ];
    for (i, ((label, _), hash)) in variants.iter().zip(&hashes).enumerate() {
        assert_eq!(hash, expected[i], "golden hash moved for {label}");
    }
    for i in 0..hashes.len() {
        for j in (i + 1)..hashes.len() {
            assert_ne!(hashes[i], hashes[j], "collision between variants");
        }
    }
}

#[test]
fn hash_primitives_are_pinned() {
    // The two mixers under every key, pinned independently so a failure
    // above can be localized.
    assert_eq!(store::fnv1a64(b"mmrk1"), 0x78fd_6286_9857_416f);
    assert_eq!(store::splitmix64(0), 0xe220_a839_7b1d_cdaf);
    assert_eq!(KeyHash::of("mmrk1").hex().len(), 32);
}
