//! The on-disk cache tier: append-only CRC-framed segments plus an
//! atomically-rewritten index.
//!
//! Segments reuse the checkpoint journal's frame format (one record per
//! line):
//!
//! ```text
//! MMRS <version> <kind> <crc32-8hex> <compact-json>\n
//! ```
//!
//! with the CRC-32 (reflected, polynomial `0xEDB88320`) covering
//! `"<version> <kind> <compact-json>"`. Each `put` record carries a
//! [`crate::Entry`] wrapped with its 32-hex content address; later records
//! for the same key win. The index file (`index.mmri`) lists the live
//! segments in order and is only ever replaced atomically (tmp + rename),
//! so a crash mid-compaction leaves either the old or the new view, never
//! a mix.
//!
//! Recovery policy differs from the journal in one deliberate way: cache
//! data is *disposable*. A torn tail is truncated (normal crash recovery,
//! not an error); a file that is not a segment at all is skipped whole
//! with `mc.cache.errors` counted; and a CRC-valid record whose JSON fails
//! to parse is *skipped* and counted, not fatal — losing a cache record
//! costs a recompute, never correctness.

use crate::acc::Entry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Frame tag opening every segment line.
const TAG: &str = "MMRS";

/// Segment format version written by this build.
pub const VERSION: u32 = 1;

/// Default byte length at which the current segment is rolled.
pub(crate) const DEFAULT_ROLL_BYTES: u64 = 4 << 20;

/// CRC-32 (reflected, polynomial `0xEDB88320`, init/xorout `0xFFFFFFFF`)
/// — identical parameters to the checkpoint journal, zlib, and PNG, so
/// frames are checkable with any standard tool.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames one record as a segment line (with trailing newline).
fn frame(kind: &str, json: &str) -> String {
    let crc = crc32(format!("{VERSION} {kind} {json}").as_bytes());
    format!("{TAG} {VERSION} {kind} {crc:08x} {json}\n")
}

/// One framed cache record: the content address plus the entry it names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PutRecord {
    /// 32-hex content address ([`crate::KeyHash::hex`]).
    key: String,
    /// The cached entry.
    entry: Entry,
}

/// Where a live record lives on disk.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    seg: usize,
    offset: u64,
    len: u64,
}

/// One record recovered by a segment scan.
struct ScannedRecord {
    key: String,
    offset: u64,
    len: u64,
    entry: Entry,
}

/// What scanning one segment file recovered.
struct SegScan {
    /// Byte length of the valid prefix (everything past it is torn).
    good_len: u64,
    /// True when bytes past `good_len` had to be discarded.
    torn: bool,
    /// CRC-valid current-version records whose JSON would not parse.
    bad_records: u64,
    records: Vec<ScannedRecord>,
}

/// Scans segment bytes, keeping the longest framed prefix. Unframed data
/// ends the scan (torn tail); CRC-valid records of unknown version or
/// kind are skipped silently; CRC-valid `put` records with unparseable
/// JSON are skipped and counted.
fn scan(bytes: &[u8]) -> SegScan {
    let mut out = SegScan {
        good_len: 0,
        torn: false,
        bad_records: 0,
        records: Vec::new(),
    };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            out.torn = true;
            break;
        };
        let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) else {
            out.torn = true;
            break;
        };
        let mut parts = line.splitn(5, ' ');
        let (tag, ver, kind, crc_hex, json) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        let framed = tag == TAG
            && u32::from_str_radix(crc_hex, 16)
                .is_ok_and(|crc| crc == crc32(format!("{ver} {kind} {json}").as_bytes()));
        if !framed {
            out.torn = true;
            break;
        }
        if ver.parse::<u32>().is_ok_and(|v| v == VERSION) && kind == "put" {
            match serde_json::from_str::<PutRecord>(json) {
                Ok(rec) => out.records.push(ScannedRecord {
                    key: rec.key,
                    offset: offset as u64,
                    len: (nl + 1) as u64,
                    entry: rec.entry,
                }),
                // The frame vouched for the bytes but the schema moved on
                // (or a bug wrote nonsense). Cache records are disposable:
                // drop this one, keep the rest.
                Err(_) => out.bad_records += 1,
            }
        }
        offset += nl + 1;
        out.good_len = offset as u64;
    }
    out
}

/// Parses one framed line back into its record. `None` on any mismatch —
/// the caller treats that as a (counted) cache fault and recomputes.
fn parse_record(bytes: &[u8]) -> Option<(String, Entry)> {
    let scan = scan(bytes);
    let rec = scan.records.into_iter().next()?;
    Some((rec.key, rec.entry))
}

/// The segment index file content (`index.mmri`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct IndexFile {
    version: u32,
    segments: Vec<String>,
}

/// Atomically replaces `path` with `contents` (tmp + rename in the same
/// directory, so the swap is a single metadata operation).
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Counters a [`DiskTier::open`] accumulated while recovering.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct OpenFaults {
    /// Survivable faults: garbage files skipped, bad records dropped,
    /// unreadable segments.
    pub errors: u64,
    /// Torn tails truncated back to their valid prefix.
    pub torn_tails: u64,
}

/// What [`DiskTier::open`] recovers from a cache directory: the tier
/// itself, the live `(key, entry)` records in last-write-wins order, and
/// the fault counters accumulated while recovering.
pub(crate) type Opened = (DiskTier, Vec<(String, Entry)>, OpenFaults);

/// The append-only on-disk tier.
pub(crate) struct DiskTier {
    dir: PathBuf,
    /// Live segment file names, index order; the last one is current.
    segments: Vec<String>,
    current: File,
    current_len: u64,
    roll_bytes: u64,
    next_gen: u64,
    index: HashMap<String, RecordLoc>,
    /// All records in live segments, including superseded ones.
    total_records: u64,
    /// Records appended through this handle (chaos record numbering).
    records_written: u64,
}

impl DiskTier {
    /// Segment file name for a generation number.
    fn seg_name(gen: u64) -> String {
        format!("seg-{gen:08}.mmrs")
    }

    /// Opens (or creates) the tier at `dir`, recovering every valid
    /// record previous processes left behind.
    ///
    /// Returns the tier, the *live* entries (later records win) for the
    /// caller's in-memory indexes, and the fault counts recovery
    /// accumulated. Compacts in place when superseded records outnumber
    /// live ones.
    ///
    /// # Errors
    ///
    /// Any I/O error that prevents the tier from being writable — an
    /// unwritable or uncreatable directory degrades the whole store to
    /// miss-through at the call site.
    pub fn open(dir: &Path, roll_bytes: u64) -> std::io::Result<Opened> {
        std::fs::create_dir_all(dir)?;
        let mut faults = OpenFaults::default();

        // Segment list: the index file when it parses, else whatever
        // segment files are actually present (sorted, so generation
        // order), with a parse failure counted as a survivable fault.
        let index_path = dir.join("index.mmri");
        let listed: Option<Vec<String>> = match std::fs::read_to_string(&index_path) {
            Ok(text) => match serde_json::from_str::<IndexFile>(&text) {
                Ok(idx) if idx.version == VERSION => Some(idx.segments),
                _ => {
                    faults.errors += 1;
                    obs::info!(
                        "cache {}: unreadable index.mmri, falling back to directory scan",
                        dir.display()
                    );
                    None
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => {
                faults.errors += 1;
                None
            }
        };
        let mut segments = listed.unwrap_or_else(|| {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .map(|rd| {
                    rd.filter_map(Result::ok)
                        .filter_map(|e| e.file_name().into_string().ok())
                        .filter(|n| n.starts_with("seg-") && n.ends_with(".mmrs"))
                        .collect()
                })
                .unwrap_or_default();
            names.sort();
            names
        });

        // Scan every listed segment, building the later-wins record map.
        let mut index: HashMap<String, RecordLoc> = HashMap::new();
        let mut entries: HashMap<String, Entry> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut total_records = 0u64;
        let mut live_names: Vec<String> = Vec::new();
        for name in &segments {
            let path = dir.join(name);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(_) => {
                    faults.errors += 1;
                    obs::info!("cache {}: unreadable segment, skipping", path.display());
                    continue;
                }
            };
            if !bytes.is_empty() && !bytes.starts_with(TAG.as_bytes()) {
                // Not a segment at all — someone else's file. Skip it
                // whole; never delete what we did not write.
                faults.errors += 1;
                obs::info!(
                    "cache {}: not an {TAG} segment, skipping the file",
                    path.display()
                );
                continue;
            }
            let scan = scan(&bytes);
            if scan.torn {
                faults.torn_tails += 1;
                obs::info!(
                    "cache {}: truncated torn tail ({} of {} bytes kept)",
                    path.display(),
                    scan.good_len,
                    bytes.len()
                );
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.good_len)?;
            }
            faults.errors += scan.bad_records;
            let seg_idx = live_names.len();
            for rec in scan.records {
                total_records += 1;
                if entries.insert(rec.key.clone(), rec.entry).is_none() {
                    order.push(rec.key.clone());
                }
                index.insert(
                    rec.key,
                    RecordLoc {
                        seg: seg_idx,
                        offset: rec.offset,
                        len: rec.len,
                    },
                );
            }
            live_names.push(name.clone());
        }
        segments = live_names;

        let next_gen = segments
            .iter()
            .filter_map(|n| n[4..12].parse::<u64>().ok())
            .max()
            .map_or(0, |g| g + 1);

        // Ensure there is a writable current segment; this is also the
        // writability probe that makes an unreadable/unwritable directory
        // fail open() instead of failing mid-run.
        let (current_name, created) = match segments.last() {
            Some(name) => (name.clone(), false),
            None => (Self::seg_name(0), true),
        };
        let current_path = dir.join(&current_name);
        let current = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&current_path)?;
        let current_len = current.metadata()?.len();
        if created {
            segments.push(current_name);
        }

        let mut tier = DiskTier {
            dir: dir.to_path_buf(),
            segments,
            current,
            current_len,
            roll_bytes,
            next_gen: next_gen.max(1),
            index,
            total_records,
            records_written: total_records,
        };
        tier.write_index()?;

        let live: Vec<(String, Entry)> = order
            .into_iter()
            .map(|k| {
                let e = entries.remove(&k).expect("order tracks entries");
                (k, e)
            })
            .collect();

        // Compact when most of the bytes are superseded history.
        let live_count = live.len() as u64;
        if tier.total_records >= 8 && tier.total_records > 2 * live_count {
            tier.compact(&live)?;
        }
        Ok((tier, live, faults))
    }

    /// Rewrites the index file atomically to the current segment list.
    fn write_index(&self) -> std::io::Result<()> {
        let idx = IndexFile {
            version: VERSION,
            segments: self.segments.clone(),
        };
        let json = serde_json::to_string(&idx).expect("IndexFile serialization is infallible");
        write_atomic(&self.dir.join("index.mmri"), &json)
    }

    /// Reads one live record back. `None` (never an error) on any
    /// mismatch — a cache fault costs a recompute, not a failure.
    pub fn get(&self, key_hex: &str) -> Option<Entry> {
        let loc = self.index.get(key_hex)?;
        let path = self.dir.join(self.segments.get(loc.seg)?);
        let bytes = std::fs::read(path).ok()?;
        let end = usize::try_from(loc.offset + loc.len).ok()?;
        let start = usize::try_from(loc.offset).ok()?;
        let (key, entry) = parse_record(bytes.get(start..end)?)?;
        (key == key_hex).then_some(entry)
    }

    /// Durably appends one record, rolling the segment when it outgrows
    /// the roll threshold.
    ///
    /// Under an installed chaos plan this record's write may be torn: a
    /// partial frame is flushed first, then the real recovery path
    /// (rescan, truncate) runs before the full record lands — the same
    /// discipline as the checkpoint journal.
    ///
    /// # Errors
    ///
    /// I/O failure on the append path; previously-written records are
    /// unaffected, and the caller degrades to memory-only.
    pub fn put(&mut self, key_hex: &str, entry: &Entry) -> std::io::Result<u64> {
        let json = serde_json::to_string(&PutRecord {
            key: key_hex.to_string(),
            entry: entry.clone(),
        })
        .expect("Entry serialization is infallible");
        let line = frame("put", &json);
        let record_no = self.records_written;
        let mut torn_tails = 0u64;
        if let Some(plan) = montecarlo::fault::active() {
            if plan.torn_write(record_no) {
                montecarlo::fault::ledger().note_injected_torn_write();
                let partial = &line.as_bytes()[..line.len() * 2 / 3];
                self.current.write_all(partial)?;
                let _ = self.current.sync_data();
                torn_tails += self.recover_torn_tail()?;
            }
        }
        let offset = self.current_len;
        self.current.write_all(line.as_bytes())?;
        let _ = self.current.sync_data();
        self.current_len += line.len() as u64;
        self.index.insert(
            key_hex.to_string(),
            RecordLoc {
                seg: self.segments.len() - 1,
                offset,
                len: line.len() as u64,
            },
        );
        self.total_records += 1;
        self.records_written = record_no + 1;
        if self.current_len >= self.roll_bytes {
            self.roll()?;
        }
        Ok(torn_tails)
    }

    /// Re-scans the current segment and truncates any invalid tail — the
    /// recovery [`open`](DiskTier::open) performs, run in-process after an
    /// injected torn write. Returns how many tails were truncated (0/1).
    fn recover_torn_tail(&mut self) -> std::io::Result<u64> {
        let path = self.dir.join(self.segments.last().expect("a current segment exists"));
        let bytes = std::fs::read(&path)?;
        let scan = scan(&bytes);
        if scan.torn {
            self.current.set_len(scan.good_len)?;
            self.current_len = scan.good_len;
            obs::info!(
                "cache {}: truncated torn tail ({} of {} bytes kept)",
                path.display(),
                scan.good_len,
                bytes.len()
            );
            return Ok(1);
        }
        Ok(0)
    }

    /// Starts a fresh current segment and rewrites the index.
    fn roll(&mut self) -> std::io::Result<()> {
        let name = Self::seg_name(self.next_gen);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(&name))?;
        self.next_gen += 1;
        self.segments.push(name);
        self.current = file;
        self.current_len = 0;
        self.write_index()
    }

    /// Rewrites the given live records into one fresh segment, swaps the
    /// index atomically, then best-effort deletes the superseded files.
    /// A crash at any point leaves a readable view: old index + old
    /// segments, or new index + new segment.
    pub fn compact(&mut self, live: &[(String, Entry)]) -> std::io::Result<()> {
        let name = Self::seg_name(self.next_gen);
        let path = self.dir.join(&name);
        let mut content = String::new();
        let mut index = HashMap::new();
        for (key, entry) in live {
            let json = serde_json::to_string(&PutRecord {
                key: key.clone(),
                entry: entry.clone(),
            })
            .expect("Entry serialization is infallible");
            let line = frame("put", &json);
            index.insert(
                key.clone(),
                RecordLoc {
                    seg: 0,
                    offset: content.len() as u64,
                    len: line.len() as u64,
                },
            );
            content.push_str(&line);
        }
        write_atomic(&path, &content)?;
        let old: Vec<String> = std::mem::replace(&mut self.segments, vec![name]);
        self.next_gen += 1;
        self.current_len = content.len() as u64;
        self.current = OpenOptions::new().append(true).open(&path)?;
        self.index = index;
        self.total_records = live.len() as u64;
        self.write_index()?;
        for name in old {
            let _ = std::fs::remove_file(self.dir.join(name));
        }
        Ok(())
    }

    /// Live record count (distinct keys).
    pub fn live_records(&self) -> u64 {
        self.index.len() as u64
    }

    /// All records ever appended to the live segments, including
    /// superseded ones — the compaction trigger's numerator.
    #[cfg(test)]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The live entries, read back from disk (for explicit compaction).
    pub fn read_live(&self) -> Vec<(String, Entry)> {
        let mut out = Vec::with_capacity(self.index.len());
        let mut keys: Vec<&String> = self.index.keys().collect();
        keys.sort();
        for key in keys {
            if let Some(entry) = self.get(key) {
                out.push((key.clone(), entry));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::{AccState, BernoulliState, CachedReport};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmr-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(tag: u64) -> Entry {
        Entry {
            canon: format!("mmrk1|test|trials={tag}|rse=-"),
            family: "mmrk1|test".into(),
            report: CachedReport {
                value: AccState::Bernoulli(BernoulliState {
                    successes: tag,
                    trials: tag * 2,
                }),
                trials_requested: tag * 2,
                trials_completed: tag * 2,
                converged_early: false,
            },
            prefixes: Vec::new(),
        }
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn put_get_roundtrips_across_reopens() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            assert!(live.is_empty());
            assert_eq!(faults.errors, 0);
            t.put("k1", &entry(1)).unwrap();
            t.put("k2", &entry(2)).unwrap();
            assert_eq!(t.get("k1"), Some(entry(1)));
        }
        let (t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.errors, 0);
        assert_eq!(live.len(), 2);
        assert_eq!(t.get("k2"), Some(entry(2)));
        assert_eq!(t.get("nope"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_records_win_and_compaction_keeps_them() {
        let dir = tmp_dir("laterwins");
        {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            for v in 1..=9 {
                t.put("k", &entry(v)).unwrap();
            }
            assert_eq!(t.total_records(), 9);
            assert_eq!(t.live_records(), 1);
        }
        // 9 records, 1 live: the open-time compactor fires.
        let (t, live, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(live, vec![("k".to_string(), entry(9))]);
        assert_eq!(t.total_records(), 1, "compacted away the history");
        assert_eq!(t.get("k"), Some(entry(9)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = tmp_dir("torn");
        let (seg_path, intact) = {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            t.put("k1", &entry(1)).unwrap();
            let path = dir.join("seg-00000000.mmrs");
            (path.clone(), std::fs::read(&path).unwrap())
        };
        let mut bytes = intact.clone();
        bytes.extend_from_slice(&b"MMRS 1 put 00000000 {\"key\":\"half"[..]);
        std::fs::write(&seg_path, &bytes).unwrap();

        let (t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.torn_tails, 1);
        assert_eq!(faults.errors, 0, "a torn tail is recovery, not an error");
        assert_eq!(live.len(), 1);
        assert_eq!(t.get("k1"), Some(entry(1)));
        assert_eq!(std::fs::read(&seg_path).unwrap(), intact);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_segment_is_skipped_not_fatal() {
        let dir = tmp_dir("garbage");
        {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            t.put("k1", &entry(1)).unwrap();
        }
        // A file the index will list next open (sorts after seg-00000000)
        // that is not a segment at all.
        std::fs::write(dir.join("seg-00000007.mmrs"), "definitely not a segment\n").unwrap();
        let idx = IndexFile {
            version: VERSION,
            segments: vec!["seg-00000000.mmrs".into(), "seg-00000007.mmrs".into()],
        };
        write_atomic(&dir.join("index.mmri"), &serde_json::to_string(&idx).unwrap()).unwrap();

        let (t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.errors, 1, "the garbage file is counted");
        assert_eq!(live.len(), 1, "the real segment still serves");
        assert_eq!(t.get("k1"), Some(entry(1)));
        assert!(
            dir.join("seg-00000007.mmrs").exists(),
            "files we did not write are never deleted"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_json_in_a_valid_frame_is_skipped_and_counted() {
        let dir = tmp_dir("badjson");
        {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            t.put("k1", &entry(1)).unwrap();
        }
        let path = dir.join("seg-00000000.mmrs");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(frame("put", "{\"not\":\"a put record\"}").as_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let (t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.errors, 1);
        assert_eq!(faults.torn_tails, 0);
        assert_eq!(live.len(), 1);
        assert_eq!(t.get("k1"), Some(entry(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_and_kind_are_tolerated_silently() {
        let dir = tmp_dir("mixed");
        {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            t.put("k1", &entry(1)).unwrap();
        }
        let path = dir.join("seg-00000000.mmrs");
        let mut bytes = std::fs::read(&path).unwrap();
        let future = format!(
            "{TAG} 99 put {:08x} {}\n",
            crc32(b"99 put {\"whatever\":true}"),
            "{\"whatever\":true}"
        );
        bytes.extend_from_slice(future.as_bytes());
        bytes.extend_from_slice(frame("note", "{\"free\":\"form\"}").as_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let (_, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.errors, 0);
        assert_eq!(faults.torn_tails, 0);
        assert_eq!(live.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_the_threshold_and_reopen_sees_all() {
        let dir = tmp_dir("roll");
        {
            // A tiny roll threshold forces a new segment per record.
            let (mut t, _, _) = DiskTier::open(&dir, 64).unwrap();
            for v in 1..=4 {
                t.put(&format!("k{v}"), &entry(v)).unwrap();
            }
            assert!(t.segments.len() >= 4, "rolled into multiple segments");
        }
        let (t, live, faults) = DiskTier::open(&dir, 64).unwrap();
        assert_eq!(faults.errors, 0);
        assert_eq!(live.len(), 4);
        for v in 1..=4u64 {
            assert_eq!(t.get(&format!("k{v}")), Some(entry(v)));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_falls_back_to_directory_scan() {
        let dir = tmp_dir("noindex");
        {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            t.put("k1", &entry(1)).unwrap();
        }
        std::fs::remove_file(dir.join("index.mmri")).unwrap();
        let (t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.errors, 0, "a missing index is not a fault");
        assert_eq!(live.len(), 1);
        assert_eq!(t.get("k1"), Some(entry(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_index_counts_an_error_but_still_recovers() {
        let dir = tmp_dir("badindex");
        {
            let (mut t, _, _) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
            t.put("k1", &entry(1)).unwrap();
        }
        std::fs::write(dir.join("index.mmri"), "not json at all").unwrap();
        let (t, live, faults) = DiskTier::open(&dir, DEFAULT_ROLL_BYTES).unwrap();
        assert_eq!(faults.errors, 1);
        assert_eq!(live.len(), 1);
        assert_eq!(t.get("k1"), Some(entry(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
