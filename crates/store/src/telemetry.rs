//! Cache observability: `mc.cache.*` counters and gauges.
//!
//! Same pattern as `montecarlo::telemetry` — handles are resolved once
//! against the global registry and cached in a `OnceLock`, so the hot
//! lookup path never touches the registry lock. All names emitted here
//! are documented in `METRICS.md` (the `mmr-bench` metrics-doc test
//! cross-checks that).

use obs::{Counter, Gauge};
use std::sync::OnceLock;

/// Cached handles for the cache-tier metrics.
pub(crate) struct CacheMetrics {
    /// `mc.cache.hits` — exact request-key hits served as pure lookups.
    pub hits: Counter,
    /// `mc.cache.misses` — requests the cache could not help with.
    pub misses: Counter,
    /// `mc.cache.extends` — requests resumed from a cached chunk prefix.
    pub extends: Counter,
    /// `mc.cache.evictions` — LRU entries dropped to stay in budget.
    pub evictions: Counter,
    /// `mc.cache.errors` — degraded-but-survivable cache faults.
    pub errors: Counter,
    /// `mc.cache.bytes` — approximate bytes resident in the LRU tier.
    pub bytes: Gauge,
}

pub(crate) fn cache() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = obs::global();
        CacheMetrics {
            hits: g.counter("mc.cache.hits"),
            misses: g.counter("mc.cache.misses"),
            extends: g.counter("mc.cache.extends"),
            evictions: g.counter("mc.cache.evictions"),
            errors: g.counter("mc.cache.errors"),
            bytes: g.gauge("mc.cache.bytes"),
        }
    })
}
