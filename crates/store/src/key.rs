//! Canonical request keys.
//!
//! Every cacheable result in this workspace is a pure function of a small
//! request tuple: kernel version, reorder matrix, program/settle
//! parameters, seed, chunk width, lane width, trial count, and (for
//! sequential-stopping runs) the RSE target. This module serializes that
//! tuple into one *canonical string* — versioned, field-ordered, floats as
//! IEEE-754 bit patterns so formatting can never split the cache — and
//! hashes it into a stable 128-bit content address (FNV-1a 64 for the
//! first word, a SplitMix64 finalisation for the second).
//!
//! Two levels of key exist on purpose:
//!
//! * the **family** key ([`KeySpec::family_canon`]) omits the trial count
//!   and RSE target — every run over the same seeded kernel shares it, so
//!   a cached chunk prefix indexed by family can *extend* a larger or
//!   `with_target_rse` request;
//! * the **request** key ([`RequestKey::canon`]) appends both — an exact
//!   hit on it is a finished, bit-identical result.
//!
//! `crates/store/tests/golden_keys.rs` pins exact hash values, so any
//! accidental canonicalization change (field reorder, float formatting,
//! hash tweak) fails loudly instead of silently invalidating every cache.

use std::fmt;

/// Version tag of the simulation kernels whose outputs this cache stores.
///
/// **Bump this whenever a golden-pinned kernel changes** (settle, shift,
/// program generation, RNG fan-out, chunk tiling): the tag is folded into
/// every canonical string, so old cache contents become unreachable
/// instead of silently wrong.
pub const KERNEL_VERSION: &str = "mmr-kernels-v1";

/// Canonical-string format version (the leading token of every canon).
pub const CANON_VERSION: &str = "mmrk1";

/// The identity of one seeded kernel run family — everything that
/// determines the per-chunk trial streams except how many trials are
/// requested and when to stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpec {
    /// Kernel version tag plus result kind, e.g.
    /// `"mmr-kernels-v1/survival"` (kinds: `survival`, `windows`, `rb`,
    /// `survival_lanes`, `windows_lanes`).
    pub kernel: String,
    /// The reorder matrix in its canonical 4-character Table-1 form
    /// (`....` = SC, `.X..` = TSO, `XX..` = PSO, `XXXX` = WO).
    pub matrix: String,
    /// Program threads `n`.
    pub threads_n: u64,
    /// Filler length `m`.
    pub filler_m: u64,
    /// Store probability `p`, as IEEE-754 bits.
    pub p_bits: u64,
    /// The four per-pair settle probabilities in Table-1 column order
    /// (ST/ST, ST/LD, LD/ST, LD/LD), as IEEE-754 bits.
    pub settle_bits: [u64; 4],
    /// Release-fence pass probability, as IEEE-754 bits.
    pub fence_pass_bits: u64,
    /// Whether the critical load carries an acquire fence.
    pub acquire_fence: bool,
    /// Master RNG seed.
    pub seed: u64,
    /// Chunk width of the runner tiling (results depend on it).
    pub chunk_width: u64,
    /// Lane width of the batch-lane path; `0` for the scalar path (the
    /// two paths draw different per-trial streams, so they never share
    /// cache lines — except that lane results are lane-width-invariant,
    /// which callers express by passing a fixed `1` for every width).
    pub lanes: u64,
}

impl KeySpec {
    /// The canonical family string: versioned, fixed field order, floats
    /// as zero-padded hex bit patterns.
    #[must_use]
    pub fn family_canon(&self) -> String {
        let [s0, s1, s2, s3] = self.settle_bits;
        format!(
            "{CANON_VERSION}|kernel={}|matrix={}|n={}|m={}|p={:016x}|s={s0:016x},{s1:016x},{s2:016x},{s3:016x}|fence={:016x}|acq={}|seed={:016x}|cw={}|lanes={}",
            self.kernel,
            self.matrix,
            self.threads_n,
            self.filler_m,
            self.p_bits,
            self.fence_pass_bits,
            u8::from(self.acquire_fence),
            self.seed,
            self.chunk_width,
            self.lanes,
        )
    }

    /// Completes the family into a concrete request.
    #[must_use]
    pub fn request(&self, trials: u64, target_rse: Option<f64>) -> RequestKey {
        RequestKey {
            family: self.family_canon(),
            trials,
            rse_bits: target_rse.map(f64::to_bits),
        }
    }
}

/// One concrete cacheable request: a family plus the trial budget and the
/// optional sequential-stopping target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestKey {
    /// The canonical family string ([`KeySpec::family_canon`]).
    pub family: String,
    /// Requested trials.
    pub trials: u64,
    /// `with_target_rse` target as IEEE-754 bits, if any.
    pub rse_bits: Option<u64>,
}

impl RequestKey {
    /// The canonical request string.
    #[must_use]
    pub fn canon(&self) -> String {
        match self.rse_bits {
            Some(bits) => format!("{}|trials={}|rse={bits:016x}", self.family, self.trials),
            None => format!("{}|trials={}|rse=-", self.family, self.trials),
        }
    }

    /// The content address of this request.
    #[must_use]
    pub fn hash(&self) -> KeyHash {
        KeyHash::of(&self.canon())
    }

    /// The content address of this request's family.
    #[must_use]
    pub fn family_hash(&self) -> KeyHash {
        KeyHash::of(&self.family)
    }
}

/// A 128-bit content address over a canonical string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyHash(pub [u64; 2]);

impl KeyHash {
    /// Hashes a canonical string: FNV-1a 64 for the first word; the
    /// second word decorrelates via SplitMix64 over the first word xored
    /// with the byte length, so length-extension-style near-collisions of
    /// FNV cannot collide both words.
    #[must_use]
    pub fn of(canon: &str) -> KeyHash {
        let h1 = fnv1a64(canon.as_bytes());
        let h2 = splitmix64(h1 ^ (canon.len() as u64));
        KeyHash([h1, h2])
    }

    /// The 32-hex-digit rendering used as the on-disk/record key.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for KeyHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// FNV-1a, 64-bit: offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The SplitMix64 finaliser (same constants as the RNG fan-out in
/// `montecarlo::rng`), used to mix the second hash word.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KeySpec {
        KeySpec {
            kernel: format!("{KERNEL_VERSION}/survival"),
            matrix: ".X..".into(),
            threads_n: 2,
            filler_m: 64,
            p_bits: 0.5f64.to_bits(),
            settle_bits: [0.5f64.to_bits(); 4],
            fence_pass_bits: 0.5f64.to_bits(),
            acquire_fence: false,
            seed: 20_110_606,
            chunk_width: 4096,
            lanes: 0,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canon_is_deterministic_and_field_sensitive() {
        let a = spec();
        assert_eq!(a.family_canon(), spec().family_canon());
        let mut b = spec();
        b.seed += 1;
        assert_ne!(a.family_canon(), b.family_canon());
        let mut c = spec();
        c.lanes = 8;
        assert_ne!(a.family_canon(), c.family_canon());
    }

    #[test]
    fn request_canon_separates_trials_and_rse() {
        let s = spec();
        let plain = s.request(200_000, None);
        let more = s.request(300_000, None);
        let rse = s.request(200_000, Some(0.01));
        assert_ne!(plain.canon(), more.canon());
        assert_ne!(plain.canon(), rse.canon());
        // ...but all three share the family (the extension index).
        assert_eq!(plain.family, more.family);
        assert_eq!(plain.family, rse.family);
    }

    #[test]
    fn float_bits_not_formatting_enter_the_canon() {
        // 0.1 + 0.2 != 0.3 in bits; a formatted "0.3" would collide them.
        let mut a = spec();
        a.p_bits = (0.1f64 + 0.2f64).to_bits();
        let mut b = spec();
        b.p_bits = 0.3f64.to_bits();
        assert_ne!(a.family_canon(), b.family_canon());
    }

    #[test]
    fn hash_words_disagree_on_different_canons() {
        let a = spec().request(1000, None).hash();
        let b = spec().request(1001, None).hash();
        assert_ne!(a, b);
        assert_eq!(a.hex().len(), 32);
    }
}
