//! Content-addressed result cache for the Monte-Carlo stack.
//!
//! Every kernel run in this workspace is a pure function of a small
//! request tuple (kernel version, reorder matrix, program/settle
//! parameters, seed, chunk width, lane path, trial budget, stopping
//! target) — the runner guarantees bit-identical results for any worker
//! count. This crate turns that purity into reuse:
//!
//! * [`KeySpec`]/[`RequestKey`] canonicalize the tuple into a versioned
//!   string (floats as IEEE-754 bit patterns) and hash it into a stable
//!   128-bit content address ([`KeyHash`]);
//! * [`Store`] serves exact hits from a bounded in-memory LRU backed by
//!   an append-only CRC-framed segment tier on disk (torn tails
//!   truncated, garbage skipped, index swapped atomically), and serves
//!   *extensions* — cached whole-chunk prefixes a larger or
//!   `with_target_rse` request can resume from — out of a per-family
//!   index;
//! * [`install`]/[`active`] expose one process-global store the core
//!   crates' cache-aware entry points consult.
//!
//! The cache is an accelerator, never an authority: any fault — an
//! unwritable directory, a corrupt segment, a failed append — degrades to
//! a counted miss (`mc.cache.errors`) and the run computes cold, with
//! results bit-identical to an uncached run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
mod key;
mod segment;
mod store;
mod telemetry;

pub use acc::{
    AccState, BernoulliState, CacheableAcc, CachedPrefix, CachedReport, Entry, HistState,
    MeanState,
};
pub use key::{fnv1a64, splitmix64, KeyHash, KeySpec, RequestKey, CANON_VERSION, KERNEL_VERSION};
pub use segment::crc32;
pub use store::{active, clear, install, Lookup, StatsSnapshot, Store, StoreError};
