//! The two-tier content-addressed store and its process-global handle.
//!
//! Layering, fastest first:
//!
//! 1. a bounded in-memory LRU of deserialized [`Entry`] values (the warm
//!    hit path — no I/O, no parsing);
//! 2. the append-only on-disk [`segment`](crate::segment) tier, consulted
//!    on LRU miss and promoted back into the LRU;
//! 3. a **family index** mapping the family canon's content address to
//!    every cached whole-chunk prefix of that seeded kernel — the
//!    *extension* path, serving a larger-trials or `with_target_rse`
//!    request a resumable prefix instead of a cold start.
//!
//! Every fallible cache interaction degrades to a (counted) miss: the
//! cache can make runs faster, never wrong and never failed.

use crate::acc::{CachedPrefix, CachedReport, Entry};
use crate::key::RequestKey;
use crate::segment::{DiskTier, DEFAULT_ROLL_BYTES};
use crate::telemetry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default LRU budget: plenty for full sweep grids, bounded enough to
/// never matter next to the simulation working set.
const DEFAULT_MEMORY_BUDGET: u64 = 64 << 20;

/// Most families the extension index retains (insertion-ordered cap; the
/// exact-hit path is unaffected by this bound).
const MAX_FAMILIES: usize = 4096;

/// Why a store could not be opened.
#[derive(Debug)]
pub enum StoreError {
    /// The cache directory could not be created, read, or written.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "cache directory {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
        }
    }
}

/// What a [`Store::lookup`] found.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Exact request-key hit: the finished, bit-identical result.
    Hit(Entry),
    /// No finished result, but the family has whole-chunk prefixes no
    /// larger than the request — resume from the largest instead of
    /// starting cold. Ascending by `chunks`.
    Extend(Vec<CachedPrefix>),
    /// Nothing usable; compute cold.
    Miss,
}

/// Point-in-time cache statistics (process-local, independent of whether
/// `obs` telemetry is recording).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Exact request-key hits.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Lookups served a resumable prefix.
    pub extends: u64,
    /// LRU entries evicted to stay inside the memory budget.
    pub evictions: u64,
    /// Survivable cache faults (unreadable files, bad records, failed
    /// appends).
    pub errors: u64,
    /// Torn segment tails truncated back to their valid prefix.
    pub torn_tails: u64,
}

#[derive(Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    extends: AtomicU64,
    evictions: AtomicU64,
    errors: AtomicU64,
    torn_tails: AtomicU64,
}

/// One resident LRU slot.
struct LruSlot {
    entry: Entry,
    bytes: u64,
    tick: u64,
}

/// One family's extension state.
struct Family {
    /// Full canonical family string (collision guard).
    canon: String,
    /// Whole-chunk prefixes, ascending by `chunks`, deduplicated.
    prefixes: Vec<CachedPrefix>,
}

struct Inner {
    lru: HashMap<String, LruSlot>,
    lru_bytes: u64,
    tick: u64,
    families: HashMap<String, Family>,
    /// Family keys in first-insertion order, for the cap.
    family_order: Vec<String>,
    disk: Option<DiskTier>,
}

/// A two-tier content-addressed result cache.
///
/// All methods take `&self`; the store is internally synchronized and is
/// shared as `Arc<Store>` (see [`install`]).
pub struct Store {
    inner: Mutex<Inner>,
    memory_budget: u64,
    stats: Stats,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("memory_budget", &self.memory_budget)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// An empty, memory-only store (no disk tier) with the default
    /// budget.
    #[must_use]
    pub fn in_memory() -> Store {
        Store {
            inner: Mutex::new(Inner {
                lru: HashMap::new(),
                lru_bytes: 0,
                tick: 0,
                families: HashMap::new(),
                family_order: Vec::new(),
                disk: None,
            }),
            memory_budget: DEFAULT_MEMORY_BUDGET,
            stats: Stats::default(),
        }
    }

    /// Opens (or creates) a disk-backed store at `dir`, recovering every
    /// valid record previous processes left: torn tails are truncated,
    /// garbage files and undecodable records are skipped and counted,
    /// and the extension index is rebuilt from the live entries.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created or
    /// written. Callers degrade to running uncached (miss-through) —
    /// an unusable cache must never fail the run itself.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        Store::open_with(dir, DEFAULT_ROLL_BYTES)
    }

    /// [`Store::open`] with an explicit segment-roll threshold (tests).
    pub fn open_with(dir: &Path, roll_bytes: u64) -> Result<Store, StoreError> {
        let (disk, live, faults) = DiskTier::open(dir, roll_bytes).map_err(|source| {
            telemetry::cache().errors.inc();
            StoreError::Io {
                path: dir.to_path_buf(),
                source,
            }
        })?;
        let store = Store::in_memory();
        {
            let mut inner = store.lock();
            inner.disk = Some(disk);
            for (_, entry) in &live {
                Store::index_family(&mut inner, entry);
            }
        }
        if faults.errors > 0 {
            telemetry::cache().errors.add(faults.errors);
            store.stats.errors.fetch_add(faults.errors, Ordering::Relaxed);
        }
        store
            .stats
            .torn_tails
            .fetch_add(faults.torn_tails, Ordering::Relaxed);
        Ok(store)
    }

    /// Replaces the default in-memory budget (bytes of resident entries
    /// the LRU may hold before evicting).
    #[must_use]
    pub fn with_memory_budget(mut self, bytes: u64) -> Store {
        self.memory_budget = bytes;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a request: exact hit, resumable family prefix, or miss.
    /// Exactly one of `mc.cache.{hits,extends,misses}` is counted per
    /// call.
    pub fn lookup(&self, key: &RequestKey) -> Lookup {
        let hex = key.hash().hex();
        let canon = key.canon();
        let mut inner = self.lock();

        // Tier 1: resident entries.
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.lru.get_mut(&hex) {
            if slot.entry.canon == canon {
                slot.tick = tick;
                let entry = slot.entry.clone();
                drop(inner);
                self.count_hit(&canon);
                return Lookup::Hit(entry);
            }
            // A 128-bit collision: astronomically unlikely, handled
            // anyway — the canon is authoritative, the hash is a name.
        }

        // Tier 2: the segment tier, promoting into the LRU.
        if let Some(entry) = inner.disk.as_ref().and_then(|d| d.get(&hex)) {
            if entry.canon == canon {
                Store::admit(&mut inner, self.memory_budget, &self.stats, &hex, &entry);
                drop(inner);
                self.count_hit(&canon);
                return Lookup::Hit(entry);
            }
        }

        // Tier 3: the family extension index.
        let max_chunks = key.trials / montecarlo::CHUNK_WIDTH;
        if let Some(fam) = inner.families.get(&key.family_hash().hex()) {
            if fam.canon == key.family {
                let usable: Vec<CachedPrefix> = fam
                    .prefixes
                    .iter()
                    .filter(|p| p.chunks <= max_chunks)
                    .cloned()
                    .collect();
                if !usable.is_empty() {
                    drop(inner);
                    self.stats.extends.fetch_add(1, Ordering::Relaxed);
                    telemetry::cache().extends.inc();
                    let best = usable.iter().map(|p| p.chunks).max().unwrap_or(0);
                    obs::flight::event("cache_extend").detail(&canon).n(best).emit();
                    return Lookup::Extend(usable);
                }
            }
        }

        drop(inner);
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::cache().misses.inc();
        obs::flight::event("cache_miss").detail(&canon).emit();
        Lookup::Miss
    }

    /// Inserts a finished run: resident immediately, appended to the
    /// disk tier (if any), and its prefixes merged into the extension
    /// index. A disk append failure is counted and degrades the store to
    /// memory-only; it never surfaces to the caller.
    pub fn insert(&self, key: &RequestKey, report: CachedReport, prefixes: Vec<CachedPrefix>) {
        let hex = key.hash().hex();
        let entry = Entry {
            canon: key.canon(),
            family: key.family.clone(),
            report,
            prefixes,
        };
        let mut inner = self.lock();
        Store::index_family(&mut inner, &entry);
        Store::admit(&mut inner, self.memory_budget, &self.stats, &hex, &entry);
        if let Some(disk) = inner.disk.as_mut() {
            match disk.put(&hex, &entry) {
                Ok(torn) => {
                    self.stats.torn_tails.fetch_add(torn, Ordering::Relaxed);
                }
                Err(e) => {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    telemetry::cache().errors.inc();
                    obs::info!("cache: disk append failed ({e}); continuing memory-only");
                    inner.disk = None;
                }
            }
        }
    }

    /// Rewrites the disk tier down to its live records (one fresh
    /// segment, atomic index swap). A no-op for memory-only stores.
    pub fn compact(&self) {
        let mut inner = self.lock();
        if let Some(disk) = inner.disk.as_mut() {
            let live = disk.read_live();
            if let Err(e) = disk.compact(&live) {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::cache().errors.inc();
                obs::info!("cache: compaction failed ({e}); keeping the old segments");
            } else {
                obs::flight::event("cache_compacted").n(live.len() as u64).emit();
            }
        }
    }

    /// Process-local statistics since this store was created.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            extends: self.stats.extends.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            torn_tails: self.stats.torn_tails.load(Ordering::Relaxed),
        }
    }

    /// Distinct finished results reachable (resident or on disk).
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        match inner.disk.as_ref() {
            Some(d) => d.live_records() as usize,
            None => inner.lru.len(),
        }
    }

    /// Whether no finished result is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn count_hit(&self, canon: &str) {
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        telemetry::cache().hits.inc();
        obs::flight::event("cache_hit").detail(canon).emit();
    }

    /// Admits an entry into the LRU, evicting least-recently-used slots
    /// until the budget holds. Eviction loses nothing durable — the disk
    /// tier (when present) still holds every inserted record.
    fn admit(inner: &mut Inner, budget: u64, stats: &Stats, hex: &str, entry: &Entry) {
        let bytes = serde_json::to_string(entry)
            .expect("Entry serialization is infallible")
            .len() as u64;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.lru.insert(
            hex.to_string(),
            LruSlot {
                entry: entry.clone(),
                bytes,
                tick,
            },
        ) {
            inner.lru_bytes -= old.bytes;
        }
        inner.lru_bytes += bytes;
        while inner.lru_bytes > budget && inner.lru.len() > 1 {
            let Some(victim) = inner
                .lru
                .iter()
                .filter(|(k, _)| k.as_str() != hex)
                .min_by_key(|(_, slot)| slot.tick)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(slot) = inner.lru.remove(&victim) {
                inner.lru_bytes -= slot.bytes;
                stats.evictions.fetch_add(1, Ordering::Relaxed);
                telemetry::cache().evictions.inc();
            }
        }
        telemetry::cache().bytes.set(inner.lru_bytes);
    }

    /// Merges an entry's prefixes into the family index (dedup by chunk
    /// count, later wins), evicting the oldest family past the cap.
    fn index_family(inner: &mut Inner, entry: &Entry) {
        if entry.prefixes.is_empty() {
            return;
        }
        let fam_hex = crate::KeyHash::of(&entry.family).hex();
        if !inner.families.contains_key(&fam_hex) {
            inner.family_order.push(fam_hex.clone());
            inner.families.insert(
                fam_hex.clone(),
                Family {
                    canon: entry.family.clone(),
                    prefixes: Vec::new(),
                },
            );
        }
        let fam = inner.families.get_mut(&fam_hex).expect("present by construction");
        if fam.canon != entry.family {
            return; // hash collision; keep the incumbent
        }
        for p in &entry.prefixes {
            match fam.prefixes.binary_search_by_key(&p.chunks, |q| q.chunks) {
                Ok(i) => fam.prefixes[i] = p.clone(),
                Err(i) => fam.prefixes.insert(i, p.clone()),
            }
        }
        while inner.family_order.len() > MAX_FAMILIES {
            let oldest = inner.family_order.remove(0);
            inner.families.remove(&oldest);
        }
    }
}

/// The process-global store slot. Runner call sites deep inside the core
/// crates consult this instead of threading a handle through every
/// signature (the same pattern as `montecarlo::fault`).
fn slot() -> &'static Mutex<Option<Arc<Store>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Store>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs a store for cache-aware entry points process-wide.
pub fn install(store: Arc<Store>) {
    *slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(store);
}

/// Removes the installed store (subsequent runs compute cold).
pub fn clear() {
    *slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// The installed store, if any.
#[must_use]
pub fn active() -> Option<Arc<Store>> {
    slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::{AccState, BernoulliState};
    use crate::key::KeySpec;
    use crate::KERNEL_VERSION;

    fn spec(seed: u64) -> KeySpec {
        KeySpec {
            kernel: format!("{KERNEL_VERSION}/survival"),
            matrix: ".X..".into(),
            threads_n: 2,
            filler_m: 64,
            p_bits: 0.5f64.to_bits(),
            settle_bits: [0.5f64.to_bits(); 4],
            fence_pass_bits: 0.5f64.to_bits(),
            acquire_fence: false,
            seed,
            chunk_width: montecarlo::CHUNK_WIDTH,
            lanes: 0,
        }
    }

    fn report(successes: u64, trials: u64) -> CachedReport {
        CachedReport {
            value: AccState::Bernoulli(BernoulliState { successes, trials }),
            trials_requested: trials,
            trials_completed: trials,
            converged_early: false,
        }
    }

    fn prefix(chunks: u64) -> CachedPrefix {
        CachedPrefix {
            chunks,
            trials: chunks * montecarlo::CHUNK_WIDTH,
            value: AccState::Bernoulli(BernoulliState {
                successes: chunks,
                trials: chunks * montecarlo::CHUNK_WIDTH,
            }),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmr-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_hits_after_insert() {
        let store = Store::in_memory();
        let key = spec(1).request(8192, None);
        assert_eq!(store.lookup(&key), Lookup::Miss);
        store.insert(&key, report(10, 8192), vec![]);
        match store.lookup(&key) {
            Lookup::Hit(entry) => assert_eq!(entry.report, report(10, 8192)),
            other => panic!("expected a hit, got {other:?}"),
        }
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn family_prefixes_serve_larger_requests() {
        let store = Store::in_memory();
        let small = spec(2).request(4 * montecarlo::CHUNK_WIDTH, None);
        store.insert(&small, report(7, small.trials), vec![prefix(4)]);
        // Larger request, same family: no exact hit, but an extension.
        let big = spec(2).request(16 * montecarlo::CHUNK_WIDTH, None);
        match store.lookup(&big) {
            Lookup::Extend(ps) => assert_eq!(ps, vec![prefix(4)]),
            other => panic!("expected an extension, got {other:?}"),
        }
        // Smaller than any prefix: miss, never a too-big prefix.
        let tiny = spec(2).request(2 * montecarlo::CHUNK_WIDTH, None);
        assert_eq!(store.lookup(&tiny), Lookup::Miss);
        assert_eq!(store.stats().extends, 1);
    }

    #[test]
    fn rse_requests_share_the_family_index() {
        let store = Store::in_memory();
        let plain = spec(3).request(8 * montecarlo::CHUNK_WIDTH, None);
        store.insert(&plain, report(9, plain.trials), vec![prefix(4), prefix(8)]);
        let rse = spec(3).request(8 * montecarlo::CHUNK_WIDTH, Some(0.01));
        match store.lookup(&rse) {
            Lookup::Extend(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected an extension, got {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_to_budget_and_counts() {
        let store = Store::in_memory().with_memory_budget(1); // absurd: 1 byte
        let a = spec(10).request(4096, None);
        let b = spec(11).request(4096, None);
        store.insert(&a, report(1, 4096), vec![]);
        store.insert(&b, report(2, 4096), vec![]);
        assert!(store.stats().evictions >= 1);
        // The newest insert survives even over budget (the LRU never
        // evicts the entry it just admitted down to empty).
        match store.lookup(&b) {
            Lookup::Hit(_) => {}
            other => panic!("expected the newest entry resident, got {other:?}"),
        }
    }

    #[test]
    fn disk_store_round_trips_and_reopens() {
        let dir = tmp_dir("reopen");
        let key = spec(4).request(8192, None);
        {
            let store = Store::open(&dir).unwrap();
            store.insert(&key, report(3, 8192), vec![prefix(2)]);
        }
        let store = Store::open(&dir).unwrap();
        match store.lookup(&key) {
            Lookup::Hit(entry) => {
                assert_eq!(entry.report, report(3, 8192));
                assert_eq!(entry.prefixes, vec![prefix(2)]);
            }
            other => panic!("expected a reopened hit, got {other:?}"),
        }
        // The family index was rebuilt from disk too.
        let big = spec(4).request(64 * montecarlo::CHUNK_WIDTH, None);
        assert!(matches!(store.lookup(&big), Lookup::Extend(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_loses_nothing_when_disk_backed() {
        let dir = tmp_dir("evict-disk");
        let store = Store::open(&dir).unwrap().with_memory_budget(1);
        let a = spec(20).request(4096, None);
        let b = spec(21).request(4096, None);
        store.insert(&a, report(1, 4096), vec![]);
        store.insert(&b, report(2, 4096), vec![]);
        assert!(store.stats().evictions >= 1);
        for key in [&a, &b] {
            assert!(
                matches!(store.lookup(key), Lookup::Hit(_)),
                "evicted entries are still served from disk"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_on_a_file_path_is_a_typed_error() {
        let dir = tmp_dir("notdir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a-file");
        std::fs::write(&path, "x").unwrap();
        let err = Store::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn install_clear_active_round_trip() {
        // Guarded by the global slot being process-wide: leave it clean.
        let store = Arc::new(Store::in_memory());
        install(Arc::clone(&store));
        assert!(active().is_some());
        clear();
        assert!(active().is_none());
    }
}
