//! Bit-exact serializable accumulator state and the cached-entry records.
//!
//! The cache stores merged runner accumulators, so a warm lookup must
//! reconstruct *the same value*, not a numerically-close one. Integers
//! round-trip trivially; Welford's floats are stored as IEEE-754 bit
//! patterns (`u64`), never as formatted decimals, because Chan's merge is
//! not associative and a reconstructed accumulator has to re-enter the
//! fold exactly where the producing run left it.

use montecarlo::{BernoulliEstimate, ChunkPrefix, Histogram, RunReport, Welford};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Serialized [`BernoulliEstimate`]: plain counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BernoulliState {
    /// Successes.
    pub successes: u64,
    /// Trials.
    pub trials: u64,
}

/// Serialized [`Welford`]: count plus both floats as bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeanState {
    /// Observation count.
    pub count: u64,
    /// Mean, as IEEE-754 bits.
    pub mean_bits: u64,
    /// Sum of squared deviations, as IEEE-754 bits.
    pub m2_bits: u64,
}

/// Serialized [`Histogram`]: the dense counts (total is recomputed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistState {
    /// Per-value counts, densely indexed from zero.
    pub counts: Vec<u64>,
}

/// One runner accumulator in serializable form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccState {
    /// A Bernoulli success/trial estimate.
    Bernoulli(BernoulliState),
    /// A Welford mean/variance accumulator.
    Mean(MeanState),
    /// A dense integer histogram.
    Hist(HistState),
}

/// Bit-exact round-tripping between a runner accumulator and [`AccState`].
pub trait CacheableAcc: Sized {
    /// Serializes the accumulator.
    fn to_state(&self) -> AccState;
    /// Rebuilds the accumulator; `None` when the state is a different
    /// accumulator kind (a corrupt or mismatched cache record).
    fn from_state(state: &AccState) -> Option<Self>;
}

impl CacheableAcc for BernoulliEstimate {
    fn to_state(&self) -> AccState {
        AccState::Bernoulli(BernoulliState {
            successes: self.successes(),
            trials: self.trials(),
        })
    }

    fn from_state(state: &AccState) -> Option<BernoulliEstimate> {
        match state {
            AccState::Bernoulli(s) if s.successes <= s.trials => {
                Some(BernoulliEstimate::from_counts(s.successes, s.trials))
            }
            _ => None,
        }
    }
}

impl CacheableAcc for Welford {
    fn to_state(&self) -> AccState {
        let (count, mean_bits, m2_bits) = self.raw_parts();
        AccState::Mean(MeanState {
            count,
            mean_bits,
            m2_bits,
        })
    }

    fn from_state(state: &AccState) -> Option<Welford> {
        match state {
            AccState::Mean(s) => Some(Welford::from_raw_parts(s.count, s.mean_bits, s.m2_bits)),
            _ => None,
        }
    }
}

impl CacheableAcc for Histogram {
    fn to_state(&self) -> AccState {
        AccState::Hist(HistState {
            counts: self.dense_counts().to_vec(),
        })
    }

    fn from_state(state: &AccState) -> Option<Histogram> {
        match state {
            AccState::Hist(s) => Some(Histogram::from_dense_counts(s.counts.clone())),
            _ => None,
        }
    }
}

/// A cached whole-chunk prefix ([`ChunkPrefix`] in serializable form).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedPrefix {
    /// Whole chunks merged into `value`.
    pub chunks: u64,
    /// Trials merged into `value` (`chunks * CHUNK_WIDTH`).
    pub trials: u64,
    /// The merged accumulator.
    pub value: AccState,
}

impl CachedPrefix {
    /// Serializes a runner prefix.
    #[must_use]
    pub fn from_prefix<A: CacheableAcc>(prefix: &ChunkPrefix<A>) -> CachedPrefix {
        CachedPrefix {
            chunks: prefix.chunks,
            trials: prefix.trials,
            value: prefix.value.to_state(),
        }
    }

    /// Rebuilds a runner prefix; `None` on an accumulator-kind mismatch
    /// or an inconsistent chunk/trial pair.
    #[must_use]
    pub fn to_prefix<A: CacheableAcc>(&self) -> Option<ChunkPrefix<A>> {
        if self.trials != self.chunks * montecarlo::CHUNK_WIDTH {
            return None;
        }
        Some(ChunkPrefix {
            chunks: self.chunks,
            trials: self.trials,
            value: A::from_state(&self.value)?,
        })
    }
}

/// A finished run's deterministic outcome — everything a warm lookup
/// needs to reproduce the producing [`RunReport`] bit for bit.
///
/// Only *clean* runs are cached (not truncated, not degraded, nothing
/// abandoned), so those flags are not stored: reconstruction always
/// reports the canonical fault-free run. `retried_chunks` is likewise
/// pinned to zero — a retried chunk replays its exact stream, so the
/// value is identical to the fault-free run's and the cache serves the
/// canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedReport {
    /// The merged accumulator over all completed trials.
    pub value: AccState,
    /// Trials the producing run was asked for.
    pub trials_requested: u64,
    /// Trials that contributed to `value`.
    pub trials_completed: u64,
    /// Whether a `with_target_rse` target stopped the run early.
    pub converged_early: bool,
}

impl CachedReport {
    /// Serializes a clean run report. Returns `None` for reports the
    /// cache must not store: truncated or degraded runs are partial,
    /// timing-dependent estimates, not pure functions of the key.
    #[must_use]
    pub fn from_report<A: CacheableAcc>(report: &RunReport<A>) -> Option<CachedReport> {
        if report.truncated || report.degraded || report.abandoned_chunks > 0 {
            return None;
        }
        Some(CachedReport {
            value: report.value.to_state(),
            trials_requested: report.trials_requested,
            trials_completed: report.trials_completed,
            converged_early: report.converged_early,
        })
    }

    /// Reconstructs the canonical fault-free [`RunReport`]; `None` on an
    /// accumulator-kind mismatch.
    #[must_use]
    pub fn to_report<A: CacheableAcc>(&self) -> Option<RunReport<A>> {
        Some(RunReport {
            value: A::from_state(&self.value)?,
            trials_requested: self.trials_requested,
            trials_completed: self.trials_completed,
            truncated: false,
            retried_chunks: 0,
            converged_early: self.converged_early,
            degraded: false,
            abandoned_chunks: 0,
            elapsed: Duration::ZERO,
        })
    }
}

/// One cache entry: the full canonical strings (collision guard — the
/// 128-bit content address names the entry, the canon verifies it), the
/// finished report, and the chunk prefixes later runs can extend.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// Canonical request string ([`crate::RequestKey::canon`]).
    pub canon: String,
    /// Canonical family string (the extension index key).
    pub family: String,
    /// The finished result.
    pub report: CachedReport,
    /// Whole-chunk prefixes captured by the producing run, ascending.
    pub prefixes: Vec<CachedPrefix>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_roundtrips() {
        let est = BernoulliEstimate::from_counts(123, 4567);
        let back = BernoulliEstimate::from_state(&est.to_state()).unwrap();
        assert_eq!(back, est);
    }

    #[test]
    fn welford_roundtrips_bit_exactly() {
        let mut w = Welford::new();
        for x in [0.1, 0.7, -3.25, 1e-17, 2.5e8] {
            w.record(x);
        }
        let back = Welford::from_state(&w.to_state()).unwrap();
        assert_eq!(back.raw_parts(), w.raw_parts());
    }

    #[test]
    fn histogram_roundtrips() {
        let h: Histogram = [0u64, 2, 2, 7, 2].into_iter().collect();
        let back = Histogram::from_state(&h.to_state()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn kind_mismatch_is_none_not_garbage() {
        let est = BernoulliEstimate::from_counts(1, 2);
        assert!(Welford::from_state(&est.to_state()).is_none());
        assert!(Histogram::from_state(&est.to_state()).is_none());
    }

    #[test]
    fn json_roundtrip_through_the_shim() {
        let entry = Entry {
            canon: "mmrk1|…|trials=100|rse=-".into(),
            family: "mmrk1|…".into(),
            report: CachedReport {
                value: AccState::Mean(MeanState {
                    count: 9,
                    mean_bits: 0.30000000000000004f64.to_bits(),
                    m2_bits: (-0.0f64).to_bits(),
                }),
                trials_requested: 100,
                trials_completed: 100,
                converged_early: false,
            },
            prefixes: vec![CachedPrefix {
                chunks: 4,
                trials: 4 * montecarlo::CHUNK_WIDTH,
                value: AccState::Hist(HistState {
                    counts: vec![1, 0, 3],
                }),
            }],
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: Entry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn dirty_reports_are_refused() {
        let report = RunReport {
            value: BernoulliEstimate::from_counts(1, 10),
            trials_requested: 100,
            trials_completed: 10,
            truncated: true,
            retried_chunks: 0,
            converged_early: false,
            degraded: false,
            abandoned_chunks: 0,
            elapsed: Duration::ZERO,
        };
        assert!(CachedReport::from_report(&report).is_none());
    }
}
