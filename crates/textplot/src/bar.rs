//! Labelled horizontal bar charts.

use std::fmt::Write as _;

/// A horizontal bar chart with one labelled row per entry.
///
/// # Example
///
/// ```
/// use textplot::BarChart;
///
/// let mut b = BarChart::new(20);
/// b.bar("SC", 0.1666).bar("WO", 0.1296);
/// let out = b.render();
/// assert!(out.lines().count() == 2);
/// assert!(out.contains("SC"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BarChart {
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// A bar chart whose longest bar spans `width` characters (minimum 1).
    #[must_use]
    pub fn new(width: usize) -> BarChart {
        BarChart {
            width: width.max(1),
            bars: Vec::new(),
        }
    }

    /// Appends a labelled bar (builder style). Negative values clamp to 0.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut BarChart {
        self.bars.push((label.into(), value.max(0.0)));
        self
    }

    /// Renders the chart; bars scale relative to the maximum value.
    #[must_use]
    pub fn render(&self) -> String {
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for (label, value) in &self.bars {
            let filled = ((value / max) * self.width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:<label_w$} |{}{} {value:.6}",
                "█".repeat(filled),
                " ".repeat(self.width - filled),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_bar_fills_width() {
        let mut b = BarChart::new(10);
        b.bar("big", 2.0).bar("half", 1.0);
        let out = b.render();
        let big = out.lines().next().unwrap();
        let half = out.lines().nth(1).unwrap();
        assert_eq!(big.matches('█').count(), 10);
        assert_eq!(half.matches('█').count(), 5);
    }

    #[test]
    fn empty_chart_renders_nothing() {
        assert_eq!(BarChart::new(10).render(), "");
    }

    #[test]
    fn zero_and_negative_values_are_flat() {
        let mut b = BarChart::new(8);
        b.bar("zero", 0.0).bar("neg", -3.0).bar("one", 1.0);
        let out = b.render();
        assert_eq!(out.lines().next().unwrap().matches('█').count(), 0);
        assert_eq!(out.lines().nth(1).unwrap().matches('█').count(), 0);
    }

    #[test]
    fn labels_align() {
        let mut b = BarChart::new(4);
        b.bar("a", 1.0).bar("abc", 1.0);
        let out = b.render();
        let pipes: Vec<usize> = out.lines().map(|l| l.find('|').unwrap()).collect();
        assert_eq!(pipes[0], pipes[1]);
    }
}
