//! Dependency-free ASCII and SVG chart rendering.
//!
//! The offline crate allowlist contains no plotting library (the
//! `repro_why` note for this reproduction calls out the "less convenient
//! numeric plotting ecosystem"), so this small substrate renders the
//! paper's figures and the experiment sweeps as monospace text — and,
//! optionally, standalone SVG — suitable for terminals, logs, and
//! `EXPERIMENTS.md`.
//!
//! * [`Chart`] — multi-series scatter/line charts with axes and legends;
//! * [`BarChart`] — labelled horizontal bars;
//! * [`Heatmap`] — two-parameter sweep grids;
//! * [`Table`] — aligned text tables;
//! * [`sparkline`] — one-line distribution summaries;
//! * [`svg`] — SVG export of a [`Chart`].
//!
//! # Example
//!
//! ```
//! use textplot::Chart;
//!
//! let mut chart = Chart::new(40, 10);
//! chart.series("x^2", (0..10).map(|x| (x as f64, (x * x) as f64)));
//! let text = chart.render();
//! assert!(text.contains("x^2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bar;
mod chart;
mod heatmap;
mod spark;
pub mod svg;
mod table;

pub use bar::BarChart;
pub use chart::Chart;
pub use heatmap::Heatmap;
pub use spark::sparkline;
pub use table::Table;
