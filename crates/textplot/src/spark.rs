//! One-line sparklines.

const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders values as a one-line sparkline, scaled to the data range.
///
/// Non-finite values render as spaces; an empty slice yields an empty
/// string.
///
/// # Example
///
/// ```
/// let s = textplot::sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// assert!(s.ends_with('█'));
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        // No scale to draw against: every slot renders blank.
        return values.iter().map(|_| ' ').collect();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = if max > min { max - min } else { 1.0 };
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return ' ';
            }
            let level = ((v - min) / range * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[level.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN]), " ");
    }

    #[test]
    fn monotone_data_is_monotone_glyphs() {
        let s: Vec<char> = sparkline(&[1.0, 2.0, 3.0, 4.0]).chars().collect();
        let ranks: Vec<usize> = s
            .iter()
            .map(|c| LEVELS.iter().position(|l| l == c).unwrap())
            .collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*ranks.first().unwrap(), 0);
        assert_eq!(*ranks.last().unwrap(), LEVELS.len() - 1);
    }

    #[test]
    fn constant_data_is_flat() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        let first = s.chars().next().unwrap();
        assert!(s.chars().all(|c| c == first));
    }

    #[test]
    fn nan_becomes_space_without_skew() {
        let s: Vec<char> = sparkline(&[0.0, f64::NAN, 1.0]).chars().collect();
        assert_eq!(s[1], ' ');
        assert_eq!(s[0], LEVELS[0]);
        assert_eq!(s[2], LEVELS[7]);
    }
}
