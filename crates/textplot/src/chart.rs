//! Multi-series ASCII charts.

use std::fmt::Write as _;

/// Marker glyphs assigned to series in order.
const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

/// A multi-series scatter chart rendered as monospace text.
///
/// Points are plotted with per-series markers on a `width`×`height`
/// character grid, framed by axes annotated with the data ranges, followed
/// by a legend.
///
/// # Example
///
/// ```
/// use textplot::Chart;
///
/// let mut c = Chart::new(30, 8);
/// c.series("a", vec![(0.0, 0.0), (1.0, 1.0)]);
/// c.series("b", vec![(0.0, 1.0), (1.0, 0.0)]);
/// let out = c.render();
/// assert!(out.contains("a") && out.contains("b"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    width: usize,
    height: usize,
    series: Vec<Series>,
    log_y: bool,
    title: Option<String>,
}

impl Chart {
    /// A chart with the given plot-area size in characters (minimum 2×2).
    #[must_use]
    pub fn new(width: usize, height: usize) -> Chart {
        Chart {
            width: width.max(2),
            height: height.max(2),
            series: Vec::new(),
            log_y: false,
            title: None,
        }
    }

    /// Sets a title line.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Chart {
        self.title = Some(title.into());
        self
    }

    /// Plots `y` on a log₁₀ scale (non-positive values are dropped).
    pub fn log_y(&mut self) -> &mut Chart {
        self.log_y = true;
        self
    }

    /// Adds a named series.
    pub fn series(
        &mut self,
        name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> &mut Chart {
        self.series.push(Series {
            name: name.into(),
            points: points.into_iter().collect(),
        });
        self
    }

    /// Renders the chart.
    ///
    /// Empty charts (no finite points) render as a note rather than
    /// panicking.
    #[must_use]
    pub fn render(&self) -> String {
        let transform = |&(x, y): &(f64, f64)| -> Option<(f64, f64)> {
            let y = if self.log_y {
                if y <= 0.0 {
                    return None;
                }
                y.log10()
            } else {
                y
            };
            (x.is_finite() && y.is_finite()).then_some((x, y))
        };
        let pts: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, s)| {
                s.points
                    .iter()
                    .filter_map(transform)
                    .map(move |(x, y)| (si, x, y))
            })
            .collect();
        if pts.is_empty() {
            return String::from("(empty chart)\n");
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in &pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        if xmax == xmin {
            xmax = xmin + 1.0;
        }
        if ymax == ymin {
            ymax = ymin + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let cx = ((x - xmin) / (xmax - xmin) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            grid[row][cx] = MARKERS[si % MARKERS.len()];
        }

        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let ylab = |v: f64| {
            if self.log_y {
                format!("1e{v:.1}")
            } else {
                format!("{v:.4}")
            }
        };
        let top = ylab(ymax);
        let bottom = ylab(ymin);
        let label_w = top.len().max(bottom.len());
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                top.clone()
            } else if i == self.height - 1 {
                bottom.clone()
            } else {
                String::new()
            };
            let _ = writeln!(out, "{label:>label_w$} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "{:>label_w$} +{}",
            "",
            "-".repeat(self.width)
        );
        let _ = writeln!(
            out,
            "{:>label_w$}  {:<w2$}{:>w2$}",
            "",
            format!("{xmin:.3}"),
            format!("{xmax:.3}"),
            w2 = self.width / 2
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", MARKERS[si % MARKERS.len()], s.name);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chart_is_graceful() {
        assert_eq!(Chart::new(10, 5).render(), "(empty chart)\n");
        let mut c = Chart::new(10, 5);
        c.series("nan", vec![(f64::NAN, 1.0)]);
        assert_eq!(c.render(), "(empty chart)\n");
    }

    #[test]
    fn extremes_land_on_corners() {
        let mut c = Chart::new(11, 5);
        c.series("s", vec![(0.0, 0.0), (10.0, 4.0)]);
        let out = c.render();
        let rows: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 5);
        // Max point at top-right, min at bottom-left of the plot area.
        assert_eq!(rows[0].chars().last().unwrap(), '*');
        let bottom_plot = rows[4].split('|').nth(1).unwrap();
        assert_eq!(bottom_plot.chars().next().unwrap(), '*');
    }

    #[test]
    fn legend_lists_all_series_with_distinct_markers() {
        let mut c = Chart::new(10, 4);
        c.series("alpha", vec![(0.0, 0.0)]);
        c.series("beta", vec![(1.0, 1.0)]);
        let out = c.render();
        assert!(out.contains("* alpha"));
        assert!(out.contains("o beta"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let mut c = Chart::new(10, 4);
        c.log_y().series("s", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 100.0)]);
        let out = c.render();
        // Only the two positive points plot; axis labels show exponents.
        assert!(out.contains("1e2.0"));
        assert!(out.contains("1e1.0"));
    }

    #[test]
    fn title_is_first_line() {
        let mut c = Chart::new(10, 4);
        c.title("Figure 9").series("s", vec![(0.0, 1.0)]);
        assert!(c.render().starts_with("Figure 9\n"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let mut c = Chart::new(10, 4);
        c.series("point", vec![(3.0, 3.0), (3.0, 3.0)]);
        let out = c.render();
        assert!(out.contains('*'));
    }
}
