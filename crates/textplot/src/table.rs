//! Aligned text tables.

use std::fmt::Write as _;

/// A simple aligned table: a header row plus data rows, columns padded to
/// the widest cell.
///
/// # Example
///
/// ```
/// use textplot::Table;
///
/// let mut t = Table::new(vec!["model", "Pr[A]"]);
/// t.row(vec!["SC".into(), "0.1667".into()]);
/// t.row(vec!["WO".into(), "0.1296".into()]);
/// let out = t.render();
/// assert_eq!(out.lines().count(), 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<impl Into<String>>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: a row of displayable values.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Table {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a rule under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{cell:<w$}{sep}", w = widths[i]);
            }
        };
        emit(&mut out, &self.header);
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        emit(&mut out, &rule);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["wiiiiiiide".into(), "x".into()]);
        t.row(vec!["y".into(), "z".into()]);
        let out = t.render();
        assert_eq!(out.lines().count(), 4);
        // The second column starts at the same byte offset on every line:
        // first-column width (10) plus the two-space separator.
        let col2_start = "wiiiiiiide".len() + 2;
        let seconds: Vec<&str> = out.lines().map(|l| &l[col2_start..]).collect();
        assert_eq!(seconds[0].trim_end(), "long-header");
        assert_eq!(seconds[2].trim_end(), "x");
        assert_eq!(seconds[3].trim_end(), "z");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["one"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn row_display_formats_values() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row_display(&[&2, &0.25]);
        assert!(t.render().contains("0.25"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn header_only_renders_rule() {
        let t = Table::new(vec!["x"]);
        let out = t.render();
        assert_eq!(out.lines().count(), 2);
        assert!(t.is_empty());
    }
}
