//! Grid heatmaps for two-parameter sweeps.

use std::fmt::Write as _;

/// Shade ramp from low to high.
const RAMP: [char; 10] = [' ', '·', ':', '-', '=', '+', '*', '#', '%', '@'];

/// A labelled 2-D heatmap over a dense value grid.
///
/// Rows and columns carry numeric labels; cell values map linearly onto a
/// ten-step character ramp, with the scale printed underneath.
///
/// # Example
///
/// ```
/// use textplot::Heatmap;
///
/// let mut h = Heatmap::new(vec![0.1, 0.5, 0.9], vec![0.1, 0.5, 0.9]);
/// for (i, row) in [[0.0, 0.1, 0.2], [0.3, 0.4, 0.5], [0.6, 0.7, 0.9]].iter().enumerate() {
///     for (j, &v) in row.iter().enumerate() {
///         h.set(i, j, v);
///     }
/// }
/// let out = h.render();
/// assert!(out.contains('@'));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    row_labels: Vec<f64>,
    col_labels: Vec<f64>,
    values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// An empty heatmap with the given axis labels (rows × columns).
    #[must_use]
    pub fn new(row_labels: Vec<f64>, col_labels: Vec<f64>) -> Heatmap {
        let values = vec![vec![f64::NAN; col_labels.len()]; row_labels.len()];
        Heatmap {
            row_labels,
            col_labels,
            values,
        }
    }

    /// Sets cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) -> &mut Heatmap {
        self.values[row][col] = value;
        self
    }

    /// Renders the grid with labels and a scale legend.
    #[must_use]
    pub fn render(&self) -> String {
        let finite: Vec<f64> = self
            .values
            .iter()
            .flatten()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        let (min, max) = finite.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        let range = if max > min { max - min } else { 1.0 };
        let shade = |v: f64| -> char {
            if !v.is_finite() {
                return '?';
            }
            let level = ((v - min) / range * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[level.min(RAMP.len() - 1)]
        };
        let mut out = String::new();
        let _ = write!(out, "{:>7} ", "");
        for c in &self.col_labels {
            let _ = write!(out, "{c:>6.2}");
        }
        out.push('\n');
        for (r, row) in self.values.iter().enumerate() {
            let _ = write!(out, "{:>7.2} ", self.row_labels[r]);
            for &v in row {
                let ch = shade(v);
                let _ = write!(out, "{:>6}", format!("{ch}{ch}{ch}"));
            }
            out.push('\n');
        }
        if !finite.is_empty() {
            let _ = writeln!(
                out,
                "scale: '{}' = {min:.4}  ..  '{}' = {max:.4}",
                RAMP[0], RAMP[RAMP.len() - 1]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_use_ramp_ends() {
        let mut h = Heatmap::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        h.set(0, 0, 0.0).set(0, 1, 1.0).set(1, 0, 0.5).set(1, 1, 0.25);
        let out = h.render();
        assert!(out.contains("@@@"));
        assert!(out.contains("scale:"));
    }

    #[test]
    fn missing_cells_render_question_marks() {
        let mut h = Heatmap::new(vec![0.0], vec![0.0, 1.0]);
        h.set(0, 0, 3.0);
        let out = h.render();
        assert!(out.contains('?'));
    }

    #[test]
    fn constant_grid_does_not_divide_by_zero() {
        let mut h = Heatmap::new(vec![1.0, 2.0], vec![1.0]);
        h.set(0, 0, 5.0).set(1, 0, 5.0);
        let out = h.render();
        assert!(out.contains("5.0000"));
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut h = Heatmap::new(vec![0.0], vec![0.0]);
        h.set(1, 0, 1.0);
    }
}
