//! Minimal SVG export for line charts.

use std::fmt::Write as _;

/// Series colours cycled in order.
const COLORS: [&str; 6] = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"];

/// Renders named series as a standalone SVG line chart.
///
/// Axis ranges are data-driven; each series draws as a polyline with a
/// small legend in the top-right corner. Returns a complete `<svg>`
/// document.
///
/// # Example
///
/// ```
/// let svg = textplot::svg::line_chart(
///     "survival vs n",
///     &[("SC", vec![(2.0, 0.1666), (3.0, 0.01)])],
///     480,
///     320,
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
#[must_use]
pub fn line_chart(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: u32,
    height: u32,
) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, p)| p.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if pts.is_empty() {
        xmin = 0.0;
        xmax = 1.0;
        ymin = 0.0;
        ymax = 1.0;
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    let margin = 48.0;
    let (w, h) = (f64::from(width), f64::from(height));
    let sx = |x: f64| margin + (x - xmin) / (xmax - xmin) * (w - 2.0 * margin);
    let sy = |y: f64| h - margin - (y - ymin) / (ymax - ymin) * (h - 2.0 * margin);

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        out,
        r#"<text x="{}" y="20" text-anchor="middle" font-family="monospace" font-size="14">{}</text>"#,
        w / 2.0,
        escape(title)
    );
    // Axes.
    let _ = write!(
        out,
        r#"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="black"/>"#,
        m = margin,
        b = h - margin,
        r = w - margin,
        t = margin,
    );
    // Range labels.
    let _ = write!(
        out,
        r#"<text x="{m}" y="{by}" font-family="monospace" font-size="10">{xmin:.3}</text><text x="{rx}" y="{by}" text-anchor="end" font-family="monospace" font-size="10">{xmax:.3}</text><text x="4" y="{ty}" font-family="monospace" font-size="10">{ymax:.3}</text><text x="4" y="{byy}" font-family="monospace" font-size="10">{ymin:.3}</text>"#,
        m = margin,
        by = h - margin + 14.0,
        rx = w - margin,
        ty = margin + 4.0,
        byy = h - margin,
    );
    for (i, (name, points)) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let coords: Vec<String> = points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
            .collect();
        let _ = write!(
            out,
            r#"<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{}"/>"#,
            coords.join(" ")
        );
        let ly = margin + 14.0 * i as f64;
        let _ = write!(
            out,
            r#"<text x="{}" y="{ly}" text-anchor="end" font-family="monospace" font-size="11" fill="{color}">{}</text>"#,
            w - margin - 4.0,
            escape(name)
        );
    }
    out.push_str("</svg>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_wellformed_document() {
        let svg = line_chart("t", &[("s", vec![(0.0, 0.0), (1.0, 1.0)])], 200, 100);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 1);
    }

    #[test]
    fn empty_series_still_renders_frame() {
        let svg = line_chart("empty", &[], 200, 100);
        assert!(svg.contains("<line"));
        assert!(!svg.contains("polyline"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = line_chart("a < b & c", &[], 200, 100);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn one_polyline_per_series() {
        let svg = line_chart(
            "t",
            &[
                ("a", vec![(0.0, 0.0)]),
                ("b", vec![(1.0, 1.0)]),
                ("c", vec![(2.0, 2.0)]),
            ],
            200,
            100,
        );
        assert_eq!(svg.matches("<polyline").count(), 3);
    }
}
