//! Benchmarks the big-rational substrate on the paper's actual workloads:
//! the Theorem 5.1 prefactor and the exact SC survival at growing `n`.

use analytic::bigq::{BigRational, BigUint};
use analytic::shift_law;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_biguint(c: &mut Criterion) {
    let mut group = c.benchmark_group("biguint");
    for bits in [256usize, 2048, 8192] {
        let a = BigUint::two_pow(bits);
        let b = &a - &BigUint::one();
        group.bench_with_input(BenchmarkId::new("mul", bits), &bits, |bch, _| {
            bch.iter(|| black_box(&a * &b));
        });
        group.bench_with_input(BenchmarkId::new("div_rem", bits), &bits, |bch, _| {
            let d = BigUint::two_pow(bits / 2 + 1);
            bch.iter(|| black_box(a.div_rem(&d)));
        });
        group.bench_with_input(BenchmarkId::new("gcd", bits), &bits, |bch, _| {
            let x = &(&a * &BigUint::from(12345u64)) + &BigUint::from(6u64);
            let y = &(&b * &BigUint::from(54321u64)) + &BigUint::from(9u64);
            bch.iter(|| black_box(x.gcd(&y)));
        });
    }
    group.finish();
}

fn bench_paper_constants(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_constants");
    for n in [8u32, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("prefactor", n), &n, |b, &n| {
            b.iter(|| black_box(shift_law::prefactor_exact(n)));
        });
        group.bench_with_input(BenchmarkId::new("sc_survival", n), &n, |b, &n| {
            b.iter(|| black_box(shift_law::survival_identical_segments_exact(n, 2)));
        });
    }
    group.bench_function("c_64_exact", |b| {
        b.iter(|| black_box(shift_law::c_n_exact(64)));
    });
    group.bench_function("ratio_arithmetic_chain", |b| {
        let x = BigRational::ratio(58, 441);
        let y = BigRational::ratio(1, 189);
        b.iter(|| {
            let s = &x + &y;
            let p = &s * &x;
            black_box(&p / &y)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_biguint, bench_paper_constants);
criterion_main!(benches);
