//! Benchmarks the two evaluation paths for the Theorem 4.1 window laws:
//! Monte-Carlo settling vs the analytic partition series (DESIGN.md
//! ablation 1).

use analytic::general::{GeneralWindowLaws, Params};
use analytic::window_law::{PsoLaw, TsoLaw};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use progmodel::ProgramGenerator;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use settle::Settler;
use std::hint::black_box;

fn bench_settle(c: &mut Criterion) {
    let mut group = c.benchmark_group("settle_one_program");
    for model in MemoryModel::NAMED {
        for m in [16usize, 64, 256] {
            group.bench_with_input(
                BenchmarkId::new(model.short_name(), m),
                &m,
                |b, &m| {
                    let settler = Settler::for_model(model);
                    let mut rng = SmallRng::seed_from_u64(1);
                    let program = ProgramGenerator::new(m).generate(&mut rng);
                    b.iter(|| black_box(settler.sample_gamma(&program, &mut rng)));
                },
            );
        }
    }
    group.finish();
}

fn bench_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_law_series");
    for depth in [48u32, 96, 192] {
        group.bench_with_input(BenchmarkId::new("tso_law", depth), &depth, |b, &d| {
            b.iter(|| black_box(TsoLaw::with_depth(d, 64)));
        });
    }
    group.bench_function("pso_from_tso_96", |b| {
        let tso = TsoLaw::new();
        b.iter(|| black_box(PsoLaw::from_tso(&tso)));
    });
    group.bench_function("general_laws_canonical", |b| {
        b.iter(|| black_box(GeneralWindowLaws::new(Params::canonical())));
    });
    group.bench_function("general_laws_off_canonical", |b| {
        let params = Params::new(0.3, 0.7, 0.5).expect("valid");
        b.iter(|| black_box(GeneralWindowLaws::new(params)));
    });
    group.finish();
}

criterion_group!(benches, bench_settle, bench_series);
criterion_main!(benches);
