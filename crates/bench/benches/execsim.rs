//! Benchmarks the operational simulator: cycles-to-quiescence cost per
//! model and core count (DESIGN.md ablation 5's machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use execsim::{increment_workload, Machine, SimParams};
use memmodel::MemoryModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_run");
    for model in MemoryModel::NAMED {
        for n in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(model.short_name(), n),
                &n,
                |b, &n| {
                    let mut rng = SmallRng::seed_from_u64(7);
                    b.iter(|| {
                        let programs = increment_workload(n, 8, &mut rng);
                        let mut machine =
                            Machine::new(programs, SimParams::for_model(model), &mut rng);
                        black_box(machine.run(&mut rng).expect("quiesces"))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("increment_workload_16x32", |b| {
        let mut rng = SmallRng::seed_from_u64(8);
        b.iter(|| black_box(increment_workload(16, 32, &mut rng)));
    });
}

criterion_group!(benches, bench_machine, bench_workload_generation);
criterion_main!(benches);
