//! DESIGN.md ablation 3: direct Monte-Carlo survival estimation vs the
//! Rao-Blackwellised (Theorem 6.1) estimator — same target, wildly
//! different sample-efficiency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use std::hint::black_box;

const TRIALS: u64 = 2_000;

fn bench_direct_vs_rb(c: &mut Criterion) {
    let mut group = c.benchmark_group("survival_estimators");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            let rm = ReliabilityModel::new(MemoryModel::Tso, n);
            b.iter(|| black_box(rm.simulate_survival(TRIALS, 5)));
        });
        group.bench_with_input(BenchmarkId::new("rao_blackwell", n), &n, |b, &n| {
            let rm = ReliabilityModel::new(MemoryModel::Tso, n);
            b.iter(|| black_box(rm.estimate_survival_rb(TRIALS, 5)));
        });
    }
    // RB keeps working where direct estimation returns all-zero counts.
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("rao_blackwell_large", n), &n, |b, &n| {
            let rm = ReliabilityModel::new(MemoryModel::Wo, n);
            b.iter(|| black_box(rm.estimate_survival_rb(TRIALS / 4, 6)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_direct_vs_rb);
criterion_main!(benches);
