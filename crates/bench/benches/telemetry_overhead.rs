//! Benchmarks the cost of telemetry on the pool-dispatched `joined_mt`
//! pipeline: the identical seeded batch with metric recording on vs. off.
//!
//! Instrumentation is chunk-granular (one histogram record and a handful
//! of relaxed counter ops per 4096 trials), so the two arms should be
//! statistically indistinguishable; the bench exists to catch any future
//! change that sneaks per-trial work into the recording path. The
//! compile-time-disabled build (`montecarlo --no-default-features`)
//! removes even the recording-off residue (one relaxed load per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use montecarlo::{Runner, Seed};
use std::hint::black_box;

/// The `joined_mt` batch from `experiments bench`: the end-to-end survival
/// kernel through the persistent pool.
fn joined_mt_successes(trials: u64, seed: u64, threads: usize) -> u64 {
    let rm = ReliabilityModel::new(MemoryModel::Tso, 2);
    Runner::new(Seed(seed))
        .with_threads(threads)
        .bernoulli_scratch(
            trials,
            move || rm.scratch(),
            move |scratch, rng| rm.simulate_survival_once_scratch(scratch, rng),
        )
        .successes()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    for trials in [10_000u64, 50_000] {
        for threads in [1usize, 4] {
            let id = format!("{trials}x{threads}");
            group.bench_with_input(
                BenchmarkId::new("recording_on", &id),
                &(trials, threads),
                |b, &(trials, threads)| {
                    obs::set_recording(true);
                    b.iter(|| black_box(joined_mt_successes(trials, 7, threads)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("recording_off", &id),
                &(trials, threads),
                |b, &(trials, threads)| {
                    obs::set_recording(false);
                    b.iter(|| black_box(joined_mt_successes(trials, 7, threads)));
                    obs::set_recording(true);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
