//! Benchmarks runner dispatch overhead: the persistent-pool chunk-claiming
//! executor against a local replica of the old per-call scoped-spawn
//! scheduler, over the same end-to-end survival kernel.
//!
//! The kernel cost is identical in both arms, so differences are pure
//! scheduling: thread spawn/join per call (old) vs ticket submission into
//! long-lived workers plus atomic chunk claiming (new). At small batch
//! sizes the spawn cost dominates the old route; the pool amortises it
//! away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use montecarlo::{task_rng, Runner, Seed};
use std::hint::black_box;

/// The pre-pool dispatch strategy, reconstructed: split the trial range
/// into one contiguous chunk per worker, spawn a scoped thread per chunk
/// (fresh threads on every call), and join them all before returning. The
/// per-chunk RNG fan-out matches the shape of the old runner closely
/// enough for an apples-to-apples scheduling comparison.
fn scoped_spawn_successes(trials: u64, seed: u64, threads: usize) -> u64 {
    let threads = threads.clamp(1, usize::try_from(trials).unwrap_or(usize::MAX).max(1));
    let per = trials / threads as u64;
    let extra = trials % threads as u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let count = per + u64::from((t as u64) < extra);
                scope.spawn(move || {
                    let rm = ReliabilityModel::new(MemoryModel::Tso, 2);
                    let mut scratch = rm.scratch();
                    let mut rng = task_rng(Seed(seed), t as u64);
                    let mut hits = 0u64;
                    for _ in 0..count {
                        hits += u64::from(rm.simulate_survival_once_scratch(&mut scratch, &mut rng));
                    }
                    hits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// The same batch through the persistent pool (fixed-width chunks claimed
/// off an atomic cursor by long-lived workers).
fn pool_successes(trials: u64, seed: u64, threads: usize) -> u64 {
    let rm = ReliabilityModel::new(MemoryModel::Tso, 2);
    Runner::new(Seed(seed))
        .with_threads(threads)
        .bernoulli_scratch(
            trials,
            move || rm.scratch(),
            move |scratch, rng| rm.simulate_survival_once_scratch(scratch, rng),
        )
        .successes()
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_dispatch");
    for trials in [1_000u64, 10_000] {
        for threads in [1usize, 4] {
            let id = format!("{trials}x{threads}");
            group.bench_with_input(
                BenchmarkId::new("scoped_spawn", &id),
                &(trials, threads),
                |b, &(trials, threads)| {
                    b.iter(|| black_box(scoped_spawn_successes(trials, 5, threads)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("pool", &id),
                &(trials, threads),
                |b, &(trials, threads)| {
                    b.iter(|| black_box(pool_successes(trials, 5, threads)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
