//! Benchmarks the batch-lane trial kernels against the scalar path, over
//! the full lane-width sweep.
//!
//! Both arms run the same end-to-end survival workload single-threaded, so
//! differences are pure kernel shape: the scalar arm walks each settle
//! with the data-dependent `while pos > 0` loop, the lane arm runs `L`
//! trials in lockstep through the branchless SoA kernels. Width 1 prices
//! the lane bookkeeping itself (it executes the same masked arithmetic
//! with a single live lane); the wider arms show where the lockstep
//! amortisation pays for it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use std::hint::black_box;

const TRIALS: u64 = 4_000;
const SEED: u64 = 3;
const WIDTHS: [usize; 5] = [1, 8, 16, 32, 64];

fn bench_kernel_lanes(c: &mut Criterion) {
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Wo] {
        let rm = ReliabilityModel::new(model, 2);
        let mut group = c.benchmark_group(format!("kernel_lanes/{}", model.short_name()));
        group.bench_function("scalar", |b| {
            b.iter(|| black_box(rm.simulate_survival_with(TRIALS, SEED, 1).successes()));
        });
        for width in WIDTHS {
            group.bench_with_input(
                BenchmarkId::new("lanes", width),
                &width,
                |b, &width| {
                    b.iter(|| {
                        black_box(
                            rm.simulate_survival_lanes_with(TRIALS, SEED, width, 1)
                                .successes(),
                        )
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernel_lanes);
criterion_main!(benches);
