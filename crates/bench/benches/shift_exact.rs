//! Benchmarks the three exact `Pr[A(γ̄)]` evaluators against each other and
//! against one Monte-Carlo trial (DESIGN.md ablation 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use shiftproc::{exact, ShiftProcess};
use std::hint::black_box;

fn lengths(n: usize) -> Vec<u64> {
    (0..n).map(|i| 2 + (i as u64 % 3)).collect()
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("pr_disjoint");
    for n in [2usize, 4, 6, 8] {
        let ls = lengths(n);
        group.bench_with_input(BenchmarkId::new("perm_sum", n), &ls, |b, ls| {
            b.iter(|| black_box(exact::pr_disjoint_perm_sum(ls)));
        });
    }
    for n in [2usize, 4, 8, 12, 16, 20] {
        let ls = lengths(n);
        group.bench_with_input(BenchmarkId::new("subset_dp", n), &ls, |b, ls| {
            b.iter(|| black_box(exact::pr_disjoint(ls)));
        });
    }
    for n in [2usize, 6, 10] {
        let ls = lengths(n);
        group.bench_with_input(BenchmarkId::new("exact_rational", n), &ls, |b, ls| {
            b.iter(|| black_box(exact::pr_disjoint_exact(ls)));
        });
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_disjoint");
    let proc = ShiftProcess::canonical();
    for n in [2usize, 8, 32] {
        let ls = lengths(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ls, |b, ls| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| black_box(proc.simulate_disjoint(ls, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_simulate);
criterion_main!(benches);
