//! Benchmarks one end-to-end survival trial (Theorem 6.2's pipeline) per
//! model and thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_trial");
    for model in MemoryModel::NAMED {
        for n in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(model.short_name(), n),
                &n,
                |b, &n| {
                    let rm = ReliabilityModel::new(model, n);
                    let mut rng = SmallRng::seed_from_u64(3);
                    b.iter(|| black_box(rm.simulate_survival_once(&mut rng)));
                },
            );
        }
    }
    group.finish();
}

fn bench_trial_scratch(c: &mut Criterion) {
    // The allocation-free kernel on the same pipeline: the per-trial gap to
    // `end_to_end_trial` is what the scratch refactor buys.
    let mut group = c.benchmark_group("end_to_end_trial_scratch");
    for model in MemoryModel::NAMED {
        for n in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(model.short_name(), n),
                &n,
                |b, &n| {
                    let rm = ReliabilityModel::new(model, n);
                    let mut scratch = rm.scratch();
                    let mut rng = SmallRng::seed_from_u64(3);
                    b.iter(|| {
                        black_box(rm.simulate_survival_once_scratch(&mut scratch, &mut rng))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_window_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_windows");
    for n in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let rm = ReliabilityModel::new(MemoryModel::Tso, n);
            let mut rng = SmallRng::seed_from_u64(4);
            b.iter(|| black_box(rm.sample_windows(&mut rng)));
        });
    }
    group.finish();
}

fn bench_window_vector_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_windows_scratch");
    for n in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let rm = ReliabilityModel::new(MemoryModel::Tso, n);
            let mut scratch = rm.scratch();
            let mut rng = SmallRng::seed_from_u64(4);
            b.iter(|| {
                black_box(rm.sample_windows_scratch(&mut scratch, &mut rng).len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trial,
    bench_trial_scratch,
    bench_window_vector,
    bench_window_vector_scratch
);
criterion_main!(benches);
