//! Benchmarks the content-addressed result store's hot paths: request-key
//! canonicalization + hashing, LRU lookup, and the full cache-served run
//! against the simulation it replaces.
//!
//! The interesting number is the last group: a warm `lookup` must be
//! orders of magnitude cheaper than `simulate`, or the cache seam in the
//! core entry points is overhead rather than an accelerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use std::hint::black_box;
use std::sync::Arc;

const TRIALS: u64 = 64 * montecarlo::CHUNK_WIDTH;
const SEED: u64 = 0xBE7C;

fn spec(seed: u64) -> store::KeySpec {
    store::KeySpec {
        kernel: format!("{}/survival", store::KERNEL_VERSION),
        matrix: MemoryModel::Tso.matrix().to_string(),
        threads_n: 2,
        filler_m: 64,
        p_bits: 0.5f64.to_bits(),
        settle_bits: [0u64; 4],
        fence_pass_bits: 0,
        acquire_fence: false,
        seed,
        chunk_width: montecarlo::CHUNK_WIDTH,
        lanes: 0,
    }
}

fn bench_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_key");
    group.bench_function("canonicalize_and_hash", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(spec(seed).request(TRIALS, None).hash())
        });
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    // A store pre-populated with `n` entries; the measured lookup walks
    // the exact-hit path (key hash + canonical-string guard + LRU bump).
    let mut group = c.benchmark_group("store_lookup");
    for n in [16u64, 256, 4096] {
        let s = store::Store::in_memory();
        let mut keys = Vec::new();
        for seed in 0..n {
            let key = spec(seed).request(TRIALS, None);
            let est = ReliabilityModel::new(MemoryModel::Tso, 2)
                .simulate_survival(8, seed);
            let report = montecarlo::RunReport {
                value: est,
                trials_requested: TRIALS,
                trials_completed: TRIALS,
                converged_early: false,
                truncated: false,
                retried_chunks: 0,
                degraded: false,
                abandoned_chunks: 0,
                elapsed: std::time::Duration::ZERO,
            };
            let cached = store::CachedReport::from_report(&report).expect("clean report");
            s.insert(&key, cached, Vec::new());
            keys.push(key);
        }
        group.bench_with_input(BenchmarkId::new("hit", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                match s.lookup(&keys[i]) {
                    store::Lookup::Hit(e) => black_box(e.report.trials_completed),
                    _ => panic!("populated key must hit"),
                }
            });
        });
    }
    group.finish();
}

fn bench_cached_run(c: &mut Criterion) {
    // The end-to-end comparison the cache exists for: the same survival
    // request served by simulation vs by a warm store through the normal
    // cache-aware entry point.
    let mut group = c.benchmark_group("store_replay");
    group.sample_size(10);
    let rm = ReliabilityModel::new(MemoryModel::Tso, 2);
    let trials = 4 * montecarlo::CHUNK_WIDTH;

    group.bench_function("simulate", |b| {
        store::clear();
        b.iter(|| black_box(rm.simulate_survival(trials, SEED)));
    });

    group.bench_function("warm_lookup", |b| {
        store::install(Arc::new(store::Store::in_memory()));
        let _ = rm.simulate_survival(trials, SEED);
        b.iter(|| black_box(rm.simulate_survival(trials, SEED)));
        store::clear();
    });
    group.finish();
}

criterion_group!(benches, bench_keys, bench_lookup, bench_cached_run);
criterion_main!(benches);
