//! Kill-resume torture: SIGKILL the `experiments` binary at seeded points
//! mid-run, resume from the journal, and require the final structured
//! output to be bit-identical to an uninterrupted run.
//!
//! kill -9 gives the process no chance to flush or clean up, so any
//! completed-then-lost record, torn frame mishandling, or double-merged
//! resume shows up as a diff against the clean baseline.

#![cfg(unix)]

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_to_completion(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn load(path: &Path) -> mmr_bench::RunResult {
    serde_json::from_str(&std::fs::read_to_string(path).unwrap()).expect("valid run result json")
}

#[test]
fn sigkill_mid_journal_never_loses_completed_work() {
    let dir = std::env::temp_dir().join(format!("experiments-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("state.mmrj");
    let clean_json = dir.join("clean.json");
    let resumed_json = dir.join("resumed.json");
    let ids = ["t1", "lem42", "thm62"];

    // The uninterrupted baseline, no checkpoint involved at all.
    let out = run_to_completion(
        &[&["--quick", "--quiet", "--json", clean_json.to_str().unwrap()], &ids[..]].concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Seeded kill schedule: spawn, wait a deterministic delay, SIGKILL.
    // Delays fan across the whole run so kills land before, during, and
    // after journal appends; a run that finishes early just ends the loop.
    let torture_args: Vec<&str> = [
        &[
            "--quick",
            "--quiet",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--json",
            resumed_json.to_str().unwrap(),
        ],
        &ids[..],
    ]
    .concat();
    for round in 0..5u64 {
        let mut child = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(&torture_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn experiments binary");
        let delay = Duration::from_millis(50 + splitmix64(round) % 1500);
        std::thread::sleep(delay);
        match child.try_wait().expect("poll child") {
            Some(status) => {
                // Finished before the kill landed: the journal is complete.
                assert_eq!(status.code(), Some(0));
                break;
            }
            None => {
                child.kill().expect("SIGKILL the child"); // kill(2) = SIGKILL on unix
                child.wait().expect("reap the child");
            }
        }
    }

    // The recovery pass: resume whatever survived and finish the batch.
    let out = run_to_completion(&torture_args);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let clean = load(&clean_json).strip_diagnostics();
    let resumed = load(&resumed_json).strip_diagnostics();
    assert_eq!(
        resumed.experiments.iter().map(|e| e.id.as_str()).collect::<Vec<_>>(),
        ids.to_vec(),
        "resume must preserve request order"
    );
    assert_eq!(clean, resumed, "kill -9 torture changed the results");
    std::fs::remove_dir_all(&dir).unwrap();
}
