//! Black-box tests of the `experiments` binary: argument validation,
//! atomic output, and checkpoint write → resume → skip.

use std::path::PathBuf;
use std::process::{Command, Output};

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("experiments-bin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn rejects_zero_trials() {
    let out = experiments(&["--trials", "0", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--trials must be at least 1"), "{stderr}");
}

#[test]
fn rejects_malformed_trials_and_seed() {
    let out = experiments(&["--trials", "many", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trials takes a positive integer"));

    let out = experiments(&["--seed", "0x12", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed takes an integer"));

    let out = experiments(&["--trials"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trials needs a value"));
}

#[test]
fn rejects_bad_threads() {
    let out = experiments(&["--threads", "0", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads must be at least 1"));

    let out = experiments(&["--threads", "lots", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads takes a positive integer"));

    let out = experiments(&["--threads"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads needs a value"));
}

#[test]
fn results_are_identical_across_thread_counts() {
    // The executor's determinism contract, observed end to end through the
    // binary: a seeded run's structured output is identical (modulo timing
    // metadata and throughput diagnostics, which strip_diagnostics zeroes)
    // whether the grid runs on one worker or eight — and telemetry
    // collection does not perturb it.
    let dir = temp_dir("threads");
    let base = ["--quick", "--seed", "7", "t1", "lem42", "thm51"];
    let mut runs: Vec<mmr_bench::RunResult> = Vec::new();
    for threads in ["1", "2", "3", "8"] {
        let json = dir.join(format!("t{threads}.json"));
        let metrics = dir.join(format!("m{threads}.json"));
        let out = experiments(
            &[
                &base[..],
                &[
                    "--threads",
                    threads,
                    "--json",
                    json.to_str().unwrap(),
                    "--metrics",
                    metrics.to_str().unwrap(),
                ],
            ]
            .concat(),
        );
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
        let parsed: mmr_bench::RunResult =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap())
                .expect("valid run result json");
        assert_eq!(parsed.threads, threads.parse::<usize>().unwrap());
        assert!(parsed.experiments.iter().all(|e| e.elapsed_secs >= 0.0));
        // Telemetry was collected alongside and parses back as a snapshot.
        let snap: obs::Snapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap())
                .expect("valid metrics snapshot json");
        assert!(snap.counter("mc.runner.runs").unwrap_or(0) > 0);
        runs.push(parsed);
    }
    let baseline = runs[0].strip_diagnostics();
    assert!(
        baseline.experiments.iter().any(|e| !e.diagnostics.is_empty()),
        "estimator experiments should surface convergence diagnostics"
    );
    for run in &runs[1..] {
        assert_eq!(baseline, run.strip_diagnostics());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quiet_wins_over_progress() {
    // The two stderr flags compose predictably: --quiet silences both the
    // status lines and the --progress heartbeat.
    let out = experiments(&["--quick", "--quiet", "--progress", "t1"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.is_empty(), "expected silent stderr, got: {stderr}");
}

#[test]
fn unwritable_metrics_is_typed_error_after_results_land() {
    // A bad --metrics path is a typed I/O error (exit 2) — and because
    // exports run last, the partial results written before it are intact.
    let dir = temp_dir("unwritable");
    let json = dir.join("results.json");
    let metrics = dir.join("no-such-subdir").join("metrics.json");
    let out = experiments(&[
        "--quick",
        "--json",
        json.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "t1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot access"), "{stderr}");
    let parsed: mmr_bench::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap())
            .expect("results written before the failed export");
    assert_eq!(parsed.experiments.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_and_prom_exports_are_structurally_valid() {
    let dir = temp_dir("exports");
    let trace = dir.join("trace.json");
    let prom = dir.join("metrics.prom");
    let out = experiments(&[
        "--quick",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        prom.to_str().unwrap(),
        "--metrics-format",
        "prom",
        "t1",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // The Chrome trace parses and carries at least the experiment span.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap())
            .expect("valid trace json");
    let serde_json::Value::Object(fields) = &parsed else {
        panic!("trace root should be an object");
    };
    let serde_json::Value::Array(events) = serde_json::Value::field(fields, "traceEvents")
    else {
        panic!("traceEvents should be an array");
    };
    assert!(!events.is_empty(), "trace should carry at least one span");

    // The Prometheus exposition passes the exporter's own lint.
    let text = std::fs::read_to_string(&prom).unwrap();
    obs::export::lint(&text).expect("prom exposition lints clean");
    assert!(text.contains("exp_t1_runs"), "{text}");

    // An unknown format is rejected up front.
    let out = experiments(&["--quick", "--metrics-format", "xml", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("json or prom"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_gate_fails_on_injected_regression_and_passes_clean() {
    let dir = temp_dir("gate");
    let first = dir.join("first.json");

    let out = experiments(&["bench", "--trials", "400", "--out", first.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let report: mmr_bench::perf::BenchReport =
        serde_json::from_str(&std::fs::read_to_string(&first).unwrap()).unwrap();

    // Inject a 50% slowdown by doubling the baseline's throughput: even
    // the loosest tolerance (45%) must flag it, and the process exits 1.
    let mut doctored = report.clone();
    for p in &mut doctored.pipelines {
        p.trials_per_sec *= 2.0;
    }
    let baseline = dir.join("doctored.json");
    std::fs::write(&baseline, serde_json::to_string_pretty(&doctored).unwrap()).unwrap();
    let second = dir.join("second.json");
    let out = experiments(&[
        "bench",
        "--trials",
        "400",
        "--baseline",
        baseline.to_str().unwrap(),
        "--out",
        second.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("REGRESSION"));

    // A clean re-run against the genuine baseline passes and extends the
    // trajectory with a second entry.
    let third = dir.join("third.json");
    let out = experiments(&[
        "bench",
        "--trials",
        "400",
        "--baseline",
        first.to_str().unwrap(),
        "--out",
        third.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let chained: mmr_bench::perf::BenchReport =
        serde_json::from_str(&std::fs::read_to_string(&third).unwrap()).unwrap();
    assert_eq!(chained.history.len(), report.history.len() + 1);

    // A garbage baseline is a typed error, not a panic.
    std::fs::write(&baseline, "not json at all").unwrap();
    let out = experiments(&[
        "bench",
        "--baseline",
        baseline.to_str().unwrap(),
        "--trials",
        "400",
        "--out",
        second.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad perf baseline"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejects_unknown_flag_and_unknown_experiment() {
    let out = experiments(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    let out = experiments(&["--quick", "not-an-experiment"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment id"));
}

#[test]
fn list_and_help_succeed() {
    let out = experiments(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("thm62"));

    let out = experiments(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("--checkpoint"));
}

#[test]
fn checkpoint_write_resume_skip_roundtrip() {
    let dir = temp_dir("ckpt");
    let ckpt = dir.join("state.json");
    let ckpt_s = ckpt.to_str().unwrap();

    // First run completes t1 and writes the journal (CRC-framed lines).
    let out = experiments(&["--quick", "--checkpoint", ckpt_s, "t1"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.exists());
    let state = std::fs::read_to_string(&ckpt).unwrap();
    assert!(state.starts_with("MMRJ "), "{state}");
    assert!(state.contains("\"id\":\"t1\""), "{state}");

    // Second run over a superset skips t1 and completes f2.
    let out = experiments(&["--quick", "--checkpoint", ckpt_s, "t1", "f2"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipping t1"), "{stderr}");
    assert!(!stderr.contains("skipping f2"), "{stderr}");
    let state = std::fs::read_to_string(&ckpt).unwrap();
    assert!(state.contains("\"id\":\"t1\"") && state.contains("\"id\":\"f2\""));

    // Both skipped results still land in the report, in request order.
    let out = experiments(&["--quick", "--checkpoint", ckpt_s, "t1", "f2"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipping t1") && stderr.contains("skipping f2"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let t1 = stdout.find("## T1").expect("t1 section");
    let f2 = stdout.find("## F2").expect("f2 section");
    assert!(t1 < f2);

    // A context change invalidates the checkpoint instead of mixing runs.
    let out = experiments(&["--quick", "--seed", "99", "--checkpoint", ckpt_s, "t1"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ignoring it"), "{stderr}");
    assert!(!stderr.contains("skipping t1"), "{stderr}");

    // A corrupt checkpoint is a hard error, not silent data loss.
    std::fs::write(&ckpt, "{ definitely not json").unwrap();
    let out = experiments(&["--quick", "--checkpoint", ckpt_s, "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad checkpoint"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_journal_tail_is_recovered_on_resume() {
    // kill -9 mid-append leaves a partial last line; the next open must
    // truncate it, keep every completed record, and resume from there.
    let dir = temp_dir("torn");
    let ckpt = dir.join("state.mmrj");
    let ckpt_s = ckpt.to_str().unwrap();

    let out = experiments(&["--quick", "--checkpoint", ckpt_s, "t1"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let intact = std::fs::read_to_string(&ckpt).unwrap();

    // Simulate the torn write: a frame that stops mid-JSON, no newline.
    let mut torn = intact.clone();
    torn.push_str("MMRJ 1 exp deadbeef {\"id\":\"f2\",\"trunc");
    std::fs::write(&ckpt, &torn).unwrap();

    let out = experiments(&["--quick", "--checkpoint", ckpt_s, "t1", "f2"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipping t1"), "{stderr}");
    assert!(!stderr.contains("skipping f2"), "torn f2 must re-run: {stderr}");
    let state = std::fs::read_to_string(&ckpt).unwrap();
    assert!(state.contains("\"id\":\"t1\"") && state.contains("\"id\":\"f2\""));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unwritable_checkpoint_is_typed_error_after_results_land() {
    // Satellite contract, mirroring --metrics: an unwritable --checkpoint
    // path must not abort the batch — the run completes, the results are
    // written, and the exit code is the typed-I/O 2.
    let dir = temp_dir("ckpt-unwritable");
    let json = dir.join("results.json");
    let ckpt = dir.join("no-such-subdir").join("state.mmrj");
    let out = experiments(&[
        "--quick",
        "--json",
        json.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "t1",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot access"), "{stderr}");
    let parsed: mmr_bench::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap())
            .expect("results written despite the failed checkpoint");
    assert_eq!(parsed.experiments.len(), 1);
    assert!(!parsed.experiments[0].degraded);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chaos_spec_is_validated_at_parse_time() {
    let out = experiments(&["--chaos", "zebra", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--chaos takes SEED"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = experiments(&["--chaos", "7:nope", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mixed|panics|stalls|corrupt|torn|export|hard"), "{stderr}");

    let out = experiments(&["--chaos"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chaos needs SEED"));
}

#[test]
fn chaos_recoverable_run_is_bit_identical_to_fault_free() {
    // The master invariant, observed end to end through the binary: a
    // recoverable chaos run (panics + corruption + stalls + torn journal
    // writes) produces exactly the same structured results as the clean
    // run, modulo timing diagnostics and the fault ledger itself.
    use montecarlo::fault::{FaultPlan, Profile};
    let dir = temp_dir("chaos-e2e");
    let clean_json = dir.join("clean.json");
    let chaos_json = dir.join("chaos.json");
    let ckpt = dir.join("chaos.mmrj");
    let ids = ["lem42", "thm62"];

    let out = experiments(
        &[&["--quick", "--json", clean_json.to_str().unwrap()], &ids[..]].concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Seed-search a plan that provably injects into chunk 0 — the one
    // chunk every Monte-Carlo experiment has — so the run cannot pass
    // vacuously.
    let chaos_seed = (0..100_000u64)
        .find(|&s| {
            let p = FaultPlan::new(s, Profile::Mixed);
            p.chunk_panics(0, 1) || p.corrupts_scratch(0, 1)
        })
        .expect("a firing seed exists");
    let out = experiments(
        &[
            &[
                "--quick",
                "--json",
                chaos_json.to_str().unwrap(),
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--chaos",
                &format!("{chaos_seed}:mixed"),
            ],
            &ids[..],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let clean: mmr_bench::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&clean_json).unwrap()).unwrap();
    let chaos: mmr_bench::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&chaos_json).unwrap()).unwrap();
    assert!(
        chaos
            .experiments
            .iter()
            .any(|e| e.fault_ledger != mmr_bench::FaultLedger::default()),
        "the plan must have actually injected faults"
    );
    assert!(chaos.experiments.iter().all(|e| !e.degraded));
    assert_eq!(clean.strip_diagnostics(), chaos.strip_diagnostics());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hard_chaos_degrades_with_exit_3_and_honest_summary() {
    use montecarlo::fault::{FaultPlan, Profile};
    let dir = temp_dir("chaos-hard");
    let json = dir.join("results.json");

    // A hard fault on chunk 0 fires on every attempt of every experiment's
    // first chunk: retries exhaust, the run degrades instead of erroring.
    let chaos_seed = (0..100_000u64)
        .find(|&s| FaultPlan::new(s, Profile::Hard).chunk_panics(0, 1))
        .expect("a hard-failing seed exists");
    let out = experiments(&[
        "--quick",
        "--json",
        json.to_str().unwrap(),
        "--chaos",
        &format!("{chaos_seed}:hard"),
        "lem42",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 DEGRADED"), "{stderr}");

    let parsed: mmr_bench::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert!(parsed.experiments[0].degraded, "the record must carry the flag");
    assert!(parsed.experiments[0].fault_ledger.chunks_abandoned > 0);
    assert!(
        parsed.experiments[0].report.contains("DEGRADED"),
        "the human report must flag partial estimates"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn export_chaos_fails_metrics_with_typed_error() {
    let dir = temp_dir("chaos-export");
    let json = dir.join("results.json");
    let metrics = dir.join("metrics.json");
    let out = experiments(&[
        "--quick",
        "--json",
        json.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--chaos",
        "7:export",
        "t1",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected export fault"), "{stderr}");
    assert!(!metrics.exists(), "the export must have been blocked");
    assert!(json.exists(), "results land before exports run");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_subcommand_writes_machine_readable_report() {
    let dir = temp_dir("bench");
    let out_path = dir.join("BENCH.json");

    let out = experiments(&["bench", "--trials", "500", "--out", out_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("joined speedup"), "{stderr}");

    let report: mmr_bench::perf::BenchReport =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap())
            .expect("valid json benchmark report");
    assert_eq!(report.trials, 500);
    assert!(report.pipelines.iter().all(|p| p.trials_per_sec > 0.0));
    assert!(!report.joined_speedup_vs_legacy.is_empty());
    assert!(!dir.join("BENCH.json.tmp").exists());

    // `bench` composes with nothing else.
    let out = experiments(&["bench", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("takes no experiment ids"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn out_and_json_are_written_atomically_together() {
    let dir = temp_dir("out");
    let report = dir.join("report.md");
    let json = dir.join("results.json");

    let out = experiments(&[
        "--quick",
        "--out",
        report.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
        "t1",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.starts_with("# Experiment report"));
    assert!(text.contains("## T1"));
    assert!(text.contains("total wall time"));

    let parsed: serde_json::Value = serde_json::from_str(&std::fs::read_to_string(&json).unwrap())
        .expect("valid json output");
    drop(parsed);

    assert!(!dir.join("report.md.tmp").exists());
    assert!(!dir.join("results.json.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
