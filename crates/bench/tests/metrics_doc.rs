//! Schema test: METRICS.md documents every metric and span name a full
//! experiment run emits. Lives in its own test binary so the process-global
//! telemetry registry only sees the suite run below.

use mmr_bench::{registry, run_one_isolated, Ctx};

/// First backticked token of every `|` table row in METRICS.md.
fn documented_names(doc: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let Some(start) = line.find('`') else { continue };
        let rest = &line[start + 1..];
        let Some(end) = rest.find('`') else { continue };
        names.push(rest[..end].to_owned());
    }
    names
}

/// Whether `name` matches a documented pattern, where a single `*` segment
/// wildcards one dot-separated segment (e.g. `exp.*.runs`).
fn covered(name: &str, patterns: &[String]) -> bool {
    patterns.iter().any(|p| {
        if !p.contains('*') {
            return p == name;
        }
        let pat: Vec<&str> = p.split('.').collect();
        let got: Vec<&str> = name.split('.').collect();
        pat.len() == got.len()
            && pat
                .iter()
                .zip(&got)
                .all(|(p, g)| *p == "*" || p == g)
    })
}

#[test]
fn metrics_doc_covers_every_emitted_name() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md");
    let doc = std::fs::read_to_string(doc_path).expect("METRICS.md readable");
    let patterns = documented_names(&doc);
    assert!(
        patterns.len() > 20,
        "METRICS.md should document the full name table, parsed {}",
        patterns.len()
    );

    // A full registry sweep at a quick size: every experiment instruments
    // itself, so the snapshot below is the complete runtime name universe.
    let ctx = Ctx::quick().with_threads(2);
    for e in &registry() {
        let result = run_one_isolated(e, &ctx);
        assert_eq!(result.mismatched, 0, "{}: {}", e.id, result.report);
    }
    let snap = obs::snapshot();
    assert!(!snap.counters.is_empty(), "expected a live telemetry build");

    let mut missing = Vec::new();
    for name in snap
        .counters
        .iter()
        .map(|c| c.name.as_str())
        .chain(snap.gauges.iter().map(|g| g.name.as_str()))
        .chain(snap.histograms.iter().map(|h| h.name.as_str()))
        .chain(snap.spans.iter().map(|s| s.name.as_str()))
    {
        if !covered(name, &patterns) {
            missing.push(name.to_owned());
        }
    }
    missing.sort();
    missing.dedup();
    assert!(
        missing.is_empty(),
        "telemetry names missing from METRICS.md: {missing:?}"
    );
}

#[test]
fn wildcard_matching_is_segment_exact() {
    let pats = vec!["exp.*.runs".to_owned(), "mc.runner.runs".to_owned()];
    assert!(covered("exp.thm62.runs", &pats));
    assert!(covered("mc.runner.runs", &pats));
    assert!(!covered("exp.thm62.elapsed_us", &pats));
    assert!(!covered("exp.thm62.runs.extra", &pats));
    assert!(!covered("mc.runner.trials_completed", &pats));
}
