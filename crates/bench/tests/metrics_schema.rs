//! Schema validation of the `--metrics` snapshot emitted by a full
//! (quick-context) 16-experiment run. Run by ci.sh as the machine check
//! that the telemetry surface stays complete: runner counters, pool
//! counters, per-memory-model attribution, histograms, and spans.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metrics-schema-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_run_metrics_snapshot_has_complete_schema() {
    let dir = temp_dir("full");
    let metrics = dir.join("metrics.json");
    let json = dir.join("results.json");

    // All 16 experiments (no ids selects the whole registry), quick context.
    // Two worker threads so the persistent pool actually dispatches tickets
    // (at --threads 1 the caller drains every scatter inline).
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--quick",
            "--quiet",
            "--threads",
            "2",
            "--json",
            json.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("spawn experiments binary");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --quiet suppresses every status line.
    assert!(out.stderr.is_empty(), "{}", String::from_utf8_lossy(&out.stderr));

    let snap: obs::Snapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap())
            .expect("metrics snapshot parses as obs::Snapshot");

    // Runner layer: every experiment drives the Monte-Carlo runner, so the
    // chunk machinery must show real work.
    assert!(snap.counter("mc.runner.runs").unwrap_or(0) > 0);
    assert!(snap.counter("mc.runner.chunks_claimed").unwrap_or(0) > 0);
    assert!(snap.counter("mc.runner.trials_completed").unwrap_or(0) > 0);
    // The retry counter exists (registered) even when no chunk panicked.
    assert_eq!(snap.counter("mc.runner.chunks_retried"), Some(0));
    assert_eq!(snap.counter("mc.runner.deadline_truncations"), Some(0));

    // Pool layer.
    assert!(snap.counter("mc.pool.scatter_calls").unwrap_or(0) > 0);
    assert!(snap.counter("mc.pool.tickets_submitted").unwrap_or(0) > 0);
    assert_eq!(
        snap.counter("mc.pool.tickets_submitted"),
        snap.counter("mc.pool.tickets_run"),
    );

    // Per-memory-model attribution: all four named models ran trials.
    for model in ["SC", "TSO", "PSO", "WO"] {
        let trials = snap.counter(&format!("mmr.model.{model}.trials"));
        assert!(trials.unwrap_or(0) > 0, "no trials attributed to {model}");
    }

    // Histograms observed real durations.
    for name in ["mc.runner.chunk_wall_us", "mc.pool.queue_wait_us"] {
        let h = snap.histogram(name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count > 0, "{name} recorded nothing");
        assert!(h.max >= h.min);
    }

    // Per-experiment counters and spans for the whole registry.
    let registry = mmr_bench::registry();
    assert_eq!(registry.len(), 16);
    for e in &registry {
        assert_eq!(
            snap.counter(&format!("exp.{}.runs", e.id)),
            Some(1),
            "exp.{}.runs missing or wrong",
            e.id
        );
        let span = snap.span(e.id).unwrap_or_else(|| panic!("span {} missing", e.id));
        assert_eq!(span.count, 1);
        assert!(span.total_us >= span.max_us);
    }

    // The structured results written alongside are unaffected by telemetry:
    // they parse and carry the full registry.
    let run: mmr_bench::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(run.experiments.len(), 16);

    std::fs::remove_dir_all(&dir).unwrap();
}
