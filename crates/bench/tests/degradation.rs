//! The shared unusable-artifact degradation contract, table-driven over
//! every artifact flag of the `experiments` binary: an unusable path or
//! address warns (`warning: <artifact> disabled: …`), the run completes
//! with results intact, and the process exits 2.

use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("experiments-degrade-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_artifact_flag_degrades_to_warning_and_exit_2_with_results_intact() {
    let dir = tmp_dir("flags");
    // A plain file whose "subdirectory" can never exist: using it as a
    // parent directory is unusable for every artifact kind.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let unusable = blocker.join("sub").join("artifact");
    let unusable = unusable.to_str().unwrap();

    let cases: &[(&str, &str)] = &[
        ("--metrics", unusable),
        ("--trace", unusable),
        ("--flight", unusable),
        ("--dossier-dir", unusable),
        ("--cache", unusable),
        ("--checkpoint", unusable),
        ("--serve", "not-an-address"),
    ];
    for (i, (flag, value)) in cases.iter().enumerate() {
        let json = dir.join(format!("results-{i}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args([
                "--quick",
                "--json",
                json.to_str().unwrap(),
                flag,
                value,
                "t1",
            ])
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{flag}: {stderr}");
        assert!(stderr.contains("disabled"), "{flag}: {stderr}");
        let parsed: mmr_bench::RunResult =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap())
                .unwrap_or_else(|e| panic!("{flag}: results must land: {e:?}"));
        assert_eq!(parsed.experiments.len(), 1, "{flag}");
        assert!(!parsed.experiments[0].degraded, "{flag}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn degraded_artifact_outranks_a_degraded_run_in_the_exit_code() {
    // Exit-code precedence is 2 (missing artifact) > 3 (degraded run):
    // the hard chaos profile alone exits 3, but a degraded artifact on
    // the same run must surface as 2.
    let dir = tmp_dir("precedence");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let unusable = blocker.join("sub").join("f.flight");

    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--quick",
            "--seed",
            "20110606",
            "--chaos",
            "999:hard",
            "--flight",
            unusable.to_str().unwrap(),
            "t1",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("flight event log disabled"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}
