//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`exp`] reproduces one artifact (see DESIGN.md §4's
//! per-experiment index) and returns a text report section with
//! paper-vs-measured rows. The `experiments` binary runs any subset and is
//! the source of `EXPERIMENTS.md`; the Criterion benches in `benches/`
//! measure the cost of the underlying machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;

use serde::Serialize;
use std::fmt::Write as _;

/// Shared experiment context.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Baseline Monte-Carlo trial count (experiments scale it as needed).
    pub trials: u64,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Ctx {
    /// The default context used to generate `EXPERIMENTS.md`.
    #[must_use]
    pub fn standard() -> Ctx {
        Ctx {
            trials: 200_000,
            seed: 20110606, // PODC'11, June 6 2011
        }
    }

    /// A fast context for smoke tests.
    #[must_use]
    pub fn quick() -> Ctx {
        Ctx {
            trials: 10_000,
            seed: 20110606,
        }
    }
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx::standard()
    }
}

/// One experiment: id, paper artifact, and runner.
pub struct Experiment {
    /// Short id (`t1`, `thm62`, …) used on the command line.
    pub id: &'static str,
    /// The paper artifact reproduced.
    pub artifact: &'static str,
    /// Runs the experiment, returning a report section.
    pub run: fn(&Ctx) -> String,
}

/// Every experiment, in DESIGN.md §4 order.
#[must_use]
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "t1", artifact: "Table 1 — memory-model relaxation matrix", run: exp::t1::run },
        Experiment { id: "f1", artifact: "Figure 1 — a settling-process instantiation under TSO", run: exp::f1::run },
        Experiment { id: "f2", artifact: "Figure 2 — a shift-process instantiation", run: exp::f2::run },
        Experiment { id: "thm41", artifact: "Theorem 4.1 — critical-window growth laws", run: exp::thm41::run },
        Experiment { id: "clm43", artifact: "Claim 4.3 — steady-state bottom store fraction 2/3", run: exp::clm43::run },
        Experiment { id: "lem42", artifact: "Lemma 4.2 — Pr[L_mu] bounds and series", run: exp::lem42::run },
        Experiment { id: "thm51", artifact: "Theorem 5.1 — exact shift disjointness", run: exp::thm51::run },
        Experiment { id: "cor52", artifact: "Corollary 5.2 — c(n) in [2,4], c(2) = 8/3", run: exp::cor52::run },
        Experiment { id: "thm61", artifact: "Theorem 6.1 — exchangeability reduction", run: exp::thm61::run },
        Experiment { id: "thm62", artifact: "Theorem 6.2 — two-thread survival table", run: exp::thm62::run },
        Experiment { id: "thm63", artifact: "Theorem 6.3 — large-n asymptotics", run: exp::thm63::run },
        Experiment { id: "pso", artifact: "footnote 4 — the omitted PSO result", run: exp::pso::run },
        Experiment { id: "fence", artifact: "section 7 — fences shrink windows", run: exp::fence::run },
        Experiment { id: "opsim", artifact: "section 2.2 — operational multiprocessor ground truth", run: exp::opsim::run },
        Experiment { id: "litmus", artifact: "section 2.1 semantics — SB/MP/LB litmus matrix", run: exp::litmus::run },
        Experiment { id: "general", artifact: "section 7 robustness — laws at arbitrary (p, s, q)", run: exp::general::run },
    ]
}

/// Runs a set of experiment ids (all when empty), concatenating sections.
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn run_experiments(ids: &[String], ctx: &Ctx) -> String {
    let registry = registry();
    let selected: Vec<&Experiment> = if ids.is_empty() {
        registry.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                registry
                    .iter()
                    .find(|e| e.id == id)
                    .unwrap_or_else(|| panic!("unknown experiment id {id:?}"))
            })
            .collect()
    };
    let mut out = String::new();
    for e in selected {
        let _ = writeln!(out, "## {} — {}\n", e.id.to_uppercase(), e.artifact);
        out.push_str(&(e.run)(ctx));
        out.push('\n');
    }
    out
}

/// Formats a paper-vs-measured verdict line.
#[must_use]
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "MISMATCH"
    }
}

/// Machine-readable result of one experiment run.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ExperimentResult {
    /// Experiment id.
    pub id: String,
    /// The paper artifact reproduced.
    pub artifact: String,
    /// Number of individual checks that reproduced.
    pub reproduced: usize,
    /// Number of individual checks that mismatched.
    pub mismatched: usize,
    /// The full text section.
    pub report: String,
}

/// Machine-readable result of a whole run (the `--json` output).
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct RunResult {
    /// Trial count of the context.
    pub trials: u64,
    /// Master seed of the context.
    pub seed: u64,
    /// Per-experiment results.
    pub experiments: Vec<ExperimentResult>,
}

/// Runs experiments and collects structured results (the `--json` path).
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn run_experiments_structured(ids: &[String], ctx: &Ctx) -> RunResult {
    let registry = registry();
    let selected: Vec<&Experiment> = if ids.is_empty() {
        registry.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                registry
                    .iter()
                    .find(|e| e.id == id)
                    .unwrap_or_else(|| panic!("unknown experiment id {id:?}"))
            })
            .collect()
    };
    let experiments = selected
        .into_iter()
        .map(|e| {
            let report = (e.run)(ctx);
            ExperimentResult {
                id: e.id.to_owned(),
                artifact: e.artifact.to_owned(),
                reproduced: report.matches("REPRODUCED").count(),
                mismatched: report.matches("MISMATCH").count(),
                report,
            }
        })
        .collect();
    RunResult {
        trials: ctx.trials,
        seed: ctx.seed,
        experiments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
        assert_eq!(reg.len(), 16);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiments(&["nope".into()], &Ctx::quick());
    }

    #[test]
    fn t1_runs_in_quick_mode() {
        let out = run_experiments(&["t1".into()], &Ctx::quick());
        assert!(out.contains("Table 1"));
        assert!(out.contains("REPRODUCED"));
    }

    #[test]
    fn structured_results_serialize() {
        let res = run_experiments_structured(&["t1".into(), "f2".into()], &Ctx::quick());
        assert_eq!(res.experiments.len(), 2);
        assert!(res.experiments.iter().all(|e| e.mismatched == 0));
        assert!(res.experiments.iter().all(|e| e.reproduced >= 1));
        let json = serde_json::to_string_pretty(&res).unwrap();
        assert!(json.contains("\"id\": \"t1\""));
    }
}
