//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`exp`] reproduces one artifact (see DESIGN.md §4's
//! per-experiment index) and returns a text report section with
//! paper-vs-measured rows. The `experiments` binary runs any subset and is
//! the source of `EXPERIMENTS.md`; the Criterion benches in `benches/`
//! measure the cost of the underlying machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod exp;
pub mod gate;
pub mod inspect;
pub mod journal;
pub mod perf;
pub mod sweep;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Failure modes of the experiment harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An experiment id that is not in the [`registry`].
    UnknownExperiment {
        /// The offending id.
        id: String,
    },
    /// A filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A checkpoint file exists but cannot be understood.
    BadCheckpoint {
        /// The checkpoint file.
        path: PathBuf,
        /// Why it was rejected.
        detail: String,
    },
    /// A perf-gate baseline file exists but is not a benchmark report.
    BadBaseline {
        /// The baseline file.
        path: PathBuf,
        /// Why it was rejected.
        detail: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownExperiment { id } => {
                write!(f, "unknown experiment id {id:?} (try --list)")
            }
            Error::Io { path, source } => {
                write!(f, "cannot access {}: {source}", path.display())
            }
            Error::BadCheckpoint { path, detail } => {
                write!(f, "bad checkpoint {}: {detail}", path.display())
            }
            Error::BadBaseline { path, detail } => {
                write!(f, "bad perf baseline {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Shared experiment context.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Baseline Monte-Carlo trial count (experiments scale it as needed).
    pub trials: u64,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Worker threads for runners and grid sweeps. Affects wall-clock
    /// only: every seeded result is identical for any value (the
    /// montecarlo chunk tiling and the [`sweep`] layer key all streams on
    /// logical indices, never on workers).
    pub threads: usize,
}

/// The machine's available parallelism (1 when it cannot be queried).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Ctx {
    /// The default context used to generate `EXPERIMENTS.md`.
    #[must_use]
    pub fn standard() -> Ctx {
        Ctx {
            trials: 200_000,
            seed: 20110606, // PODC'11, June 6 2011
            threads: default_threads(),
        }
    }

    /// A fast context for smoke tests.
    #[must_use]
    pub fn quick() -> Ctx {
        Ctx {
            trials: 10_000,
            seed: 20110606,
            threads: default_threads(),
        }
    }

    /// Replaces the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Ctx {
        self.threads = threads.max(1);
        self
    }
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx::standard()
    }
}

/// One experiment: id, paper artifact, and runner.
#[derive(Debug)]
pub struct Experiment {
    /// Short id (`t1`, `thm62`, …) used on the command line.
    pub id: &'static str,
    /// The paper artifact reproduced.
    pub artifact: &'static str,
    /// Runs the experiment, returning a report section.
    pub run: fn(&Ctx) -> String,
}

/// Every experiment, in DESIGN.md §4 order.
#[must_use]
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "t1", artifact: "Table 1 — memory-model relaxation matrix", run: exp::t1::run },
        Experiment { id: "f1", artifact: "Figure 1 — a settling-process instantiation under TSO", run: exp::f1::run },
        Experiment { id: "f2", artifact: "Figure 2 — a shift-process instantiation", run: exp::f2::run },
        Experiment { id: "thm41", artifact: "Theorem 4.1 — critical-window growth laws", run: exp::thm41::run },
        Experiment { id: "clm43", artifact: "Claim 4.3 — steady-state bottom store fraction 2/3", run: exp::clm43::run },
        Experiment { id: "lem42", artifact: "Lemma 4.2 — Pr[L_mu] bounds and series", run: exp::lem42::run },
        Experiment { id: "thm51", artifact: "Theorem 5.1 — exact shift disjointness", run: exp::thm51::run },
        Experiment { id: "cor52", artifact: "Corollary 5.2 — c(n) in [2,4], c(2) = 8/3", run: exp::cor52::run },
        Experiment { id: "thm61", artifact: "Theorem 6.1 — exchangeability reduction", run: exp::thm61::run },
        Experiment { id: "thm62", artifact: "Theorem 6.2 — two-thread survival table", run: exp::thm62::run },
        Experiment { id: "thm63", artifact: "Theorem 6.3 — large-n asymptotics", run: exp::thm63::run },
        Experiment { id: "pso", artifact: "footnote 4 — the omitted PSO result", run: exp::pso::run },
        Experiment { id: "fence", artifact: "section 7 — fences shrink windows", run: exp::fence::run },
        Experiment { id: "opsim", artifact: "section 2.2 — operational multiprocessor ground truth", run: exp::opsim::run },
        Experiment { id: "litmus", artifact: "section 2.1 semantics — SB/MP/LB litmus matrix", run: exp::litmus::run },
        Experiment { id: "general", artifact: "section 7 robustness — laws at arbitrary (p, s, q)", run: exp::general::run },
    ]
}

/// Resolves experiment ids against a registry, keeping request order.
/// An empty id list selects everything.
///
/// # Errors
///
/// [`Error::UnknownExperiment`] for any id not in `registry`.
pub fn select<'r>(registry: &'r [Experiment], ids: &[String]) -> Result<Vec<&'r Experiment>, Error> {
    if ids.is_empty() {
        return Ok(registry.iter().collect());
    }
    ids.iter()
        .map(|id| {
            registry
                .iter()
                .find(|e| e.id == id)
                .ok_or_else(|| Error::UnknownExperiment { id: id.clone() })
        })
        .collect()
}

/// Runs a set of experiment ids (all when empty), concatenating sections.
///
/// # Errors
///
/// [`Error::UnknownExperiment`] for any unknown id.
pub fn try_run_experiments(ids: &[String], ctx: &Ctx) -> Result<String, Error> {
    let registry = registry();
    let mut out = String::new();
    for e in select(&registry, ids)? {
        let _ = writeln!(out, "## {} — {}\n", e.id.to_uppercase(), e.artifact);
        out.push_str(&(e.run)(ctx));
        out.push('\n');
    }
    Ok(out)
}

/// Runs a set of experiment ids (all when empty), concatenating sections.
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn run_experiments(ids: &[String], ctx: &Ctx) -> String {
    try_run_experiments(ids, ctx).unwrap_or_else(|e| panic!("{e}"))
}

/// Formats a paper-vs-measured verdict line.
#[must_use]
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "MISMATCH"
    }
}

/// Machine-readable result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentResult {
    /// Experiment id.
    pub id: String,
    /// The paper artifact reproduced.
    pub artifact: String,
    /// Number of individual checks that reproduced.
    pub reproduced: usize,
    /// Number of individual checks that mismatched.
    pub mismatched: usize,
    /// Wall-clock seconds the experiment took. Timing only — every other
    /// field except the diagnostics' throughput is a deterministic
    /// function of `(trials, seed)`.
    pub elapsed_secs: f64,
    /// The full text section.
    pub report: String,
    /// Convergence diagnostics of every named estimate the experiment
    /// recorded (see [`diag`]); empty for purely analytic experiments.
    pub diagnostics: Vec<diag::EstimatorDiag>,
    /// True when the experiment survived on partial estimates: at least
    /// one Monte-Carlo chunk exhausted its retries under a degradation
    /// policy (chaos `hard` profile or an explicit runner setting). A
    /// degraded result is honest about its reduced sample sizes but its
    /// REPRODUCED/MISMATCH verdicts are unreliable — the suite exit-code
    /// policy reports it separately.
    #[serde(default)]
    pub degraded: bool,
    /// Faults injected and recovery actions taken while this experiment
    /// ran (deltas of the process-wide `montecarlo::fault` ledger). All
    /// zeros on fault-free runs.
    #[serde(default)]
    pub fault_ledger: FaultLedger,
}

/// Per-experiment fault and recovery tallies, copied from the
/// [`montecarlo::fault::Ledger`] deltas around the experiment's run.
///
/// Serialized with every [`ExperimentResult`] so JSON output, checkpoints,
/// and degraded reports carry their fault history. Timing-profile entries
/// (which faults fired when) can legitimately differ between bit-identical
/// runs — e.g. a capped stall landing on a different chunk — so
/// [`RunResult::strip_diagnostics`] zeroes the ledger for equality
/// comparisons, exactly like throughput numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names mirror the ledger; see montecarlo::fault
pub struct FaultLedger {
    pub injected_panics: u64,
    pub injected_stalls: u64,
    pub injected_corruptions: u64,
    pub injected_torn_writes: u64,
    pub injected_export_faults: u64,
    pub chunks_retried: u64,
    pub watchdog_requeues: u64,
    pub chunks_abandoned: u64,
    pub journal_torn_tails: u64,
}

impl From<montecarlo::fault::LedgerSnapshot> for FaultLedger {
    fn from(s: montecarlo::fault::LedgerSnapshot) -> FaultLedger {
        FaultLedger {
            injected_panics: s.injected_panics,
            injected_stalls: s.injected_stalls,
            injected_corruptions: s.injected_corruptions,
            injected_torn_writes: s.injected_torn_writes,
            injected_export_faults: s.injected_export_faults,
            chunks_retried: s.chunks_retried,
            watchdog_requeues: s.watchdog_requeues,
            chunks_abandoned: s.chunks_abandoned,
            journal_torn_tails: s.journal_torn_tails,
        }
    }
}

/// Machine-readable result of a whole run (the `--json` output and the
/// `--checkpoint` on-disk format).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RunResult {
    /// Trial count of the context.
    pub trials: u64,
    /// Master seed of the context.
    pub seed: u64,
    /// Worker threads the run used (wall-clock only; results are
    /// thread-count invariant).
    pub threads: usize,
    /// Available parallelism of the host that produced the run.
    pub host_cores: usize,
    /// Per-experiment results.
    pub experiments: Vec<ExperimentResult>,
}

impl RunResult {
    /// A copy with every environment/timing field normalized to zero
    /// (`elapsed_secs`, `threads`, `host_cores`). What remains is exactly
    /// the deterministic payload: two runs of the same `(trials, seed)`
    /// must compare equal after stripping, on any machine at any thread
    /// count.
    #[must_use]
    pub fn strip_timing(&self) -> RunResult {
        let mut stripped = self.clone();
        stripped.threads = 0;
        stripped.host_cores = 0;
        for e in &mut stripped.experiments {
            e.elapsed_secs = 0.0;
        }
        stripped
    }

    /// [`strip_timing`](RunResult::strip_timing) extended to the
    /// diagnostics layer: per-estimator throughput is zeroed alongside the
    /// environment fields. After stripping, everything left — including
    /// every diagnostic mean, half-width, RSE, and trial count — is the
    /// deterministic payload.
    #[must_use]
    pub fn strip_diagnostics(&self) -> RunResult {
        let mut stripped = self.strip_timing();
        for e in &mut stripped.experiments {
            for d in &mut e.diagnostics {
                d.trials_per_sec = 0.0;
            }
            // Which faults fired is a timing profile (stall caps, watchdog
            // races), not payload; `degraded` stays — it changes the
            // meaning of the results.
            e.fault_ledger = FaultLedger::default();
        }
        stripped
    }
}

/// Writes a crash dossier (when a dossier directory is configured) for an
/// experiment-level incident, counting it in `mc.flight.dossiers`. Dossier
/// failures never fail the run — a forensic artifact is best-effort.
fn emit_dossier(reason: &str, delta: &montecarlo::fault::LedgerSnapshot) {
    let request = obs::flight::current_request();
    match obs::flight::write_dossier(reason, request.as_deref(), &delta.named_fields()) {
        Ok(Some(_)) => obs::global().counter("mc.flight.dossiers").inc(),
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to write crash dossier ({reason}): {e}"),
    }
}

/// Runs one experiment behind an unwind boundary.
///
/// A panicking experiment becomes a result with one `MISMATCH` and a
/// report recording the panic, so one broken experiment cannot take down
/// the rest of a long batch (or a checkpointed run's accumulated state).
#[must_use]
pub fn run_one_isolated(e: &Experiment, ctx: &Ctx) -> ExperimentResult {
    let run = e.run;
    let session = diag::session();
    let ledger_before = montecarlo::fault::ledger().snapshot();
    let started = std::time::Instant::now();
    let outcome = {
        let _span = obs::span(e.id);
        std::panic::catch_unwind(move || run(ctx))
    };
    let elapsed_secs = started.elapsed().as_secs_f64();
    let ledger_delta = montecarlo::fault::ledger().snapshot().since(&ledger_before);
    let diagnostics = session.drain();
    drop(session);
    let tele = obs::global();
    tele.counter(&format!("exp.{}.runs", e.id)).inc();
    tele.counter(&format!("exp.{}.elapsed_us", e.id))
        .add(started.elapsed().as_micros() as u64);
    let mut report = match outcome {
        Ok(report) => report,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            emit_dossier("experiment_panicked", &ledger_delta);
            format!("experiment PANICKED: {msg}\n\noverall: MISMATCH\n")
        }
    };
    let degraded = ledger_delta.chunks_abandoned > 0 || ledger_delta.degraded_runs > 0;
    if degraded {
        tele.counter("exp.degraded").inc();
        emit_dossier("experiment_degraded", &ledger_delta);
        // Keep the status word distinct from the REPRODUCED/MISMATCH
        // substrings the verdict counters scan for.
        let _ = writeln!(
            report,
            "\nstatus: DEGRADED — {} chunk(s) abandoned after exhausted retries; \
             estimates are partial and verdicts above are unreliable",
            ledger_delta.chunks_abandoned
        );
    }
    ExperimentResult {
        id: e.id.to_owned(),
        artifact: e.artifact.to_owned(),
        reproduced: report.matches("REPRODUCED").count(),
        mismatched: report.matches("MISMATCH").count(),
        elapsed_secs,
        report,
        diagnostics,
        degraded,
        fault_ledger: FaultLedger::from(ledger_delta),
    }
}

/// Runs experiments and collects structured results (the `--json` path),
/// isolating each experiment behind an unwind boundary.
///
/// # Errors
///
/// [`Error::UnknownExperiment`] for any unknown id.
pub fn try_run_experiments_structured(ids: &[String], ctx: &Ctx) -> Result<RunResult, Error> {
    let registry = registry();
    let experiments = select(&registry, ids)?
        .into_iter()
        .map(|e| run_one_isolated(e, ctx))
        .collect();
    Ok(RunResult {
        trials: ctx.trials,
        seed: ctx.seed,
        threads: ctx.threads,
        host_cores: default_threads(),
        experiments,
    })
}

/// Runs experiments and collects structured results (the `--json` path).
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn run_experiments_structured(ids: &[String], ctx: &Ctx) -> RunResult {
    try_run_experiments_structured(ids, ctx).unwrap_or_else(|e| panic!("{e}"))
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// `*.tmp` file which is then renamed over the target, so a crash mid-write
/// can never leave a truncated report, JSON dump, or checkpoint behind.
///
/// # Errors
///
/// [`Error::Io`] when the temporary file cannot be written or renamed.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), Error> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "out".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents).map_err(|source| Error::Io {
        path: tmp.clone(),
        source,
    })?;
    std::fs::rename(&tmp, path).map_err(|source| Error::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Checkpoint persistence for long experiment batches.
///
/// The on-disk format is the append-only CRC-framed journal of
/// [`journal`]: a `ctx` record followed by one `exp` record per completed
/// experiment, each durably appended the moment the experiment finishes —
/// a kill -9 mid-write never loses completed records, and recovery
/// truncates any torn tail. A restart opens the journal
/// ([`journal::Journal::open`]), verifies the context matches, and skips
/// everything already present. Legacy whole-file JSON checkpoints are
/// still read (and converted on open). This module keeps the read-only
/// load/save API used by tools that don't hold a journal open.
pub mod checkpoint {
    use super::{journal, Ctx, Error, RunResult};
    use std::path::Path;

    /// Loads a checkpoint (journal or legacy JSON) read-only; `Ok(None)`
    /// when `path` does not exist or holds no complete records.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on read failure, [`Error::BadCheckpoint`] when the
    /// file is neither a journal nor a legacy checkpoint JSON.
    pub fn load(path: &Path) -> Result<Option<RunResult>, Error> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => {
                return Err(Error::Io {
                    path: path.to_path_buf(),
                    source,
                })
            }
        };
        journal::parse(path, &bytes)
    }

    /// Whether a loaded checkpoint belongs to this run context; resuming
    /// under a different trial count or seed would silently mix
    /// incompatible estimates.
    #[must_use]
    pub fn matches_ctx(prev: &RunResult, ctx: &Ctx) -> bool {
        prev.trials == ctx.trials && prev.seed == ctx.seed
    }

    /// Persists a full checkpoint atomically in journal format (see
    /// [`super::write_atomic`]). Incremental appends should use
    /// [`journal::Journal`] instead.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be written.
    pub fn save(path: &Path, state: &RunResult) -> Result<(), Error> {
        let ctx_rec = journal::CtxRecord {
            trials: state.trials,
            seed: state.seed,
            threads: state.threads,
            host_cores: state.host_cores,
        };
        super::write_atomic(path, &journal::render(&ctx_rec, &state.experiments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
        assert_eq!(reg.len(), 16);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiments(&["nope".into()], &Ctx::quick());
    }

    #[test]
    fn t1_runs_in_quick_mode() {
        let out = run_experiments(&["t1".into()], &Ctx::quick());
        assert!(out.contains("Table 1"));
        assert!(out.contains("REPRODUCED"));
    }

    #[test]
    fn structured_results_serialize() {
        let res = run_experiments_structured(&["t1".into(), "f2".into()], &Ctx::quick());
        assert_eq!(res.experiments.len(), 2);
        assert!(res.experiments.iter().all(|e| e.mismatched == 0));
        assert!(res.experiments.iter().all(|e| e.reproduced >= 1));
        let json = serde_json::to_string_pretty(&res).unwrap();
        assert!(json.contains("\"id\": \"t1\""));
    }

    #[test]
    fn select_reports_unknown_ids() {
        let reg = registry();
        let err = select(&reg, &["t1".into(), "bogus".into()]).unwrap_err();
        match &err {
            Error::UnknownExperiment { id } => assert_eq!(id, "bogus"),
            other => panic!("unexpected error: {other}"),
        }
        assert!(err.to_string().contains("\"bogus\""));
    }

    #[test]
    fn run_one_isolated_contains_panics() {
        fn explodes(_: &Ctx) -> String {
            panic!("synthetic experiment failure")
        }
        let e = Experiment {
            id: "boom",
            artifact: "none",
            run: explodes,
        };
        let res = run_one_isolated(&e, &Ctx::quick());
        assert_eq!(res.id, "boom");
        assert_eq!(res.reproduced, 0);
        assert_eq!(res.mismatched, 1);
        assert!(res.report.contains("PANICKED"), "{}", res.report);
        assert!(res.report.contains("synthetic experiment failure"));
    }

    #[test]
    fn structured_results_roundtrip_through_json() {
        let res = run_experiments_structured(&["t1".into()], &Ctx::quick());
        let json = serde_json::to_string(&res).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn checkpoint_roundtrip_and_ctx_guard() {
        let dir = std::env::temp_dir().join(format!(
            "mmr-bench-ckpt-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");

        assert!(checkpoint::load(&path).unwrap().is_none(), "no file yet");

        let ctx = Ctx::quick();
        let state = run_experiments_structured(&["t1".into()], &ctx);
        checkpoint::save(&path, &state).unwrap();
        let loaded = checkpoint::load(&path).unwrap().expect("file exists");
        assert_eq!(loaded, state);
        assert!(checkpoint::matches_ctx(&loaded, &ctx));
        assert!(!checkpoint::matches_ctx(&loaded, &Ctx::standard()));

        // No stray temporary file remains after an atomic save.
        assert!(!dir.join("state.json.tmp").exists());

        std::fs::write(&path, "{ not json").unwrap();
        let err = checkpoint::load(&path).unwrap_err();
        assert!(
            matches!(err, Error::BadCheckpoint { .. }),
            "unexpected error: {err}"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_existing_content() {
        let dir = std::env::temp_dir().join(format!(
            "mmr-bench-atomic-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.md");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!dir.join("report.md.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_display_and_source() {
        let io = Error::Io {
            path: PathBuf::from("/nope/x.json"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(io.to_string().contains("/nope/x.json"));
        assert!(std::error::Error::source(&io).is_some());
        let unk = Error::UnknownExperiment { id: "zz".into() };
        assert!(std::error::Error::source(&unk).is_none());
    }
}
