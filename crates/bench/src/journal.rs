//! Crash-safe checkpoint journal: append-only, CRC-framed, torn-tail
//! tolerant.
//!
//! A journal is a UTF-8 text file of one framed record per line:
//!
//! ```text
//! MMRJ <version> <kind> <crc32-8hex> <compact-json>\n
//! ```
//!
//! where the CRC-32 (reflected, polynomial `0xEDB88320`) covers
//! `"<version> <kind> <compact-json>"`. The first record is a `ctx` line
//! capturing the run context ([`CtxRecord`]); each completed experiment
//! appends one `exp` line ([`crate::ExperimentResult`] JSON). Records are
//! only ever appended, so a crash — including kill -9 mid-write — can
//! damage at most the final line. Recovery scans from the top, keeps the
//! longest valid prefix, truncates the torn tail (counted in
//! `mc.journal.torn_tails` and the fault ledger), and resumes appending.
//! Valid-CRC lines with an unknown version or kind are skipped, not
//! rejected, so journals survive mixed-version histories; a valid-CRC line
//! whose JSON fails to parse is corruption the frame vouched for and is a
//! hard [`Error::BadCheckpoint`].
//!
//! Legacy whole-file JSON checkpoints (the pre-journal `--checkpoint`
//! format, a pretty-printed [`crate::RunResult`]) are detected by their
//! leading `{` and converted in place on open.

use crate::{checkpoint, Ctx, Error, ExperimentResult, RunResult};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Frame tag opening every journal line.
const TAG: &str = "MMRJ";

/// Journal format version written by this build.
pub const VERSION: u32 = 1;

/// CRC-32 (reflected, polynomial `0xEDB88320`, init/xorout `0xFFFFFFFF`)
/// — the same parameters as zlib/PNG/Ethernet, so frames are checkable
/// with any standard tool.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The run-context record heading every journal: enough to rebuild a full
/// [`RunResult`] and to refuse resuming under an incompatible context.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CtxRecord {
    /// Trial count of the run.
    pub trials: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads of the recording run (informational).
    pub threads: usize,
    /// Host parallelism of the recording run (informational).
    pub host_cores: usize,
}

/// Frames one record as a journal line (with trailing newline).
fn frame(kind: &str, json: &str) -> String {
    let crc = crc32(format!("{VERSION} {kind} {json}").as_bytes());
    format!("{TAG} {VERSION} {kind} {crc:08x} {json}\n")
}

/// What a journal scan recovered.
struct Scan {
    /// Byte length of the valid prefix (everything past it is torn).
    good_len: usize,
    /// True when bytes past `good_len` had to be discarded.
    torn: bool,
    ctx: Option<CtxRecord>,
    experiments: Vec<ExperimentResult>,
}

/// Scans journal bytes, keeping the longest valid prefix. Torn or
/// unframeable data ends the scan (everything from there is the tail);
/// valid-CRC records of unknown version/kind are skipped.
///
/// # Errors
///
/// [`Error::BadCheckpoint`] when a CRC-valid current-version record
/// carries unparseable JSON — the frame vouched for these bytes, so this
/// is real corruption (or a bug), not a torn write.
fn scan(path: &Path, bytes: &[u8]) -> Result<Scan, Error> {
    let bad = |detail: String| Error::BadCheckpoint {
        path: path.to_path_buf(),
        detail,
    };
    let mut out = Scan {
        good_len: 0,
        torn: false,
        ctx: None,
        experiments: Vec::new(),
    };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // No trailing newline: an append died mid-line.
            out.torn = true;
            break;
        };
        let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) else {
            out.torn = true;
            break;
        };
        let mut parts = line.splitn(5, ' ');
        let (tag, ver, kind, crc_hex, json) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        let framed = tag == TAG
            && u32::from_str_radix(crc_hex, 16)
                .is_ok_and(|crc| crc == crc32(format!("{ver} {kind} {json}").as_bytes()));
        if !framed {
            out.torn = true;
            break;
        }
        // The frame checks out; the line is authentic. Unknown versions
        // and kinds are other builds' records — tolerated, skipped.
        if ver.parse::<u32>().is_ok_and(|v| v == VERSION) {
            match kind {
                "ctx" => {
                    let rec: CtxRecord = serde_json::from_str(json)
                        .map_err(|e| bad(format!("CRC-valid ctx record with bad JSON: {e}")))?;
                    out.ctx.get_or_insert(rec);
                }
                "exp" => {
                    let rec: ExperimentResult = serde_json::from_str(json)
                        .map_err(|e| bad(format!("CRC-valid exp record with bad JSON: {e}")))?;
                    out.experiments.push(rec);
                }
                _ => {}
            }
        }
        offset += nl + 1;
        out.good_len = offset;
    }
    Ok(out)
}

/// Renders the journal content for a context and a list of completed
/// experiments — the canonical serialization [`Journal::open`] normalizes
/// to and [`checkpoint::save`] writes.
#[must_use]
pub fn render(ctx_rec: &CtxRecord, experiments: &[ExperimentResult]) -> String {
    let mut out = frame(
        "ctx",
        &serde_json::to_string(ctx_rec).expect("CtxRecord serialization is infallible"),
    );
    for e in experiments {
        out.push_str(&frame(
            "exp",
            &serde_json::to_string(e).expect("ExperimentResult serialization is infallible"),
        ));
    }
    out
}

/// Parses journal (or legacy JSON) bytes read-only into a [`RunResult`].
///
/// Used by [`checkpoint::load`]; returns `None` for an empty file (all
/// records torn away — indistinguishable from a fresh journal).
///
/// # Errors
///
/// [`Error::BadCheckpoint`] when the bytes are neither a journal, a legacy
/// JSON checkpoint, nor empty — or when a CRC-valid record is unparseable.
pub(crate) fn parse(path: &Path, bytes: &[u8]) -> Result<Option<RunResult>, Error> {
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes.starts_with(b"{") {
        // Legacy whole-file JSON checkpoint.
        let bad = |detail: String| Error::BadCheckpoint {
            path: path.to_path_buf(),
            detail,
        };
        let text = std::str::from_utf8(bytes).map_err(|e| bad(e.to_string()))?;
        return serde_json::from_str(text)
            .map(Some)
            .map_err(|e| bad(e.to_string()));
    }
    if !bytes.starts_with(TAG.as_bytes()) {
        return Err(Error::BadCheckpoint {
            path: path.to_path_buf(),
            detail: format!("neither a {TAG} journal nor a JSON checkpoint"),
        });
    }
    let scan = scan(path, bytes)?;
    let Some(ctx) = scan.ctx else {
        return Ok(None);
    };
    Ok(Some(RunResult {
        trials: ctx.trials,
        seed: ctx.seed,
        threads: ctx.threads,
        host_cores: ctx.host_cores,
        experiments: scan.experiments,
    }))
}

/// An open, resumable checkpoint journal.
///
/// [`open`](Journal::open) recovers whatever previous runs left behind
/// (including torn tails and legacy-format files); [`append`](Journal::append)
/// durably adds one completed experiment per call. Completed records are
/// never rewritten, so no later crash can lose them.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    experiments: Vec<ExperimentResult>,
    records_written: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for the given context,
    /// recovering any valid prefix a previous run left.
    ///
    /// Recovery policy, in order: a missing or empty file starts fresh; a
    /// legacy JSON checkpoint is converted to journal format; a torn tail
    /// is truncated (counted in `mc.journal.torn_tails` and the fault
    /// ledger); a context (trials/seed) mismatch discards the recovered
    /// state with a warning, exactly like the legacy resume path.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read or (re)written —
    /// including an unwritable path, surfaced here, before any experiment
    /// runs. [`Error::BadCheckpoint`] when the file exists but is not a
    /// journal or legacy checkpoint.
    pub fn open(path: &Path, ctx: &Ctx) -> Result<Journal, Error> {
        let io = |source: std::io::Error| Error::Io {
            path: path.to_path_buf(),
            source,
        };
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(source) => return Err(io(source)),
        };

        let mut experiments = Vec::new();
        let mut ctx_rec = CtxRecord {
            trials: ctx.trials,
            seed: ctx.seed,
            threads: ctx.threads,
            host_cores: crate::default_threads(),
        };
        if !bytes.is_empty() {
            let mut prev = None;
            if bytes.starts_with(b"{") || !bytes.starts_with(TAG.as_bytes()) {
                // Legacy JSON (or garbage, which parse rejects as
                // BadCheckpoint before we touch the file).
                prev = parse(path, &bytes)?;
            } else {
                let scan = scan(path, &bytes)?;
                if scan.torn {
                    obs::global().counter("mc.journal.torn_tails").inc();
                    montecarlo::fault::ledger().note_journal_torn_tail();
                    obs::flight::event("journal_torn_tail")
                        .n((bytes.len() - scan.good_len) as u64)
                        .emit();
                    obs::info!(
                        "checkpoint {}: truncated torn tail ({} of {} bytes kept)",
                        path.display(),
                        scan.good_len,
                        bytes.len()
                    );
                }
                if let Some(rec) = scan.ctx {
                    prev = Some(RunResult {
                        trials: rec.trials,
                        seed: rec.seed,
                        threads: rec.threads,
                        host_cores: rec.host_cores,
                        experiments: scan.experiments,
                    });
                }
            }
            if let Some(prev) = prev {
                if checkpoint::matches_ctx(&prev, ctx) {
                    experiments = prev.experiments;
                    ctx_rec.threads = prev.threads;
                    ctx_rec.host_cores = prev.host_cores;
                } else {
                    obs::info!(
                        "checkpoint {} was recorded with trials = {}, seed = {}; ignoring it (current trials = {}, seed = {})",
                        path.display(),
                        prev.trials,
                        prev.seed,
                        ctx.trials,
                        ctx.seed
                    );
                }
            }
        }

        // Normalize on disk: recovered prefix (or fresh header) in journal
        // format, written atomically so a crash here cannot half-convert.
        let content = render(&ctx_rec, &experiments);
        if content.as_bytes() != bytes.as_slice() {
            crate::write_atomic(path, &content)?;
        }
        let file = OpenOptions::new().append(true).open(path).map_err(io)?;
        let records_written = 1 + experiments.len() as u64;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            experiments,
            records_written,
        })
    }

    /// Experiments recovered from (and appended to) this journal, in
    /// completion order.
    #[must_use]
    pub fn experiments(&self) -> &[ExperimentResult] {
        &self.experiments
    }

    /// Durably appends one completed experiment.
    ///
    /// Under an installed chaos plan this record's write may be torn: a
    /// partial frame is flushed first, then the *real* recovery path
    /// (rescan, truncate, count) runs before the full record is appended —
    /// so every chaos run exercises exactly the code a kill -9 relies on.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the append fails; completed records on disk are
    /// unaffected.
    pub fn append(&mut self, result: &ExperimentResult) -> Result<(), Error> {
        let io = |path: &Path| {
            let path = path.to_path_buf();
            move |source: std::io::Error| Error::Io { path, source }
        };
        let line = frame(
            "exp",
            &serde_json::to_string(result).expect("ExperimentResult serialization is infallible"),
        );
        let record_no = self.records_written;
        if let Some(plan) = montecarlo::fault::active() {
            if plan.torn_write(record_no) {
                montecarlo::fault::ledger().note_injected_torn_write();
                obs::flight::event("fault_fired").n(record_no).detail("torn_write").emit();
                // Tear the write: flush a partial frame, then recover it.
                let partial = &line.as_bytes()[..line.len() * 2 / 3];
                self.file.write_all(partial).map_err(io(&self.path))?;
                let _ = self.file.sync_data();
                self.recover_torn_tail()?;
            }
        }
        self.file.write_all(line.as_bytes()).map_err(io(&self.path))?;
        let _ = self.file.sync_data();
        obs::flight::event("journal_append").detail(&result.id).emit();
        self.records_written = record_no + 1;
        self.experiments.push(result.clone());
        Ok(())
    }

    /// Re-scans the file and truncates whatever invalid tail follows the
    /// valid prefix — the same recovery [`open`](Journal::open) performs,
    /// run in-process after an injected torn write.
    fn recover_torn_tail(&mut self) -> Result<(), Error> {
        let io = |source: std::io::Error| Error::Io {
            path: self.path.clone(),
            source,
        };
        let bytes = std::fs::read(&self.path).map_err(io)?;
        let scan = scan(&self.path, &bytes)?;
        if scan.torn {
            // The handle is in append mode, so later writes land at the
            // new, truncated end.
            self.file.set_len(scan.good_len as u64).map_err(io)?;
            obs::global().counter("mc.journal.torn_tails").inc();
            montecarlo::fault::ledger().note_journal_torn_tail();
            obs::flight::event("journal_torn_tail")
                .n((bytes.len() - scan.good_len) as u64)
                .emit();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use montecarlo::fault;

    /// The fault ledger is process-global, so tests asserting exact
    /// ledger deltas (or installing plans) serialize on this lock.
    static LEDGER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn ledger_lock() -> std::sync::MutexGuard<'static, ()> {
        LEDGER_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmr-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn result(id: &str) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            artifact: "test artifact".into(),
            reproduced: 3,
            mismatched: 0,
            elapsed_secs: 1.25,
            report: "line one\nline two: REPRODUCED\n".into(),
            diagnostics: Vec::new(),
            degraded: false,
            fault_ledger: crate::FaultLedger::default(),
        }
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_roundtrips_appends_across_reopens() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("ck.journal");
        let ctx = Ctx::quick();
        {
            let mut j = Journal::open(&path, &ctx).unwrap();
            assert!(j.experiments().is_empty());
            j.append(&result("t1")).unwrap();
            j.append(&result("f2")).unwrap();
        }
        let j = Journal::open(&path, &ctx).unwrap();
        assert_eq!(j.experiments(), &[result("t1"), result("f2")]);
        // Read-only parse agrees and carries the context.
        let run = parse(&path, &std::fs::read(&path).unwrap()).unwrap().unwrap();
        assert_eq!(run.trials, ctx.trials);
        assert_eq!(run.seed, ctx.seed);
        assert_eq!(run.experiments.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let _serial = ledger_lock();
        let dir = tmp_dir("torn");
        let path = dir.join("ck.journal");
        let ctx = Ctx::quick();
        {
            let mut j = Journal::open(&path, &ctx).unwrap();
            j.append(&result("t1")).unwrap();
        }
        let intact = std::fs::read(&path).unwrap();
        // Simulate a kill mid-append: half of a valid frame.
        let torn_line = frame("exp", &serde_json::to_string(&result("f2")).unwrap());
        let mut bytes = intact.clone();
        bytes.extend_from_slice(&torn_line.as_bytes()[..torn_line.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let before = fault::ledger().snapshot();
        let j = Journal::open(&path, &ctx).unwrap();
        assert_eq!(j.experiments(), &[result("t1")], "the torn record is gone, t1 survives");
        assert_eq!(std::fs::read(&path).unwrap(), intact, "file truncated back to the valid prefix");
        let delta = fault::ledger().snapshot().since(&before);
        assert_eq!(delta.journal_torn_tails, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_and_kind_records_are_skipped() {
        let _serial = ledger_lock();
        let dir = tmp_dir("mixed");
        let path = dir.join("ck.journal");
        let ctx = Ctx::quick();
        {
            let mut j = Journal::open(&path, &ctx).unwrap();
            j.append(&result("t1")).unwrap();
        }
        // A future-version record and an unknown kind, both CRC-valid.
        let future = format!(
            "{TAG} 99 exp {:08x} {}\n",
            crc32(b"99 exp {\"whatever\":true}"),
            "{\"whatever\":true}"
        );
        let strange = frame("note", "{\"free\":\"form\"}");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(future.as_bytes());
        bytes.extend_from_slice(strange.as_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let before = fault::ledger().snapshot();
        let j = Journal::open(&path, &ctx).unwrap();
        assert_eq!(j.experiments(), &[result("t1")]);
        assert_eq!(
            fault::ledger().snapshot().since(&before).journal_torn_tails,
            0,
            "skipping tolerated records is not torn-tail recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_json_checkpoint_is_converted_on_open() {
        let dir = tmp_dir("legacy");
        let path = dir.join("ck.journal");
        let ctx = Ctx::quick();
        let legacy = RunResult {
            trials: ctx.trials,
            seed: ctx.seed,
            threads: 3,
            host_cores: 8,
            experiments: vec![result("t1")],
        };
        std::fs::write(&path, serde_json::to_string_pretty(&legacy).unwrap()).unwrap();
        let j = Journal::open(&path, &ctx).unwrap();
        assert_eq!(j.experiments(), &[result("t1")]);
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(TAG.as_bytes()), "converted to journal format");
        let back = parse(&path, &bytes).unwrap().unwrap();
        assert_eq!(back, legacy);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn context_mismatch_resets_recovered_state() {
        let dir = tmp_dir("ctxreset");
        let path = dir.join("ck.journal");
        {
            let mut j = Journal::open(&path, &Ctx::quick()).unwrap();
            j.append(&result("t1")).unwrap();
        }
        let mut other = Ctx::quick();
        other.seed += 1;
        let j = Journal::open(&path, &other).unwrap();
        assert!(j.experiments().is_empty(), "different seed discards the state");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_is_a_bad_checkpoint_and_unwritable_path_is_io() {
        let dir = tmp_dir("errors");
        let path = dir.join("ck.journal");
        std::fs::write(&path, "definitely not a journal\n").unwrap();
        let err = Journal::open(&path, &Ctx::quick()).unwrap_err();
        assert!(matches!(err, Error::BadCheckpoint { .. }), "{err}");

        let missing = dir.join("no-such-dir").join("ck.journal");
        let err = Journal::open(&missing, &Ctx::quick()).unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_recovers_and_loses_nothing() {
        let _serial = ledger_lock();
        let dir = tmp_dir("chaos-torn");
        let path = dir.join("ck.journal");
        let ctx = Ctx::quick();
        // Find a seed whose torn profile tears record 1 (the first exp
        // append): decisions are pure, so this search is deterministic.
        let seed = (0..512)
            .find(|&s| fault::FaultPlan::new(s, fault::Profile::TornWrites).torn_write(1))
            .expect("a tearing seed exists");
        let before = fault::ledger().snapshot();
        {
            let mut j = Journal::open(&path, &ctx).unwrap();
            fault::install(fault::FaultPlan::new(seed, fault::Profile::TornWrites));
            let appended = j.append(&result("t1"));
            fault::clear();
            appended.unwrap();
        }
        let delta = fault::ledger().snapshot().since(&before);
        assert_eq!(delta.injected_torn_writes, 1);
        assert_eq!(delta.journal_torn_tails, 1);
        let j = Journal::open(&path, &ctx).unwrap();
        assert_eq!(j.experiments(), &[result("t1")], "the record survived its torn write");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
