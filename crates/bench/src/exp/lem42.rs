//! EXP-LEM42: Lemma 4.2 — `Pr[L_µ]` bounds and the partition series.

use crate::{verdict, Ctx};
use analytic::lemma42;
use memmodel::MemoryModel;
use montecarlo::{chi_square_gof, Runner, Seed};
use progmodel::ProgramGenerator;
use settle::{events, Settler};
use std::fmt::Write as _;
use textplot::Table;

/// Measures the `L_µ` distribution under TSO against (a) the paper's lower
/// bound `(4/7)·2^-µ` (µ ≥ 1) and `Pr[L_0] = 1/3`, and (b) the exact
/// partition series, plus the `h(µ)` bookkeeping of the proof.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let settler = Settler::for_model(MemoryModel::Tso);
    let gen = ProgramGenerator::new(64);
    let h = Runner::new(Seed(ctx.seed ^ 0x42)).with_threads(ctx.threads).histogram(ctx.trials, move |rng| {
        let program = gen.generate(rng);
        events::observe_l_mu(&settler, &program, rng)
    });

    let series = lemma42::pr_l_mu_series_all(96, lemma42::DEFAULT_Q_MAX);
    let mut table = Table::new(vec!["mu", "paper lower bound", "series", "measured"]);
    let mut bound_ok = true;
    for mu in 0..=8u64 {
        let lower = lemma42::pr_l_mu_lower_bound(mu as u32);
        let s = series[mu as usize];
        let measured = h.pmf(mu);
        // The measured value (up to MC noise) must respect the bound.
        let est = montecarlo::BernoulliEstimate::from_counts(h.count(mu), h.total());
        bound_ok &= est.wilson_ci(0.999).1 >= lower;
        table.row(vec![
            mu.to_string(),
            format!("{lower:.6}"),
            format!("{s:.6}"),
            format!("{measured:.6}"),
        ]);
    }
    out.push_str(&table.render());

    let gof = chi_square_gof(&h, |mu| series.get(mu as usize).copied().unwrap_or(0.0), 5.0);
    let gof_ok = gof.consistent_at(0.001);
    let _ = writeln!(
        out,
        "\npartition series chi-square = {:.2} (dof {}), p = {:.4} -> {}",
        gof.statistic,
        gof.dof,
        gof.p_value,
        verdict(gof_ok)
    );

    // Proof bookkeeping: h(1) = 4/7, h increasing, remainder R = 2/21.
    let h1 = lemma42::h_exact(1);
    let h_ok = h1 == analytic::BigRational::ratio(4, 7)
        && (1..30).all(|mu| lemma42::h(mu + 1) > lemma42::h(mu))
        && lemma42::remainder_r() == analytic::BigRational::ratio(2, 21);
    let _ = writeln!(
        out,
        "h(1) = {h1} (paper 4/7), h increasing, R = {} (paper 2/21): {}",
        lemma42::remainder_r(),
        verdict(h_ok)
    );

    // Claim 4.4 check: exact Pr[F | Psi = q] dominates the paper's bound.
    let mut f_ok = true;
    for mu in 1..=10u32 {
        for q in 0..=10u32 {
            f_ok &= lemma42::pr_f_given_psi(mu, q)
                >= lemma42::pr_f_given_psi_lower_bound(mu, q) - 1e-12;
        }
    }
    let _ = writeln!(out, "Claim 4.4 partition bound holds on mu,q <= 10: {}", verdict(f_ok));

    let ok = bound_ok && gof_ok && h_ok && f_ok;
    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_lemma_42() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
