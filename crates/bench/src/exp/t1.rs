//! EXP-T1: Table 1 — the memory-model relaxation matrix.

use crate::{verdict, Ctx};
use memmodel::OpType::{Ld, St};
use memmodel::{render_table1, MemoryModel};
use std::fmt::Write as _;

/// Renders Table 1 from the implemented models and checks every cell
/// against the paper's row definitions.
pub fn run(_ctx: &Ctx) -> String {
    let mut out = String::new();
    out.push_str("Paper Table 1 (X = ordering restriction relaxed):\n\n");
    out.push_str(&render_table1());

    // The paper's rows, column order ST/ST, ST/LD, LD/ST, LD/LD.
    let expected = [
        (MemoryModel::Sc, [false, false, false, false]),
        (MemoryModel::Tso, [false, true, false, false]),
        (MemoryModel::Pso, [true, true, false, false]),
        (MemoryModel::Wo, [true, true, true, true]),
    ];
    let mut ok = true;
    for (model, cells) in expected {
        let m = model.matrix();
        let got = [
            m.allows(St, St),
            m.allows(St, Ld),
            m.allows(Ld, St),
            m.allows(Ld, Ld),
        ];
        if got != cells {
            ok = false;
            let _ = writeln!(out, "  cell mismatch for {model}: {got:?} vs {cells:?}");
        }
    }
    let _ = writeln!(out, "\nall 16 cells match the paper: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_all_cells() {
        let out = run(&Ctx::quick());
        assert!(out.contains("REPRODUCED"));
        assert!(!out.contains("MISMATCH"));
    }
}
