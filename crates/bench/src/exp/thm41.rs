//! EXP-THM41: Theorem 4.1 — the critical-window growth laws.

use crate::{verdict, Ctx};
use analytic::window_law::{self, WindowLaws};
use memmodel::{MemoryModel, OpType};
use montecarlo::{chi_square_gof, Histogram, Runner, Seed};
use progmodel::{Program, ProgramGenerator};
use settle::{SettleScratch, Settler};
use std::fmt::Write as _;
use textplot::Table;

const M: usize = 64;

/// Seeded window histogram through the allocation-free settle kernel;
/// draw-for-draw identical to the old `generate` + `sample_gamma` route.
fn gamma_histogram(settler: Settler, m: usize, trials: u64, seed: u64, threads: usize) -> Histogram {
    Runner::new(Seed(seed)).with_threads(threads).histogram_scratch(
        trials,
        move || {
            let program =
                Program::from_filler_types(&vec![OpType::Ld; m]).expect("canonical shape");
            (program, SettleScratch::with_capacity(m + 2))
        },
        move |(program, scratch), rng| {
            ProgramGenerator::new(m).regenerate(program, rng);
            settler.sample_gamma_scratch(program, scratch, rng)
        },
    )
}

/// Per model: Monte-Carlo window histogram vs the closed-form / series law,
/// with a chi-square verdict, plus an `m`-truncation ablation.
pub fn run(ctx: &Ctx) -> String {
    let laws = WindowLaws::new();
    let mut out = String::new();
    let mut all_ok = true;

    let mut table = Table::new(vec![
        "model", "gamma", "paper Pr[B_gamma]", "measured", "",
    ]);
    for (mi, model) in MemoryModel::NAMED.into_iter().enumerate() {
        let settler = Settler::for_model(model);
        let h = gamma_histogram(settler, M, ctx.trials, ctx.seed.wrapping_add(mi as u64), ctx.threads);
        for gamma in 0..=4u64 {
            let paper = laws.pmf(model, gamma).expect("named model");
            let measured = h.pmf(gamma);
            table.row(vec![
                model.short_name().into(),
                gamma.to_string(),
                format!("{paper:.6}"),
                format!("{measured:.6}"),
                String::new(),
            ]);
        }
        if model == MemoryModel::Sc {
            // Point mass: chi-square is degenerate; check the support directly.
            let ok = h.count(0) == h.total();
            all_ok &= ok;
            let _ = writeln!(out, "SC : window never grew in {} runs -> {}", h.total(), verdict(ok));
        } else {
            let gof = chi_square_gof(&h, |g| laws.pmf(model, g).expect("named model"), 5.0);
            let ok = gof.consistent_at(0.001);
            all_ok &= ok;
            let _ = writeln!(
                out,
                "{}: chi-square = {:.2} (dof {}), p = {:.4} -> {}",
                model.short_name(),
                gof.statistic,
                gof.dof,
                gof.p_value,
                verdict(ok)
            );
        }
    }
    out.push('\n');
    out.push_str(&table.render());

    // The paper's TSO bounds for a few gamma values.
    out.push_str("\nTSO bounds (Theorem 4.1): (6/7)4^-g <= Pr[B_g] <= (6/7)4^-g + (2/21)2^-g\n");
    let tso = laws.tso();
    let mut bounds_ok = true;
    for gamma in 1..=6u64 {
        let (lo, hi) = window_law::tso_pmf_bounds(gamma);
        let series = tso.pmf(gamma);
        bounds_ok &= series >= lo - 1e-10 && series <= hi + 1e-10;
        let _ = writeln!(
            out,
            "  gamma={gamma}: [{lo:.6}, {hi:.6}] series {series:.6}"
        );
    }
    all_ok &= bounds_ok;
    let _ = writeln!(out, "series within paper bounds: {}", verdict(bounds_ok));

    // Ablation: finite-m truncation (DESIGN.md decision 2).
    out.push_str("\nablation: WO tail mass Pr[gamma >= 5] vs filler length m\n");
    let exact_tail: f64 = (5..200).map(window_law::wo_pmf).sum();
    for m in [8usize, 16, 32, 64] {
        let settler = Settler::for_model(MemoryModel::Wo);
        let h = gamma_histogram(settler, m, ctx.trials / 4, ctx.seed ^ 0xAB, ctx.threads);
        let _ = writeln!(
            out,
            "  m={m:<3} tail {:.6} (exact m->inf: {exact_tail:.6})",
            h.tail(5)
        );
    }

    let _ = writeln!(out, "\noverall: {}", verdict(all_ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_window_laws() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
