//! EXP-F2: Figure 2 — a shift-process instantiation.

use crate::{verdict, Ctx};
use analytic::geom::Geometric;
use shiftproc::Segment;
use std::fmt::Write as _;

/// Reproduces Figure 2: three segments `γ̄ = (3, 2, 5)` shifted by
/// `(8, 0, 2)`; the paper computes the probability of this particular shift
/// as `2^-8-1 · 2^-0-1 · 2^-2-1 = 2^-13`.
pub fn run(_ctx: &Ctx) -> String {
    let lengths = [3u64, 2, 5];
    let shifts = [8u64, 0, 2];

    let mut out = String::new();
    let g = Geometric::half();
    let prob: f64 = shifts.iter().map(|&s| g.pmf(s)).product();
    let _ = writeln!(
        out,
        "shift vector {shifts:?} for lengths {lengths:?}: probability {prob:e} (paper: 2^-13 = {:e})",
        2f64.powi(-13)
    );
    let prob_ok = (prob - 2f64.powi(-13)).abs() < 1e-18;

    // Render the segments on the vertical number line like the figure.
    let segs: Vec<Segment> = lengths
        .iter()
        .zip(shifts)
        .map(|(&l, s)| Segment::new(s, l))
        .collect();
    let top = segs.iter().map(Segment::end).max().unwrap_or(0);
    for level in (0..=top).rev() {
        let mut row = format!("{level:>3} ");
        for s in &segs {
            let mark = if (s.start()..=s.end()).contains(&level) {
                '█'
            } else {
                '·'
            };
            let _ = write!(row, "  {mark}");
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out, "      γ1  γ2  γ3");

    // Under Definition 1's closed-interval convention segments 2 and 3
    // touch at point 2, so the drawn shift is *not* disjoint; the figure's
    // visual (open) reading is. Report both.
    let drawn_disjoint = Segment::all_disjoint(&segs);
    let _ = writeln!(
        out,
        "\ndrawn shift disjoint under Definition 1 (closed intervals): {drawn_disjoint}"
    );
    let _ = writeln!(
        out,
        "(segments 2 and 3 share the point 2 — under the paper's normative closed-interval"
    );
    let _ = writeln!(
        out,
        " convention, which all Theorem 6.2 constants require, touching counts as overlap)"
    );
    let separated = [Segment::new(9, 3), Segment::new(0, 2), Segment::new(3, 5)];
    let _ = writeln!(
        out,
        "one extra step of separation restores disjointness: {}",
        Segment::all_disjoint(&separated)
    );

    let ok = prob_ok && !drawn_disjoint && Segment::all_disjoint(&separated);
    let _ = writeln!(out, "\nshift probability 2^-13 and overlap semantics: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure_2() {
        let out = run(&Ctx::quick());
        assert!(out.contains("REPRODUCED"));
        assert!(out.contains("2^-13"));
    }
}
