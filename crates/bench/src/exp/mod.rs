//! The individual experiments, one module per paper artifact.

pub mod clm43;
pub mod cor52;
pub mod f1;
pub mod f2;
pub mod fence;
pub mod general;
pub mod lem42;
pub mod litmus;
pub mod opsim;
pub mod pso;
pub mod t1;
pub mod thm41;
pub mod thm51;
pub mod thm61;
pub mod thm62;
pub mod thm63;
