//! EXP-THM62: Theorem 6.2 — the headline two-thread survival table.

use crate::{verdict, Ctx};
use analytic::thm62;
use memmodel::MemoryModel;
use mmr_core::ModelComparison;
use std::fmt::Write as _;
use textplot::BarChart;

/// Reproduces the paper's central table:
///
/// | model | paper `Pr[A]` |
/// |---|---|
/// | SC  | `1/6 ≈ 0.1666` |
/// | TSO | `(0.1315, 0.1369)` |
/// | WO  | `7/54 ≈ 0.1296` |
///
/// by exact constants, the window-law series, and end-to-end simulation.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();

    // Exact constants.
    let _ = writeln!(out, "paper constants (exact rationals):");
    let _ = writeln!(
        out,
        "  SC  Pr[A] = {} = {:.6}",
        thm62::sc_survival(),
        thm62::sc_survival().to_f64()
    );
    let (lo, hi) = thm62::tso_survival_bounds();
    let _ = writeln!(
        out,
        "  TSO Pr[A] in ({lo}, {hi}) = ({:.6}, {:.6})",
        lo.to_f64(),
        hi.to_f64()
    );
    let _ = writeln!(
        out,
        "  WO  Pr[A] = {} = {:.6}",
        thm62::wo_survival(),
        thm62::wo_survival().to_f64()
    );
    let _ = writeln!(
        out,
        "  SC/WO ratio = {} (paper: 9/7)\n",
        thm62::sc_over_wo_ratio()
    );

    // End-to-end simulation of every named model.
    let started = std::time::Instant::now();
    let cmp = ModelComparison::run_with(2, ctx.trials, ctx.seed ^ 0x62, ctx.threads);
    let cmp_elapsed = started.elapsed();
    for row in cmp.rows() {
        crate::diag::record(crate::diag::EstimatorDiag::from_stats(
            format!("thm62.{}", row.model.short_name()),
            &row.estimate,
            cmp_elapsed,
        ));
    }
    out.push_str(&cmp.to_string());

    let mut ok = cmp.rows().iter().all(|r| r.consistent(0.999));

    // Window-series cross-check.
    out.push_str("\nwindow-series route (Pr[A] = (2/3) E[2^-Gamma]):\n");
    for model in MemoryModel::NAMED {
        let s = thm62::survival_from_window_series(model).expect("named model");
        let _ = writeln!(out, "  {:<4} {s:.6}", model.short_name());
    }

    // Qualitative claims, judged at interval resolution: adjacent models
    // can be nearly tied (TSO and WO differ by under 0.005, below one
    // standard error at quick-mode trial counts), so "A > B" is only
    // refuted when the intervals are disjoint in the wrong direction.
    let p = |m| cmp.row(m).unwrap().estimate.point();
    let ci = |m| cmp.row(m).unwrap().estimate.wilson_ci(0.999);
    let upholds_gt = |a: MemoryModel, b: MemoryModel| ci(a).1 >= ci(b).0;
    let order_ok = upholds_gt(MemoryModel::Sc, MemoryModel::Pso)
        && upholds_gt(MemoryModel::Pso, MemoryModel::Tso)
        && upholds_gt(MemoryModel::Tso, MemoryModel::Wo);
    let closer_ok = (p(MemoryModel::Tso) - p(MemoryModel::Wo)).abs()
        < (p(MemoryModel::Tso) - p(MemoryModel::Sc)).abs();
    ok &= order_ok && closer_ok;
    let _ = writeln!(
        out,
        "\nsurvival ordering SC > PSO > TSO > WO: {}",
        verdict(order_ok)
    );
    let _ = writeln!(
        out,
        "TSO closer to WO than to SC (paper's observation): {}",
        verdict(closer_ok)
    );

    let mut bars = BarChart::new(40);
    for row in cmp.rows() {
        bars.bar(row.model.short_name(), row.estimate.point());
    }
    out.push('\n');
    out.push_str(&bars.render());

    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_theorem_62() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
