//! EXP-PSO: footnote 4 — the Partial Store Order result the paper omits.

use crate::{verdict, Ctx};
use analytic::thm62;
use analytic::window_law::WindowLaws;
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use std::fmt::Write as _;
use textplot::Table;

/// Derives the PSO window law (TSO law + critical-store climb-back) and the
/// two-thread survival number, verifying footnote 4's claim that "a very
/// similar analysis achieves a similar result for PSO" — and pinning down
/// where PSO lands: *between SC and TSO*, because the extra ST/ST
/// relaxation lets the critical store shrink the window.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let laws = WindowLaws::new();

    let mut table = Table::new(vec!["gamma", "TSO law", "PSO law (derived)"]);
    for gamma in 0..=6u64 {
        table.row(vec![
            gamma.to_string(),
            format!("{:.6}", laws.pmf(MemoryModel::Tso, gamma).unwrap()),
            format!("{:.6}", laws.pmf(MemoryModel::Pso, gamma).unwrap()),
        ]);
    }
    out.push_str(&table.render());

    let pso = thm62::survival_from_window_series(MemoryModel::Pso).expect("named model");
    let sc = thm62::sc_survival().to_f64();
    let (tso_lo, _) = thm62::tso_survival_bounds();
    let _ = writeln!(
        out,
        "\nPSO two-thread survival (series): {pso:.6}; SC {sc:.6}, TSO > {:.6}",
        tso_lo.to_f64()
    );

    // End-to-end simulation agreement.
    let rm = ReliabilityModel::new(MemoryModel::Pso, 2);
    let est = rm.simulate_survival_with(ctx.trials, ctx.seed ^ 0x50, ctx.threads);
    let covered = est.covers(pso, 0.999);
    let _ = writeln!(out, "end-to-end simulation: {est} -> {}", verdict(covered));

    // Placement between SC and TSO.
    let tso = thm62::survival_from_window_series(MemoryModel::Tso).expect("named model");
    let placed = pso < sc && pso > tso;
    let _ = writeln!(
        out,
        "PSO sits strictly between SC and TSO: {}",
        verdict(placed)
    );

    let ok = covered && placed;
    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_pso_extension() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
