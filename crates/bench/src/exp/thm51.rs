//! EXP-THM51: Theorem 5.1 — exact shift-process disjointness.

use crate::{verdict, Ctx};
use montecarlo::{Runner, Seed};
use shiftproc::{exact, ShiftProcess, ShiftScratch};
use std::fmt::Write as _;
use textplot::Table;

/// Cross-checks the three `Pr[A(γ̄)]` evaluators (permutation sum, subset
/// DP, exact rationals) and validates them against direct simulation across
/// assorted segment vectors.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let cases: &[&[u64]] = &[
        &[2, 2],
        &[2, 5],
        &[2, 2, 2],
        &[1, 3, 5],
        &[2, 2, 2, 2],
        &[0, 1, 2, 3, 4],
        &[2, 2, 2, 2, 2, 2],
    ];
    let mut table = Table::new(vec![
        "segments", "perm-sum", "subset-DP", "exact", "simulated", "covered",
    ]);
    let mut ok = true;
    for (i, &lengths) in cases.iter().enumerate() {
        let perm = exact::pr_disjoint_perm_sum(lengths);
        let dp = exact::pr_disjoint(lengths);
        let rational = exact::pr_disjoint_exact(lengths).to_f64();
        let agree = (perm - dp).abs() < 1e-10 && (dp - rational).abs() < 1e-10;
        let proc = ShiftProcess::canonical();
        let report = Runner::new(Seed(ctx.seed.wrapping_add(i as u64)))
            .with_threads(ctx.threads)
            .try_bernoulli_scratch(
                ctx.trials,
                move || ShiftScratch::with_capacity(lengths.len()),
                move |scratch, rng| proc.simulate_disjoint_into(lengths, scratch, rng),
            )
            .expect("panic-free simulation");
        crate::diag::record_report(format!("thm51.case{i}"), &report);
        let est = report.value;
        let covered = est.covers(dp, 0.999);
        ok &= agree && covered;
        table.row(vec![
            format!("{lengths:?}"),
            format!("{perm:.6}"),
            format!("{dp:.6}"),
            format!("{rational:.6}"),
            format!("{:.6}", est.point()),
            covered.to_string(),
        ]);
    }
    out.push_str(&table.render());

    // The theorem's structure: Pr factors into prefactor times a permanent.
    let _ = writeln!(
        out,
        "\ntwo-segment closed form (1/3)(2^-g1 + 2^-g2) check: {}",
        verdict(
            (exact::pr_disjoint(&[3, 4]) - (2f64.powi(-3) + 2f64.powi(-4)) / 3.0).abs() < 1e-12
        )
    );

    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_theorem_51() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
