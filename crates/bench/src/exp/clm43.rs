//! EXP-CLM43: Claim 4.3 — the steady-state bottom store fraction.

use crate::{verdict, Ctx};
use analytic::recurrence;
use memmodel::MemoryModel;
use montecarlo::{Runner, Seed};
use progmodel::ProgramGenerator;
use settle::{events, Settler};
use std::fmt::Write as _;
use textplot::Table;

/// Measures `Pr[S_{ST,i}(i)]` under TSO at increasing `i` against the exact
/// recurrence `X_i = 1/2 + X_{i-1}/4` and its `2/3` limit, plus the
/// generalised fixed point `p / (1 − (1−p)s)` at other parameters.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let settler = Settler::for_model(MemoryModel::Tso);
    let mut ok = true;

    let mut table = Table::new(vec!["i", "paper X_i", "measured", "covered"]);
    for (k, i) in [1usize, 2, 3, 4, 8, 16, 48].into_iter().enumerate() {
        let gen = ProgramGenerator::new(48);
        let report = Runner::new(Seed(ctx.seed.wrapping_add(k as u64)))
            .with_threads(ctx.threads)
            .try_bernoulli(ctx.trials, move |rng| {
                let program = gen.generate(rng);
                events::observe_bottom_store(&settler, &program, i, rng)
            })
            .expect("panic-free simulation");
        crate::diag::record_report(format!("clm43.i{i}"), &report);
        let est = report.value;
        let paper = recurrence::bottom_store_fraction(0.5, 0.5, i as u64);
        let covered = est.covers(paper, 0.999);
        ok &= covered;
        table.row(vec![
            i.to_string(),
            format!("{paper:.6}"),
            format!("{:.6}", est.point()),
            covered.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nlimit: 2/3 = {:.6} (exact rational {})",
        2.0 / 3.0,
        recurrence::bottom_store_fraction_limit_canonical()
    );

    // Generalised parameters (footnote 3 model).
    out.push_str("\ngeneralised fixed point p / (1 - (1-p)s):\n");
    for (p, s) in [(0.3f64, 0.5f64), (0.7, 0.5), (0.5, 0.8)] {
        let limit = recurrence::bottom_store_fraction_limit(p, s);
        let gen = ProgramGenerator::new(48).with_store_probability(p).expect("valid p");
        let settler_g = Settler::new(
            MemoryModel::Tso.matrix(),
            memmodel::SettleProbs::uniform(s).expect("valid s"),
        );
        let est = Runner::new(Seed(ctx.seed ^ ((p * 100.0) as u64) ^ ((s * 10.0) as u64)))
            .with_threads(ctx.threads)
            .bernoulli(ctx.trials / 2, move |rng| {
                let program = gen.generate(rng);
                events::observe_bottom_store(&settler_g, &program, 48, rng)
            });
        let covered = est.covers(limit, 0.999);
        ok &= covered;
        let _ = writeln!(
            out,
            "  p={p} s={s}: limit {limit:.6}, measured {:.6} -> {}",
            est.point(),
            verdict(covered)
        );
    }

    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_claim_43() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
