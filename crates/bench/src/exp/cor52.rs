//! EXP-COR52: Corollary 5.2 — `c(n) ∈ [2, 4]`, `c(2) = 8/3`.

use crate::{verdict, Ctx};
use analytic::shift_law;
use analytic::BigRational;
use std::fmt::Write as _;
use textplot::sparkline;

/// Evaluates `c(n)` exactly over a wide range of `n` and checks the
/// corollary's claims.
pub fn run(_ctx: &Ctx) -> String {
    let mut out = String::new();

    let c2 = shift_law::c_n_exact(2);
    let c2_ok = c2 == BigRational::ratio(8, 3);
    let _ = writeln!(out, "c(2) = {c2} (paper: 8/3 exactly) -> {}", verdict(c2_ok));

    let values: Vec<f64> = (1..=64).map(shift_law::c_n).collect();
    let range_ok = values.iter().all(|&c| (2.0..=4.0).contains(&c));
    let monotone = values.windows(2).all(|w| w[0] <= w[1]);
    let _ = writeln!(
        out,
        "c(n) for n = 1..64: min {:.6}, max {:.6}, limit c(inf) = {:.9}",
        values.first().unwrap(),
        values.last().unwrap(),
        shift_law::c_infinity()
    );
    let _ = writeln!(out, "  {}", sparkline(&values));
    let _ = writeln!(
        out,
        "c(n) in [2, 4] for all n (paper's claim): {}",
        verdict(range_ok)
    );
    let _ = writeln!(out, "c(n) increasing: {}", verdict(monotone));

    // Exact rationals agree with floats out to n = 32.
    let exact_ok = (1..=32u32)
        .all(|n| (shift_law::c_n_exact(n).to_f64() - shift_law::c_n(n)).abs() < 1e-12);
    let _ = writeln!(out, "exact rationals match floats (n <= 32): {}", verdict(exact_ok));

    // The paper's derivation bound: the product term is at least 1/2.
    let product: f64 = 2.0 / shift_law::c_infinity();
    let half_ok = product > 0.5;
    let _ = writeln!(
        out,
        "prod (1 - 2^-i) = {product:.6} > 1/2 (Appendix B.2): {}",
        verdict(half_ok)
    );

    let ok = c2_ok && range_ok && monotone && exact_ok && half_ok;
    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_corollary_52() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
