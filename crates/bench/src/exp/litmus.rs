//! EXP-LITMUS: the SB/MP/LB litmus matrix — operational semantics match
//! the Table 1 relaxations.

use crate::{verdict, Ctx};
use execsim::litmus;
use execsim::SimParams;
use memmodel::MemoryModel;
use montecarlo::task_rng;
use montecarlo::Seed;
use std::fmt::Write as _;
use textplot::Table;

/// Runs the three classic litmus tests under every model and checks the
/// allow/forbid matrix implied by Table 1:
///
/// * SB needs ST→LD (TSO and weaker),
/// * MP needs ST→ST or LD→LD (PSO and weaker),
/// * LB needs LD→ST (WO only).
pub fn run(ctx: &Ctx) -> String {
    let trials = (ctx.trials / 10).max(2_000);
    let expected: [(&str, [bool; 4]); 3] = [
        ("SB", [false, true, true, true]),
        ("MP", [false, false, true, true]),
        ("LB", [false, false, false, true]),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "relaxed-outcome frequency over {trials} unstaggered runs (0 = forbidden):\n"
    );
    let mut table = Table::new(vec!["test", "SC", "TSO", "PSO", "WO", "matrix"]);
    let mut ok = true;
    for (ti, test) in litmus::all().into_iter().enumerate() {
        let mut cells = vec![test.name.to_string()];
        let mut observed = [false; 4];
        for (mi, model) in MemoryModel::NAMED.into_iter().enumerate() {
            let params = SimParams::for_model(model).without_stagger();
            let mut rng = task_rng(Seed(ctx.seed), (ti * 10 + mi) as u64);
            let count = test.relaxed_outcome_count(params, trials, &mut rng);
            observed[mi] = count > 0;
            cells.push(format!("{:.4}", count as f64 / trials as f64));
        }
        let (name, expect) = expected[ti];
        debug_assert_eq!(name, test.name);
        let row_ok = observed == expect;
        ok &= row_ok;
        cells.push(verdict(row_ok).to_string());
        table.row(cells);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npaper matrix: SB needs ST/LD; MP needs ST/ST or LD/LD; LB needs LD/ST"
    );
    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_litmus_matrix() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
