//! EXP-THM63: Theorem 6.3 — `Pr[A] = e^{-n²(1+o(1))}` for every model.

use crate::{verdict, Ctx};
use analytic::thm63;
use analytic::window_law::WindowLaws;
use memmodel::MemoryModel;
use mmr_core::scaling_curve_with;
use std::fmt::Write as _;
use textplot::{Chart, Table};

/// Two complementary routes to the paper's asymptotics:
///
/// * the Rao-Blackwellised (Theorem 6.1) estimator on the paper's
///   shared-program model, for `n` up to 16 — beyond that the sampled mean
///   is dominated by all-small-window vectors of probability `(2/3)ⁿ` and
///   a fixed trial budget under-covers them;
/// * the exact iid-window evaluation (exact for WO, the independent-program
///   variant for TSO/PSO), for `n` up to 64.
///
/// Both show the normalised exponent `−log2 Pr[A]/n²` converging across
/// models, and the Claim B.2 sandwich `(n−1)/n² → 0` pins the gap
/// rigorously at every `n`.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let laws = WindowLaws::new();

    // Route 1: sampled RB on the shared-program model.
    let ns_rb = [2usize, 3, 4, 6, 8, 12, 16];
    let trials = (ctx.trials / 2).max(2_000);
    let points =
        scaling_curve_with(&MemoryModel::NAMED, &ns_rb, trials, ctx.seed ^ 0x63, ctx.threads);
    let mut table = Table::new(vec!["n", "SC", "TSO", "PSO", "WO", "SC exact", "sandwich"]);
    for &n in &ns_rb {
        let get = |model| {
            points
                .iter()
                .find(|p| p.n == n && p.model == model)
                .map(|p| p.normalized_exponent)
                .expect("point present")
        };
        table.row(vec![
            n.to_string(),
            format!("{:.4}", get(MemoryModel::Sc)),
            format!("{:.4}", get(MemoryModel::Tso)),
            format!("{:.4}", get(MemoryModel::Pso)),
            format!("{:.4}", get(MemoryModel::Wo)),
            format!("{:.4}", -thm63::sc_log2_survival(n as u32) / (n * n) as f64),
            format!("{:.4}", thm63::sandwich_width(n as u32)),
        ]);
    }
    let _ = writeln!(
        out,
        "normalised exponent -log2 Pr[A] / n^2, shared-program model (RB estimator):\n"
    );
    out.push_str(&table.render());

    let spread = |n: usize| {
        let at: Vec<f64> = points
            .iter()
            .filter(|p| p.n == n)
            .map(|p| p.normalized_exponent)
            .collect();
        at.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - at.iter().copied().fold(f64::INFINITY, f64::min)
    };
    let rb_shrink = spread(16) < spread(2);
    let _ = writeln!(
        out,
        "\nRB exponent spread: n=2 -> {:.4}, n=16 -> {:.4}: {}",
        spread(2),
        spread(16),
        verdict(rb_shrink)
    );

    // Claim B.2 sandwich on the RB range.
    let mut sandwich_ok = true;
    for &n in &ns_rb[1..] {
        let lower = thm63::universal_log2_survival_lower_bound(n as u32);
        let upper = thm63::sc_log2_survival(n as u32);
        for p in points.iter().filter(|p| p.n == n) {
            sandwich_ok &= p.log2_survival >= lower - 1.0 && p.log2_survival <= upper + 1.0;
        }
    }
    let _ = writeln!(
        out,
        "every model inside the Claim B.2 sandwich [SC - (n-1), SC]: {}",
        verdict(sandwich_ok)
    );

    // Route 2: exact iid-window curves out to n = 64.
    let ns_iid = [2u32, 4, 8, 16, 32, 64];
    let _ = writeln!(
        out,
        "\nexact iid-window route (exact for WO; independent-program variant for TSO/PSO):\n"
    );
    let mut table2 = Table::new(vec!["n", "SC", "TSO", "PSO", "WO", "WO-SC gap"]);
    let mut iid_points: Vec<(MemoryModel, u32, f64)> = Vec::new();
    for &n in &ns_iid {
        let nn = f64::from(n) * f64::from(n);
        let mut cells = vec![n.to_string()];
        let mut wo_exp = 0.0;
        let sc_exp = -thm63::sc_log2_survival(n) / nn;
        for model in MemoryModel::NAMED {
            let exponent = match model {
                MemoryModel::Sc => sc_exp,
                _ => {
                    let pmf = |g: u64| laws.pmf(model, g).expect("named model");
                    -thm63::log2_survival_iid_windows(n, pmf, 90) / nn
                }
            };
            if model == MemoryModel::Wo {
                wo_exp = exponent;
            }
            iid_points.push((model, n, exponent));
            cells.push(format!("{exponent:.4}"));
        }
        cells.push(format!("{:.4}", (wo_exp - sc_exp).abs()));
        table2.row(cells);
    }
    out.push_str(&table2.render());

    let gap = |n: u32| {
        let at: Vec<f64> = iid_points
            .iter()
            .filter(|&&(_, pn, _)| pn == n)
            .map(|&(_, _, e)| e)
            .collect();
        at.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - at.iter().copied().fold(f64::INFINITY, f64::min)
    };
    let iid_shrink = gap(64) < gap(16) && gap(16) < gap(4) && gap(64) < 0.02;
    let _ = writeln!(
        out,
        "\niid exponent spread: n=4 -> {:.4}, n=16 -> {:.4}, n=64 -> {:.4}: {}",
        gap(4),
        gap(16),
        gap(64),
        verdict(iid_shrink)
    );

    // SC convergence towards 3/2 (exact).
    let sc_seq: Vec<f64> = ns_iid
        .iter()
        .map(|&n| -thm63::sc_log2_survival(n) / (f64::from(n) * f64::from(n)))
        .collect();
    let sc_ok = sc_seq
        .windows(2)
        .all(|w| (w[1] - 1.5).abs() <= (w[0] - 1.5).abs() + 1e-12)
        && (sc_seq.last().unwrap() - 1.5).abs() < 0.15;
    let _ = writeln!(
        out,
        "SC exponent marches to 3/2 (exact computation): {}",
        verdict(sc_ok)
    );

    // Chart of the iid-route exponents.
    let mut chart = Chart::new(60, 14);
    chart.title("normalised exponent vs n (iid-window route)");
    for model in MemoryModel::NAMED {
        chart.series(
            model.short_name(),
            iid_points
                .iter()
                .filter(|&&(m, _, _)| m == model)
                .map(|&(_, n, e)| (f64::from(n), e)),
        );
    }
    out.push('\n');
    out.push_str(&chart.render());

    let ok = rb_shrink && sandwich_ok && iid_shrink && sc_ok;
    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_theorem_63() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
