//! EXP-FENCE: §7 — fences shrink windows and raise survival.

use crate::{verdict, Ctx};
use memmodel::fence::FenceKind;
use memmodel::{MemoryModel, OpType};
use montecarlo::{Runner, Seed};
use progmodel::{Program, ProgramGenerator};
use settle::{SettleScratch, Settler};
use shiftproc::{ShiftProcess, ShiftScratch};
use std::fmt::Write as _;
use textplot::Table;

const M: usize = 48;

/// A placeholder program of `M` fillers with `fence` (if any) just before
/// the critical load — the reusable template the scratch kernels regenerate
/// in place, matching the old per-trial `generate` + `with_fence_at` route
/// draw for draw (fence insertion consumes no randomness).
fn template(fence: Option<FenceKind>) -> Program {
    let program = Program::from_filler_types(&[OpType::Ld; M]).expect("canonical shape");
    match fence {
        Some(kind) => program.with_fence_at(program.critical_load_index(), kind),
        None => program,
    }
}

/// Settles fenced programs and measures end-to-end survival, checking the
/// paper's conjecture: "fences make concurrency bugs less likely to
/// manifest, as programs with fences have fewer legal reorderings" — and
/// that an acquire before the critical load restores the SC window exactly.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let mut ok = true;

    let mut table = Table::new(vec!["model", "variant", "mean gamma", "survival (n=2)"]);
    for (mi, model) in [MemoryModel::Tso, MemoryModel::Wo].into_iter().enumerate() {
        let settler = Settler::for_model(model);
        for (vi, (variant, fence)) in [
            ("unfenced", None),
            ("acquire before critical LD", Some(FenceKind::Acquire)),
            ("full fence before critical LD", Some(FenceKind::Full)),
        ]
        .into_iter()
        .enumerate()
        {
            let gen = ProgramGenerator::new(M);
            let seed = ctx.seed.wrapping_add((mi * 10 + vi) as u64) ^ 0xFE;
            // Window distribution.
            let h = Runner::new(Seed(seed)).with_threads(ctx.threads).histogram_scratch(
                ctx.trials / 2,
                move || (template(fence), SettleScratch::new()),
                move |(program, scratch), rng| {
                    gen.regenerate(program, rng);
                    settler.sample_gamma_scratch(program, scratch, rng)
                },
            );
            // End-to-end survival.
            let report = Runner::new(Seed(seed ^ 1))
                .with_threads(ctx.threads)
                .try_bernoulli_scratch(
                    ctx.trials / 2,
                    move || {
                        (
                            template(fence),
                            SettleScratch::new(),
                            [0u64; 2],
                            ShiftScratch::with_capacity(2),
                        )
                    },
                    move |(program, scratch, windows, shift), rng| {
                        gen.regenerate(program, rng);
                        for w in windows.iter_mut() {
                            *w = settler.sample_gamma_scratch(program, scratch, rng) + 2;
                        }
                        ShiftProcess::canonical().simulate_disjoint_into(&windows[..], shift, rng)
                    },
                )
                .expect("panic-free simulation");
            crate::diag::record_report(
                format!("fence.{}.v{vi}", model.short_name()),
                &report,
            );
            let est = report.value;
            if fence.is_some() {
                // Fenced windows must be pinned at gamma = 0 for these
                // placements (nothing can hoist past the barrier).
                ok &= h.count(0) == h.total();
            }
            table.row(vec![
                model.short_name().into(),
                variant.into(),
                format!("{:.4}", h.mean()),
                format!("{:.6}", est.point()),
            ]);
        }
    }
    out.push_str(&table.render());

    // Survival with the fence must reach the SC level (1/6).
    let sc = 1.0 / 6.0;
    let _ = writeln!(
        out,
        "\nfenced variants pin gamma to 0, i.e. the SC window: {}",
        verdict(ok)
    );
    let _ = writeln!(
        out,
        "(their survival column should therefore read ~{sc:.4}, the SC constant)"
    );

    // A release fence in the middle of the fillers does NOT protect the
    // critical window (operations may still hoist above it).
    let settler = Settler::for_model(MemoryModel::Wo);
    let gen = ProgramGenerator::new(M);
    let h = Runner::new(Seed(ctx.seed ^ 0xFEE)).with_threads(ctx.threads).histogram_scratch(
        ctx.trials / 2,
        move || (template(Some(FenceKind::Release)), SettleScratch::new()),
        move |(program, scratch), rng| {
            gen.regenerate(program, rng);
            settler.sample_gamma_scratch(program, scratch, rng)
        },
    );
    let leaky = h.tail(1) > 0.0;
    ok &= leaky;
    let _ = writeln!(
        out,
        "a *release* fence there still leaks (one-way barrier, hoisting allowed): {}",
        verdict(leaky)
    );

    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fence_conjecture() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
