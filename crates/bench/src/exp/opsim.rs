//! EXP-OPSIM: operational multiprocessor ground truth for the §2.2 bug.

use crate::{verdict, Ctx};
use execsim::{run_increment_trial, SimParams};
use memmodel::MemoryModel;
use montecarlo::{BernoulliEstimate, Runner, Seed};
use std::fmt::Write as _;
use textplot::Table;

const FILLER: usize = 8;

fn bug_rate(ctx: &Ctx, model: MemoryModel, n: usize, salt: u64) -> BernoulliEstimate {
    let params = SimParams::for_model(model);
    let report = Runner::new(Seed(ctx.seed.wrapping_add(salt)))
        .with_threads(ctx.threads)
        .try_bernoulli(ctx.trials / 4, move |rng| {
            run_increment_trial(n, FILLER, params, rng)
        })
        .expect("panic-free simulation");
    crate::diag::record_report(format!("opsim.n{n}.{}", model.short_name()), &report);
    report.value
}

/// Runs the canonical increment on the operational machine (store buffers,
/// OoO windows, geometric start stagger) and compares its bug rates with
/// the abstract model's predictions.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();

    let mut table = Table::new(vec!["n", "SC", "PSO", "TSO", "WO"]);
    let mut rates = std::collections::HashMap::new();
    for (ni, n) in [2usize, 3, 4].into_iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (mi, model) in [
            MemoryModel::Sc,
            MemoryModel::Pso,
            MemoryModel::Tso,
            MemoryModel::Wo,
        ]
        .into_iter()
        .enumerate()
        {
            let est = bug_rate(ctx, model, n, (ni * 10 + mi) as u64);
            row.push(format!("{:.4}", est.point()));
            rates.insert((n, model), est.point());
        }
        table.row(row);
    }
    let _ = writeln!(out, "operational bug-manifestation rate (x != n):\n");
    out.push_str(&table.render());

    // Shape checks mirroring the abstract model.
    let r = |n, m| rates[&(n, m)];
    let sc_safest = [MemoryModel::Tso, MemoryModel::Pso, MemoryModel::Wo]
        .iter()
        .all(|&m| r(2, MemoryModel::Sc) < r(2, m));
    let pso_le_tso = r(2, MemoryModel::Pso) <= r(2, MemoryModel::Tso) + 0.01;
    let sc_matches_thm62 = (r(2, MemoryModel::Sc) - 5.0 / 6.0).abs() < 0.02;
    let gap2 = r(2, MemoryModel::Wo) - r(2, MemoryModel::Sc);
    let gap4 = r(4, MemoryModel::Wo) - r(4, MemoryModel::Sc);
    let gap_shrinks = gap4 < gap2 && gap4 < 0.02;

    let _ = writeln!(out, "\nSC is strictly safest at n = 2: {}", verdict(sc_safest));
    let _ = writeln!(
        out,
        "PSO <= TSO (critical store jumps the drain queue): {}",
        verdict(pso_le_tso)
    );
    let _ = writeln!(
        out,
        "SC operational rate {:.4} matches Theorem 6.2's 5/6 = {:.4}: {}",
        r(2, MemoryModel::Sc),
        5.0 / 6.0,
        verdict(sc_matches_thm62)
    );
    let _ = writeln!(
        out,
        "SC-vs-WO gap shrinks with n ({:.4} -> {:.4}): {}",
        gap2,
        gap4,
        verdict(gap_shrinks)
    );
    let _ = writeln!(
        out,
        "\nnote: TSO-vs-WO ordering is parameter-dependent operationally — the drain\n\
         latency and the issue-window size widen the racy window by different\n\
         amounts; the abstract model fixes both knobs to the same s = 1/2."
    );

    let ok = sc_safest && pso_le_tso && sc_matches_thm62 && gap_shrinks;
    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_operational_shape() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
