//! EXP-THM61: Theorem 6.1 — the exchangeability reduction.

use crate::{verdict, Ctx};
use memmodel::MemoryModel;
use mmr_core::ReliabilityModel;
use montecarlo::{Runner, Seed};
use shiftproc::{exact, exchangeable};
use std::fmt::Write as _;

/// Validates that for exchangeable window vectors, averaging the full exact
/// `Pr[A(Γ̄)]` equals the `n!·E[Π 2^{-iΓᵢ}]` single-term estimator — on both
/// synthetic iid lengths and real TSO window vectors (which are dependent
/// through the shared program, exactly the case the theorem covers).
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    let mut ok = true;

    for (label, model) in [("TSO windows", MemoryModel::Tso), ("WO windows", MemoryModel::Wo)] {
        for n in [2usize, 3, 4] {
            let rm = ReliabilityModel::new(model, n);
            // Mean of exact conditional probabilities.
            let exact_mean = Runner::new(Seed(ctx.seed ^ (n as u64) << 3))
                .with_threads(ctx.threads)
                .mean_scratch(
                ctx.trials / 2,
                move || rm.scratch(),
                move |scratch, rng| {
                    let w = rm.sample_windows_scratch(scratch, rng);
                    exact::pr_disjoint(w)
                },
            );
            // Exchangeable estimator from the same distribution.
            let est = rm.estimate_survival_rb_with(ctx.trials / 2, ctx.seed ^ 0x61, ctx.threads);
            let rel = (est.survival() - exact_mean.mean()).abs() / exact_mean.mean();
            let pass = rel < 0.08;
            ok &= pass;
            let _ = writeln!(
                out,
                "{label} n={n}: E[exact Pr[A(G)]] = {:.6}, Thm 6.1 estimator = {:.6} (rel err {:.4}) -> {}",
                exact_mean.mean(),
                est.survival(),
                rel,
                verdict(pass)
            );
        }
    }

    // Position-invariance: the single-term factor must be exchangeable —
    // permuting a window vector changes the factor but not its expectation.
    let rm = ReliabilityModel::new(MemoryModel::Tso, 3);
    let forward_report = Runner::new(Seed(ctx.seed ^ 0x611))
        .with_threads(ctx.threads)
        .try_mean_scratch(
            ctx.trials / 2,
            move || rm.scratch(),
            move |scratch, rng| {
                let w = rm.sample_windows_scratch(scratch, rng);
                exchangeable::sample_factor(w, 2)
            },
        )
        .expect("panic-free simulation");
    crate::diag::record_report("thm61.factor_forward", &forward_report);
    let forward = forward_report.value;
    let reversed_report = Runner::new(Seed(ctx.seed ^ 0x612))
        .with_threads(ctx.threads)
        .try_mean_scratch(
            ctx.trials / 2,
            move || (rm.scratch(), Vec::new()),
            move |(scratch, buf), rng| {
                let w = rm.sample_windows_scratch(scratch, rng);
                buf.clear();
                buf.extend_from_slice(w);
                buf.reverse();
                exchangeable::sample_factor(buf, 2)
            },
        )
        .expect("panic-free simulation");
    crate::diag::record_report("thm61.factor_reversed", &reversed_report);
    let reversed = reversed_report.value;
    let rel = (forward.mean() - reversed.mean()).abs() / forward.mean();
    let sym_ok = rel < 0.05;
    ok &= sym_ok;
    let _ = writeln!(
        out,
        "\nexchangeability: E[factor] forward {:.6} vs reversed {:.6} (rel {:.4}) -> {}",
        forward.mean(),
        reversed.mean(),
        rel,
        verdict(sym_ok)
    );

    let _ = writeln!(out, "\noverall: {}", verdict(ok));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_theorem_61() {
        let out = run(&Ctx::quick());
        assert!(out.contains("overall: REPRODUCED"), "{out}");
    }
}
