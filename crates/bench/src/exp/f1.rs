//! EXP-F1: Figure 1 — a settling-process instantiation under TSO.

use crate::{verdict, Ctx};
use memmodel::MemoryModel;
use montecarlo::{task_rng, Seed};
use progmodel::ProgramGenerator;
use settle::SettleTrace;
use std::fmt::Write as _;

/// Renders a round-by-round TSO settling run in the style of Figure 1:
/// columns are rounds, rows are program positions, the critical pair is
/// marked `*`, and the final column's bottom run forms the critical window.
pub fn run(ctx: &Ctx) -> String {
    let mut rng = task_rng(Seed(ctx.seed), 0xF1);
    // A small program like the figure's (the paper draws m = 6).
    let program = ProgramGenerator::new(6).generate(&mut rng);
    let trace = SettleTrace::run(MemoryModel::Tso, &program, &mut rng);

    let mut out = String::new();
    let _ = writeln!(out, "initial program: {program}\n");
    let _ = writeln!(out, "columns: S_0 then S_r after each settling round\n");
    let len = program.len();
    for pos in 0..len {
        let mut row = String::new();
        // Initial order column.
        let _ = write!(row, "{:>7}", cell(&program, pos));
        for round in trace.rounds() {
            let idx = round.order[pos];
            let _ = write!(row, "{:>7}", cell_idx(&program, idx));
        }
        let _ = writeln!(out, "{row}");
    }
    let settled = trace.final_settled();
    let gamma = settled.gamma();
    let _ = writeln!(
        out,
        "\ntotal positions climbed: {}, final critical window gamma = {gamma} (Gamma = {})",
        trace.total_climb(),
        settled.window_len()
    );

    // Figure-1 invariants: under TSO only LDs move, and they only move up.
    let mut ok = true;
    for round in trace.rounds() {
        let instr = program[round.settling];
        if round.climbed > 0 && instr.op_type() != Some(memmodel::OpType::Ld) {
            ok = false;
            let _ = writeln!(out, "  non-LD climbed in round {}", round.settling);
        }
    }
    let _ = writeln!(out, "only LDs settle upward under TSO: {}", verdict(ok));
    out
}

fn cell(program: &progmodel::Program, pos: usize) -> String {
    cell_idx(program, pos)
}

fn cell_idx(program: &progmodel::Program, idx: usize) -> String {
    let instr = program[idx];
    match instr.op_type() {
        Some(t) => {
            if instr.is_critical() {
                format!("{t}*")
            } else {
                t.to_string()
            }
        }
        None => instr.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_figure_and_invariants_hold() {
        let out = run(&Ctx::quick());
        assert!(out.contains("REPRODUCED"));
        assert!(out.contains("LD*"));
        assert!(out.contains("ST*"));
        assert!(out.contains("gamma"));
    }
}
